//! Consecutive shard spans.
//!
//! Both double hashing and dynamic secondary hashing place a tenant's data
//! on a run of *consecutive* shards starting at `h1(k1) mod N` (paper §4.2:
//! reads go to shards `h1(k1) mod N` through `(h1(k1)+s-1) mod N`). The span
//! wraps around the shard ring.

use esdb_common::ShardId;
use serde::{Deserialize, Serialize};

/// A wrap-around run of `len` consecutive shards out of `n`, starting at
/// `base`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ShardSpan {
    /// First shard of the span (already reduced mod `n`).
    pub base: u32,
    /// Number of shards in the span (`1 ..= n`).
    pub len: u32,
    /// Ring size (total shard count).
    pub n: u32,
}

impl ShardSpan {
    /// Creates a span; `len` is clamped to `n`.
    pub fn new(base: u32, len: u32, n: u32) -> Self {
        assert!(n > 0, "shard ring must be non-empty");
        ShardSpan {
            base: base % n,
            len: len.clamp(1, n),
            n,
        }
    }

    /// The shard at offset `i` within the span.
    #[inline]
    pub fn at(&self, i: u32) -> ShardId {
        debug_assert!(i < self.len);
        ShardId((self.base + i) % self.n)
    }

    /// Whether the span contains `shard`.
    pub fn contains(&self, shard: ShardId) -> bool {
        let s = shard.0 % self.n;
        let rel = (s + self.n - self.base) % self.n;
        rel < self.len
    }

    /// Iterates the shards of the span in ring order.
    pub fn iter(&self) -> impl Iterator<Item = ShardId> + '_ {
        (0..self.len).map(move |i| self.at(i))
    }

    /// Whether `other` is fully contained in `self` (used to check that a
    /// grown span still covers all historical placements).
    pub fn covers(&self, other: &ShardSpan) -> bool {
        assert_eq!(self.n, other.n, "spans over different rings");
        other.iter().all(|s| self.contains(s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn simple_span() {
        let s = ShardSpan::new(3, 4, 16);
        let shards: Vec<u32> = s.iter().map(|x| x.0).collect();
        assert_eq!(shards, vec![3, 4, 5, 6]);
        assert!(s.contains(ShardId(3)));
        assert!(s.contains(ShardId(6)));
        assert!(!s.contains(ShardId(7)));
        assert!(!s.contains(ShardId(2)));
    }

    #[test]
    fn wrapping_span() {
        let s = ShardSpan::new(14, 4, 16);
        let shards: Vec<u32> = s.iter().map(|x| x.0).collect();
        assert_eq!(shards, vec![14, 15, 0, 1]);
        assert!(s.contains(ShardId(0)));
        assert!(!s.contains(ShardId(2)));
    }

    #[test]
    fn len_clamps_to_ring() {
        let s = ShardSpan::new(5, 100, 8);
        assert_eq!(s.len, 8);
        assert_eq!(s.iter().count(), 8);
        // Full ring contains everything.
        for i in 0..8 {
            assert!(s.contains(ShardId(i)));
        }
    }

    #[test]
    fn nested_spans_cover() {
        let small = ShardSpan::new(10, 2, 16);
        let big = ShardSpan::new(10, 8, 16);
        assert!(big.covers(&small));
        assert!(!small.covers(&big));
    }

    proptest! {
        #[test]
        fn prop_same_base_longer_span_covers(base in 0u32..64, l1 in 1u32..64, l2 in 1u32..64, n in 1u32..64) {
            let a = ShardSpan::new(base, l1.min(l2), n);
            let b = ShardSpan::new(base, l1.max(l2), n);
            prop_assert!(b.covers(&a));
        }

        #[test]
        fn prop_contains_matches_iter(base in 0u32..100, len in 1u32..100, n in 1u32..100, probe in 0u32..100) {
            let s = ShardSpan::new(base, len, n);
            let listed: Vec<u32> = s.iter().map(|x| x.0).collect();
            prop_assert_eq!(s.contains(ShardId(probe % n)), listed.contains(&(probe % n)));
        }
    }
}
