//! Workload routing for ESDB-RS: hashing, double hashing, and the paper's
//! core contribution, **dynamic secondary hashing** (paper §2.2, §4).
//!
//! All three policies map a write identified by *(tenant ID `k1`, record ID
//! `k2`, creation time `tc`)* to one of `N` shards:
//!
//! * **Hashing** — `p = h1(k1) mod N`. Perfect query locality (one shard per
//!   tenant), no load balancing (Fig. 2a).
//! * **Double hashing** — `p = (h1(k1) + h2(k2) mod s) mod N` with a static
//!   `s` (Eq. 1). Spreads every tenant over `s` consecutive shards; balanced
//!   but every query fans out to `s` shards (Fig. 2b).
//! * **Dynamic secondary hashing** — Eq. 2 replaces the static `s` with a
//!   per-tenant, time-varying offset `L(k1)` driven by the secondary hashing
//!   rule list (Fig. 2c, §4.1–4.2). Cold tenants stay on one shard; hot
//!   tenants grow to 2, 4, 8, ... consecutive shards as rules commit.
//!
//! The [`rules::RuleList`] implements the paper's Algorithm 2 plus the
//! write/read matching conditions of §4.2, which are what make rule changes
//! safe for read-your-writes consistency.

pub mod policy;
pub mod rules;
pub mod span;

pub use policy::{
    base_shard, place, DoubleHashRouting, DynamicRouting, HashRouting, PolicyKind, RoutingPolicy,
};
pub use rules::{RuleList, SecondaryHashingRule};
pub use span::ShardSpan;
