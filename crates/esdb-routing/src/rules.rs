//! The secondary hashing rule list (paper §4.2, Algorithms 1–2).
//!
//! Each rule is a tuple `(t, s, k_list)`: from effective time `t` on, the
//! tenants in `k_list` use maximum secondary offset `s`. The list is
//! **append-only** — this is what lets the consensus layer (paper §4.3)
//! avoid full state-machine replication: rules are naturally ordered by
//! effective time, so agreement reduces to a commit/abort decision per rule.
//!
//! Matching (paper §4.2): a write with routing triple `(k1, k2, tc)` uses
//! the rule with the **largest `s`** among rules where `t < tc` (rule
//! effective strictly before the record's creation time) and `k1 ∈ k_list`.
//! A read at time `now` uses the largest `s` among rules with `t ≤ now`
//! containing `k1`. Because every rule for a tenant shares the same base
//! shard `h1(k1) mod N` and offsets are consecutive, the read span with the
//! maximal `s` covers every shard any historical write could have landed
//! on — that is the read-your-writes guarantee, property-tested below.

use esdb_common::fastmap::{fast_map, FastMap};
use esdb_common::{TenantId, TimestampMs};
use serde::{Deserialize, Serialize};

/// One secondary hashing rule `(t, s, k_list)`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SecondaryHashingRule {
    /// Effective time: writes of records created strictly after `t` may use
    /// this rule.
    pub effective_time: TimestampMs,
    /// Maximum secondary-hash offset (the paper restricts these to powers
    /// of two to bound rule-list growth; the list itself accepts any `s`).
    pub offset: u32,
    /// Tenants adopting `offset` from `effective_time` on.
    pub tenants: Vec<TenantId>,
}

/// Append-only list of secondary hashing rules with a per-tenant lookup
/// index for O(rules-per-tenant) matching.
///
/// ```
/// use esdb_routing::RuleList;
/// use esdb_common::TenantId;
///
/// let mut rules = RuleList::new();
/// // At t=100, tenant 7 grows to 8 consecutive shards.
/// rules.update(100, 8, TenantId(7));
/// // Records created before (or at) the effective time keep the old
/// // placement; later records spread.
/// assert_eq!(rules.offset_for_write(TenantId(7), 100), 1);
/// assert_eq!(rules.offset_for_write(TenantId(7), 101), 8);
/// // Reads at/after the effective time cover the full span.
/// assert_eq!(rules.offset_for_read(TenantId(7), 100), 8);
/// ```
#[derive(Debug, Clone, Default)]
pub struct RuleList {
    /// All rules in insertion order (the wire/consensus representation).
    rules: Vec<SecondaryHashingRule>,
    /// Per-tenant `(effective_time, offset)` pairs, kept sorted by
    /// effective time.
    by_tenant: FastMap<TenantId, Vec<(TimestampMs, u32)>>,
    /// Largest offset per tenant whose historical data has been
    /// physically migrated to the widened span. Write matching for a
    /// migrated tenant ignores the `t < tc` condition up to this offset:
    /// pre-rule records now *live* at their new-span placement, so point
    /// ops on them must route there.
    migrated: FastMap<TenantId, u32>,
    /// Bumped on every mutation (rule append or migration marking).
    /// Routing consumers snapshot this to detect a rule-boundary change
    /// between two reads of the list.
    version: u64,
}

impl RuleList {
    /// An empty rule list (every tenant implicitly has `s = 1`).
    pub fn new() -> Self {
        RuleList {
            rules: Vec::new(),
            by_tenant: fast_map(),
            migrated: fast_map(),
            version: 0,
        }
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// All rules in insertion order.
    pub fn rules(&self) -> &[SecondaryHashingRule] {
        &self.rules
    }

    /// `UpdateRuleList` (paper Algorithm 2): if a rule with the same
    /// `(t, s)` exists, append `k` to its tenant list; otherwise insert a
    /// new rule `(t, s, [k])`.
    pub fn update(&mut self, t: TimestampMs, s: u32, k: TenantId) {
        if let Some(rule) = self
            .rules
            .iter_mut()
            .find(|r| r.effective_time == t && r.offset == s)
        {
            if rule.tenants.contains(&k) {
                // Idempotent: a re-delivered commit must not duplicate the
                // tenant-index entry either.
                return;
            }
            rule.tenants.push(k);
        } else {
            self.rules.push(SecondaryHashingRule {
                effective_time: t,
                offset: s,
                tenants: vec![k],
            });
        }
        let entry = self.by_tenant.entry(k).or_default();
        let pos = entry.partition_point(|&(et, _)| et <= t);
        entry.insert(pos, (t, s));
        self.version += 1;
    }

    /// Marks a tenant's data as physically migrated up to `offset`: every
    /// record the tenant wrote *before* the rule with that offset became
    /// effective now lives at its new-span placement, so write matching
    /// stops honoring the `t < tc` cutoff below `offset`. Monotone (only
    /// ever grows) and idempotent. Returns whether the marking changed.
    pub fn mark_migrated(&mut self, k1: TenantId, offset: u32) -> bool {
        let cur = self.migrated.get(&k1).copied().unwrap_or(1);
        if offset <= cur {
            return false;
        }
        self.migrated.insert(k1, offset);
        self.version += 1;
        true
    }

    /// The largest offset the tenant's historical data has been migrated
    /// to (`1` = nothing migrated; records live where their creation-time
    /// rule matching put them).
    pub fn migrated_offset(&self, k1: TenantId) -> u32 {
        self.migrated.get(&k1).copied().unwrap_or(1)
    }

    /// Mutation counter: changes iff a rule was appended or a migration
    /// was marked complete since the last observation. Lets the query
    /// path detect that its span resolution straddled a rule boundary.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Inserts a whole committed rule (used when applying a consensus
    /// decision that carries a multi-tenant rule).
    pub fn insert_rule(&mut self, rule: SecondaryHashingRule) {
        for &k in &rule.tenants {
            self.update(rule.effective_time, rule.offset, k);
        }
    }

    /// Write matching (§4.2): largest `s` among rules with `t < tc` that
    /// contain `k1`; `1` when no rule matches (cold tenant ⇒ plain hashing).
    ///
    /// A completed migration overrides the time cutoff: once
    /// [`RuleList::mark_migrated`] records offset `m` for the tenant, the
    /// result is at least `m` regardless of `tc`, because the tenant's
    /// pre-rule records were physically moved to their `m`-span placement.
    pub fn offset_for_write(&self, k1: TenantId, tc: TimestampMs) -> u32 {
        let time_matched = self
            .by_tenant
            .get(&k1)
            .map(|entries| {
                entries
                    .iter()
                    .take_while(|&&(t, _)| t < tc)
                    .map(|&(_, s)| s)
                    .max()
                    .unwrap_or(1)
            })
            .unwrap_or(1);
        time_matched.max(self.migrated_offset(k1))
    }

    /// Read matching: largest `s` among rules effective at or before `now`
    /// that contain `k1`.
    pub fn offset_for_read(&self, k1: TenantId, now: TimestampMs) -> u32 {
        self.by_tenant
            .get(&k1)
            .map(|entries| {
                entries
                    .iter()
                    .take_while(|&&(t, _)| t <= now)
                    .map(|&(_, s)| s)
                    .max()
                    .unwrap_or(1)
            })
            .unwrap_or(1)
    }

    /// The current offset a tenant would get for a brand-new record
    /// (equivalent to `offset_for_write` with `tc = now + ε`).
    pub fn current_offset(&self, k1: TenantId, now: TimestampMs) -> u32 {
        self.offset_for_read(k1, now)
    }

    /// Latest effective time in the list (used by consensus participants to
    /// validate that a proposed rule is in their future).
    pub fn max_effective_time(&self) -> Option<TimestampMs> {
        self.rules.iter().map(|r| r.effective_time).max()
    }

    /// Tenants that currently have any rule.
    pub fn tenants(&self) -> impl Iterator<Item = TenantId> + '_ {
        self.by_tenant.keys().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_list_defaults_to_one() {
        let r = RuleList::new();
        assert_eq!(r.offset_for_write(TenantId(1), 100), 1);
        assert_eq!(r.offset_for_read(TenantId(1), 100), 1);
    }

    #[test]
    fn algorithm2_appends_to_matching_rule() {
        let mut r = RuleList::new();
        r.update(100, 4, TenantId(1));
        r.update(100, 4, TenantId(2));
        assert_eq!(r.len(), 1, "same (t,s) must share one rule");
        assert_eq!(r.rules()[0].tenants, vec![TenantId(1), TenantId(2)]);
        r.update(100, 8, TenantId(3));
        assert_eq!(r.len(), 2, "different s must create a new rule");
    }

    #[test]
    fn duplicate_tenant_in_same_rule_is_idempotent() {
        let mut r = RuleList::new();
        r.update(100, 4, TenantId(1));
        r.update(100, 4, TenantId(1));
        assert_eq!(r.rules()[0].tenants.len(), 1);
        // The tenant index must not accumulate duplicates either.
        assert_eq!(r.by_tenant.get(&TenantId(1)).map(Vec::len), Some(1));
    }

    #[test]
    fn write_matching_is_strictly_before_creation() {
        let mut r = RuleList::new();
        r.update(100, 4, TenantId(1));
        // Record created exactly at the effective time must NOT use the rule
        // (paper condition: t earlier than tc).
        assert_eq!(r.offset_for_write(TenantId(1), 100), 1);
        assert_eq!(r.offset_for_write(TenantId(1), 101), 4);
        assert_eq!(r.offset_for_write(TenantId(1), 99), 1);
    }

    #[test]
    fn read_matching_is_inclusive() {
        let mut r = RuleList::new();
        r.update(100, 4, TenantId(1));
        assert_eq!(r.offset_for_read(TenantId(1), 99), 1);
        assert_eq!(r.offset_for_read(TenantId(1), 100), 4);
    }

    #[test]
    fn largest_s_wins_among_eligible_rules() {
        let mut r = RuleList::new();
        r.update(100, 8, TenantId(1));
        r.update(200, 4, TenantId(1)); // shrink attempt
                                       // After both rules are effective, the larger historical s still
                                       // governs: this is what keeps shrunken reads covering old writes.
        assert_eq!(r.offset_for_write(TenantId(1), 300), 8);
        assert_eq!(r.offset_for_read(TenantId(1), 300), 8);
        // Between the two, only the first applies.
        assert_eq!(r.offset_for_write(TenantId(1), 150), 8);
    }

    #[test]
    fn rules_are_per_tenant() {
        let mut r = RuleList::new();
        r.update(100, 16, TenantId(7));
        assert_eq!(r.offset_for_write(TenantId(8), 200), 1);
        assert_eq!(r.offset_for_write(TenantId(7), 200), 16);
    }

    #[test]
    fn insert_rule_applies_all_tenants() {
        let mut r = RuleList::new();
        r.insert_rule(SecondaryHashingRule {
            effective_time: 50,
            offset: 2,
            tenants: vec![TenantId(1), TenantId(2)],
        });
        assert_eq!(r.offset_for_write(TenantId(1), 60), 2);
        assert_eq!(r.offset_for_write(TenantId(2), 60), 2);
        assert_eq!(r.max_effective_time(), Some(50));
    }

    #[test]
    fn migration_marking_reroutes_old_records() {
        let mut r = RuleList::new();
        r.update(100, 8, TenantId(1));
        // Pre-rule record: old placement while data has not moved.
        assert_eq!(r.offset_for_write(TenantId(1), 50), 1);
        assert!(r.mark_migrated(TenantId(1), 8));
        // After the migration completes, the same routing triple resolves
        // to the widened span — the record physically lives there now.
        assert_eq!(r.offset_for_write(TenantId(1), 50), 8);
        assert_eq!(r.migrated_offset(TenantId(1)), 8);
        // Reads were already covering the span; still are.
        assert_eq!(r.offset_for_read(TenantId(1), 100), 8);
        // Other tenants unaffected.
        assert_eq!(r.offset_for_write(TenantId(2), 50), 1);
    }

    #[test]
    fn migration_marking_is_monotone_and_versioned() {
        let mut r = RuleList::new();
        let v0 = r.version();
        r.update(100, 4, TenantId(1));
        assert!(r.version() > v0);
        let v1 = r.version();
        assert!(r.mark_migrated(TenantId(1), 4));
        assert!(r.version() > v1);
        let v2 = r.version();
        // Idempotent / shrink attempts change nothing.
        assert!(!r.mark_migrated(TenantId(1), 4));
        assert!(!r.mark_migrated(TenantId(1), 2));
        assert_eq!(r.version(), v2);
        assert_eq!(r.migrated_offset(TenantId(1)), 4);
    }

    proptest! {
        /// Migration marking never shrinks the write offset and never
        /// breaks read-your-writes: the read offset still dominates for
        /// any `(tc, now)` pair, because a marked offset always comes
        /// from a committed rule the read matching already honors.
        #[test]
        fn prop_migration_marking_preserves_read_your_writes(
            updates in proptest::collection::vec((0u64..1000, 0u32..6), 1..12),
            mark_idx in 0usize..12,
            tc in 0u64..1200,
        ) {
            let mut r = RuleList::new();
            for (t, s_exp) in &updates {
                r.update(*t, 1 << s_exp, TenantId(9));
            }
            let before = r.offset_for_write(TenantId(9), tc);
            // Mark one committed rule's offset as migrated.
            let (_, s_exp) = updates[mark_idx % updates.len()];
            r.mark_migrated(TenantId(9), 1 << s_exp);
            let after = r.offset_for_write(TenantId(9), tc);
            prop_assert!(after >= before, "marking shrank the write offset");
            // Reads at any time >= every rule's effective time cover it.
            let rd = r.offset_for_read(TenantId(9), 2000);
            prop_assert!(rd >= after, "read offset {rd} < write offset {after}");
        }

        /// Read-your-writes core invariant: for any sequence of rule
        /// updates and any write time, the read offset at any later time is
        /// >= the offset used by the write. Combined with same-base
        /// consecutive spans (span::prop_same_base_longer_span_covers),
        /// this implies every historical write shard is inside the read span.
        #[test]
        fn prop_read_offset_dominates_write_offset(
            updates in proptest::collection::vec((0u64..1000, 0u32..6), 0..20),
            tc in 0u64..1200,
            read_delay in 0u64..500,
        ) {
            let mut r = RuleList::new();
            for (t, s_exp) in updates {
                r.update(t, 1 << s_exp, TenantId(42));
            }
            let w = r.offset_for_write(TenantId(42), tc);
            let rd = r.offset_for_read(TenantId(42), tc + read_delay);
            prop_assert!(rd >= w, "read offset {rd} < write offset {w}");
        }

        /// Matching is monotone in creation time: later-created records see
        /// a superset of eligible rules.
        #[test]
        fn prop_write_offset_monotone_in_tc(
            updates in proptest::collection::vec((0u64..1000, 1u32..64), 0..20),
            t1 in 0u64..1200,
            dt in 0u64..300,
        ) {
            let mut r = RuleList::new();
            for (t, s) in updates {
                r.update(t, s, TenantId(5));
            }
            prop_assert!(r.offset_for_write(TenantId(5), t1 + dt) >= r.offset_for_write(TenantId(5), t1));
        }
    }
}
