//! Point-in-time read views.
//!
//! A snapshot is an immutable, Arc-shared set of sealed segments plus the
//! generation it was published under. The storage layer publishes one on
//! every refresh/merge/tombstone/flush; the query layer executes against
//! the [`SnapshotView`] trait so it never sees (or locks) the mutable
//! engine. The trait lives here — in the crate both sides depend on —
//! so `esdb-storage` can implement it for its snapshot type and
//! `esdb-query` can consume it without a dependency cycle.

use crate::postings::{PostingList, BLOCK_SIZE};
use crate::segment::{DocId, Segment};
use std::sync::Arc;

/// An immutable point-in-time view of one shard's sealed segments.
///
/// Implementations must guarantee:
///
/// * **Stability** — the segment set and every segment's liveness bitmap
///   never change after the view is handed out, even while the engine
///   refreshes, merges, or tombstones behind it.
/// * **Atomicity** — [`search_generation`](SnapshotView::search_generation)
///   is the generation the segment set was published under; the two always
///   travel together, so a cache entry keyed on the pair can never mix
///   rows from two different views.
pub trait SnapshotView {
    /// The sealed segments of this view, oldest first.
    fn segments(&self) -> &[Arc<Segment>];

    /// The search generation the view was published under. Bumped by any
    /// visibility change (refresh, merge, tombstone), so equal generations
    /// imply identical query results.
    fn search_generation(&self) -> u64;

    /// Total live docs across the view (default: sum over segments).
    fn live_count(&self) -> usize {
        self.segments().iter().map(|s| s.live_count()).sum()
    }

    /// Visits `list` block-at-a-time with segment `segment`'s
    /// copy-on-write live-doc bitmap applied. A fully-live segment hands
    /// out the stored 128-entry blocks zero-copy; a tombstoned segment
    /// filters each block into a reused scratch buffer, so a list cached
    /// before a delete is consumed at current liveness without ever
    /// materializing the re-filtered list. `f` sees each surviving
    /// (non-empty) block's strictly-increasing doc ids.
    fn for_each_live_block(&self, segment: usize, list: &PostingList, f: &mut dyn FnMut(&[DocId])) {
        let Some(seg) = self.segments().get(segment) else {
            return;
        };
        if seg.fully_live() {
            for b in list.blocks() {
                f(b.ids());
            }
            return;
        }
        let mut buf: Vec<DocId> = Vec::with_capacity(BLOCK_SIZE);
        for b in list.blocks() {
            buf.clear();
            buf.extend(b.ids().iter().copied().filter(|&d| seg.is_live(d)));
            if !buf.is_empty() {
                f(&buf);
            }
        }
    }
}
