//! Segment merging (paper §3.3: "segment merge ... merges smaller segments
//! to a large segment. It costs computation resources but effectively
//! improves query efficiency").
//!
//! [`TieredMergePolicy`] picks merge candidates the way Lucene's tiered
//! policy does in spirit: when enough segments of the same size tier exist,
//! they merge into one. [`merge_segments`] performs the physical merge by
//! re-indexing the union of live documents (deletes are purged, like
//! Lucene's compaction).

use crate::analyzer::Analyzer;
use crate::builder::build_segment;
use crate::segment::{Segment, SegmentId};
use esdb_common::fastmap::FastSet;
use esdb_doc::CollectionSchema;

/// Chooses which segments to merge.
pub trait MergePolicy: Send + Sync {
    /// Given current segment sizes `(id, live_docs, bytes)`, returns the
    /// ids to merge (empty = no merge now).
    fn select(&self, segments: &[(SegmentId, usize, usize)]) -> Vec<SegmentId>;
}

/// Merge when at least `segments_per_tier` segments fall in the same
/// power-of-`tier_factor` size bucket.
#[derive(Debug, Clone)]
pub struct TieredMergePolicy {
    /// How many same-tier segments trigger a merge.
    pub segments_per_tier: usize,
    /// Size ratio separating tiers.
    pub tier_factor: usize,
    /// Segments above this byte size are never merged (already "large").
    pub max_merged_bytes: usize,
}

impl Default for TieredMergePolicy {
    fn default() -> Self {
        TieredMergePolicy {
            segments_per_tier: 4,
            tier_factor: 8,
            max_merged_bytes: 256 << 20,
        }
    }
}

impl TieredMergePolicy {
    fn tier_of(&self, bytes: usize) -> u32 {
        let mut tier = 0u32;
        let mut bound = 4096usize;
        while bytes > bound {
            bound = bound.saturating_mul(self.tier_factor);
            tier += 1;
        }
        tier
    }
}

impl MergePolicy for TieredMergePolicy {
    fn select(&self, segments: &[(SegmentId, usize, usize)]) -> Vec<SegmentId> {
        use std::collections::BTreeMap;
        let mut tiers: BTreeMap<u32, Vec<SegmentId>> = BTreeMap::new();
        for &(id, _live, bytes) in segments {
            if bytes <= self.max_merged_bytes {
                tiers.entry(self.tier_of(bytes)).or_default().push(id);
            }
        }
        for (_, ids) in tiers {
            if ids.len() >= self.segments_per_tier {
                return ids;
            }
        }
        Vec::new()
    }
}

/// Physically merges `inputs` into one segment with id `new_id`, dropping
/// deleted docs and rebuilding all indexes. `indexed_attrs` is the *current*
/// frequency-based set, so a merge naturally re-applies index policy changes.
pub fn merge_segments(
    new_id: SegmentId,
    inputs: &[&Segment],
    schema: &CollectionSchema,
    indexed_attrs: &FastSet<String>,
) -> Segment {
    let mut docs = Vec::with_capacity(inputs.iter().map(|s| s.live_count()).sum());
    let mut size = 0usize;
    for seg in inputs {
        for (_, d) in seg.live_docs() {
            size += d.approx_size();
            docs.push(d.clone());
        }
    }
    build_segment(
        new_id,
        docs,
        schema,
        &Analyzer::default(),
        indexed_attrs,
        size,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::SegmentBuilder;
    use esdb_common::fastmap::fast_set;
    use esdb_common::{RecordId, TenantId};
    use esdb_doc::Document;

    fn seg(id: SegmentId, records: std::ops::Range<u64>) -> Segment {
        let mut b = SegmentBuilder::without_attr_index(CollectionSchema::transaction_logs());
        for r in records {
            b.add(
                Document::builder(TenantId(1), RecordId(r), 100 + r)
                    .field("status", (r % 2) as i64)
                    .field("auction_title", format!("item {r}"))
                    .build(),
            );
        }
        b.refresh(id)
    }

    #[test]
    fn tiered_policy_triggers_on_same_tier() {
        let p = TieredMergePolicy {
            segments_per_tier: 3,
            tier_factor: 8,
            max_merged_bytes: 1 << 30,
        };
        // Three tiny segments -> merge; two -> no merge.
        assert!(!p
            .select(&[(1, 10, 100), (2, 10, 120), (3, 10, 90)])
            .is_empty());
        assert!(p.select(&[(1, 10, 100), (2, 10, 120)]).is_empty());
        // Different tiers don't combine.
        assert!(p
            .select(&[(1, 10, 100), (2, 10, 1 << 20), (3, 10, 1 << 26)])
            .is_empty());
    }

    #[test]
    fn oversized_segments_left_alone() {
        let p = TieredMergePolicy {
            segments_per_tier: 2,
            tier_factor: 8,
            max_merged_bytes: 1000,
        };
        assert!(p
            .select(&[(1, 10, 2000), (2, 10, 2100), (3, 10, 2200)])
            .is_empty());
    }

    #[test]
    fn merge_unions_docs_and_purges_deletes() {
        let a = seg(1, 0..5);
        let mut b = seg(2, 5..10);
        assert!(b.delete_record(7));
        let schema = CollectionSchema::transaction_logs();
        let merged = merge_segments(3, &[&a, &b], &schema, &fast_set());
        assert_eq!(merged.id, 3);
        assert_eq!(merged.doc_count(), 9, "delete purged during merge");
        assert_eq!(merged.live_count(), 9);
        // All surviving records findable; deleted one gone.
        assert!(merged.find_record(4).is_some());
        assert!(merged.find_record(9).is_some());
        assert!(merged.find_record(7).is_none());
        // Indexes rebuilt.
        assert_eq!(merged.numeric_eq("status", 0).len(), 5); // 0,2,4,6,8
        assert_eq!(merged.term_docs("auction_title", "item").len(), 9);
    }

    #[test]
    fn merge_applies_new_attr_policy() {
        let mut b1 = SegmentBuilder::without_attr_index(CollectionSchema::transaction_logs());
        b1.add(
            Document::builder(TenantId(1), RecordId(1), 1)
                .attr("activity", "618")
                .build(),
        );
        let s1 = b1.refresh(1);
        assert!(
            s1.attr_docs("activity", "618").is_none(),
            "not indexed at build time"
        );
        let mut attrs = fast_set();
        attrs.insert("activity".to_string());
        let schema = CollectionSchema::transaction_logs();
        let merged = merge_segments(2, &[&s1], &schema, &attrs);
        assert_eq!(
            merged.attr_docs("activity", "618").unwrap().ids(),
            &[0],
            "merge re-applies the current frequency-based policy"
        );
    }
}
