//! Frequency-based sub-attribute indexing (paper §3.2, §6.3.3).
//!
//! The "attributes" column carries ~1500 distinct sub-attribute names whose
//! read/write frequencies are heavily skewed (the top 30 appear in ~50% of
//! workloads). Indexing all of them is prohibitive; ESDB tracks usage
//! frequency and indexes only the top-k. This tracker counts occurrences in
//! both write and query workloads and exposes the current top-k set.

use esdb_common::fastmap::{fast_map, fast_set, FastMap, FastSet};

/// Counts sub-attribute usage and ranks the hottest.
#[derive(Debug, Default)]
pub struct AttrFrequencyTracker {
    counts: FastMap<String, u64>,
    total: u64,
}

impl AttrFrequencyTracker {
    /// Empty tracker.
    pub fn new() -> Self {
        AttrFrequencyTracker {
            counts: fast_map(),
            total: 0,
        }
    }

    /// Records one use of sub-attribute `name` (a write carrying it or a
    /// query filtering on it).
    pub fn record(&mut self, name: &str) {
        if let Some(c) = self.counts.get_mut(name) {
            *c += 1;
        } else {
            self.counts.insert(name.to_string(), 1);
        }
        self.total += 1;
    }

    /// Records every sub-attribute of a write.
    pub fn record_write<'a>(&mut self, attrs: impl IntoIterator<Item = &'a (String, String)>) {
        for (name, _) in attrs {
            self.record(name);
        }
    }

    /// Total recorded occurrences.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of distinct sub-attributes seen.
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// The current top-k sub-attribute names (ties broken by name for
    /// determinism).
    pub fn top_k(&self, k: usize) -> FastSet<String> {
        let mut v: Vec<(&String, &u64)> = self.counts.iter().collect();
        v.sort_by(|a, b| b.1.cmp(a.1).then(a.0.cmp(b.0)));
        let mut out = fast_set();
        for (name, _) in v.into_iter().take(k) {
            out.insert(name.clone());
        }
        out
    }

    /// Fraction of total occurrences covered by the top-k set (the paper
    /// reports top-30 covering ~50%).
    pub fn coverage(&self, k: usize) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let top = self.top_k(k);
        let covered: u64 = self
            .counts
            .iter()
            .filter(|(n, _)| top.contains(*n))
            .map(|(_, c)| *c)
            .sum();
        covered as f64 / self.total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_by_frequency() {
        let mut t = AttrFrequencyTracker::new();
        for _ in 0..10 {
            t.record("activity");
        }
        for _ in 0..5 {
            t.record("size");
        }
        t.record("material");
        let top2 = t.top_k(2);
        assert!(top2.contains("activity") && top2.contains("size"));
        assert!(!top2.contains("material"));
        assert_eq!(t.distinct(), 3);
        assert_eq!(t.total(), 16);
    }

    #[test]
    fn coverage_fraction() {
        let mut t = AttrFrequencyTracker::new();
        for _ in 0..50 {
            t.record("a");
        }
        for _ in 0..50 {
            t.record("b");
        }
        assert!((t.coverage(1) - 0.5).abs() < 1e-12);
        assert!((t.coverage(2) - 1.0).abs() < 1e-12);
        assert_eq!(AttrFrequencyTracker::new().coverage(5), 0.0);
    }

    #[test]
    fn record_write_counts_all_attrs() {
        let mut t = AttrFrequencyTracker::new();
        let attrs = vec![
            ("a".to_string(), "1".to_string()),
            ("b".to_string(), "2".to_string()),
        ];
        t.record_write(&attrs);
        assert_eq!(t.total(), 2);
    }

    #[test]
    fn zipf_skew_matches_paper_shape() {
        // With Zipf(θ=1)-distributed sub-attribute usage over 1500 names,
        // the top 30 should cover a large share (paper: ~50%).
        let mut t = AttrFrequencyTracker::new();
        let z = esdb_common::zipf::ZipfSampler::new(1500, 1.0);
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100_000 {
            let rank = z.sample(&mut rng);
            t.record(&format!("attr_{rank}"));
        }
        let cov = t.coverage(30);
        assert!(cov > 0.4 && cov < 0.7, "top-30 coverage {cov}");
    }
}
