//! Immutable segments.
//!
//! A segment is the unit Lucene (and hence ESDB) writes, merges, and — in
//! ESDB's physical replication (§5.2) — ships to replicas. It contains:
//!
//! * the stored documents,
//! * per-field inverted indexes (text tokens / keyword terms),
//! * per-field sorted numeric indexes (the single-column Bkd stand-in),
//! * columnar doc values for the sequential-scan access path (§5.1),
//! * composite indexes: 1-D BKD-style sorted key arrays over
//!   order-preserving concatenations of column values (§5.1),
//! * inverted indexes for the frequency-selected sub-attributes (§3.2),
//! * a live-docs bitmap carrying deletes (updates = delete + re-insert,
//!   exactly like Lucene).

use crate::postings::PostingList;
use esdb_common::fastmap::{FastMap, FastSet};
use esdb_doc::{Document, FieldValue};
use std::collections::BTreeMap;
use std::ops::Bound;

/// Segment-local document id.
pub type DocId = u32;

/// Order-preserving mapping from `f64` to `u64` (IEEE-754 total order,
/// NaN excluded upstream): used as the sort key of f64 numeric indexes.
#[inline]
pub fn f64_sort_key(x: f64) -> u64 {
    let b = x.to_bits();
    if b >> 63 == 1 {
        !b
    } else {
        b ^ (1 << 63)
    }
}
/// Cluster-unique segment id.
pub type SegmentId = u64;

/// Encoded lower/upper bounds for a composite range lookup.
pub type EncodedRange<'a> = (Bound<&'a [u8]>, Bound<&'a [u8]>);

/// Columnar doc values for one field.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnValues {
    /// 64-bit integers (Long / Bool as 0/1).
    I64(Vec<Option<i64>>),
    /// 64-bit floats.
    F64(Vec<Option<f64>>),
    /// Timestamps.
    U64(Vec<Option<u64>>),
    /// Keywords.
    Str(Vec<Option<String>>),
}

impl ColumnValues {
    /// The value at `doc` as a [`FieldValue`] (None = missing).
    pub fn get(&self, doc: DocId) -> Option<FieldValue> {
        let i = doc as usize;
        match self {
            ColumnValues::I64(v) => v.get(i)?.map(FieldValue::Int),
            ColumnValues::F64(v) => v.get(i)?.map(FieldValue::Float),
            ColumnValues::U64(v) => v.get(i)?.map(FieldValue::Timestamp),
            ColumnValues::Str(v) => v.get(i)?.clone().map(FieldValue::Str),
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            ColumnValues::I64(v) => v.len(),
            ColumnValues::F64(v) => v.len(),
            ColumnValues::U64(v) => v.len(),
            ColumnValues::Str(v) => v.len(),
        }
    }

    /// Whether the column is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A composite index: sorted `(concatenated-key, doc)` pairs.
#[derive(Debug, Clone, Default)]
pub struct CompositeIndex {
    /// Ordered columns of the index.
    pub columns: Vec<String>,
    /// Sorted by key bytes.
    entries: Vec<(Vec<u8>, DocId)>,
}

impl CompositeIndex {
    /// Builds from unsorted entries.
    pub fn build(columns: Vec<String>, mut entries: Vec<(Vec<u8>, DocId)>) -> Self {
        entries.sort();
        CompositeIndex { columns, entries }
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Docs whose key starts with `prefix` (the equality part), optionally
    /// constrained by a range on the next column.
    ///
    /// `range` bounds are order-preserving encodings of the range column's
    /// values. The sentinel byte `0xFF` never occurs as a field tag, so
    /// `prefix ++ [0xFF]` upper-bounds every extension of `prefix`.
    pub fn lookup(&self, prefix: &[u8], range: Option<EncodedRange<'_>>) -> PostingList {
        let (lo_key, hi_key): (Vec<u8>, Vec<u8>) = match range {
            None => {
                let mut hi = prefix.to_vec();
                hi.push(0xFF);
                (prefix.to_vec(), hi)
            }
            Some((lo, hi)) => {
                let lo_key = match lo {
                    Bound::Unbounded => prefix.to_vec(),
                    Bound::Included(b) => {
                        let mut k = prefix.to_vec();
                        k.extend_from_slice(b);
                        k
                    }
                    Bound::Excluded(b) => {
                        let mut k = prefix.to_vec();
                        k.extend_from_slice(b);
                        k.push(0xFF);
                        k
                    }
                };
                let hi_key = match hi {
                    Bound::Unbounded => {
                        let mut k = prefix.to_vec();
                        k.push(0xFF);
                        k
                    }
                    Bound::Included(b) => {
                        let mut k = prefix.to_vec();
                        k.extend_from_slice(b);
                        k.push(0xFF);
                        k
                    }
                    Bound::Excluded(b) => {
                        let mut k = prefix.to_vec();
                        k.extend_from_slice(b);
                        k
                    }
                };
                (lo_key, hi_key)
            }
        };
        let start = self
            .entries
            .partition_point(|(k, _)| k.as_slice() < lo_key.as_slice());
        let end = self
            .entries
            .partition_point(|(k, _)| k.as_slice() < hi_key.as_slice());
        PostingList::from_unsorted(self.entries[start..end].iter().map(|&(_, d)| d).collect())
    }

    /// Serialized size with common-prefix compression (§5.1 "by leveraging
    /// the common prefixes, we manage to increase the storage efficiency"):
    /// each key stores only the suffix differing from its predecessor.
    pub fn compressed_size(&self) -> usize {
        let mut sz = 0usize;
        let mut prev: &[u8] = &[];
        for (k, _) in &self.entries {
            let common = k
                .iter()
                .zip(prev.iter())
                .take_while(|(a, b)| a == b)
                .count();
            sz += 2 /* prefix len */ + (k.len() - common) + 4 /* doc id */;
            prev = k;
        }
        sz
    }

    /// Uncompressed serialized size (for the ablation bench).
    pub fn uncompressed_size(&self) -> usize {
        self.entries.iter().map(|(k, _)| k.len() + 4).sum()
    }
}

/// The write-once payload of a segment: stored docs plus every index
/// structure. Shared (`Arc`) between the engine's working set and any
/// number of pinned snapshots; never mutated after build.
#[derive(Debug, Clone, Default)]
pub(crate) struct SegmentCore {
    pub(crate) docs: Vec<Document>,
    pub(crate) by_record: FastMap<u64, DocId>,
    /// field -> term -> postings.
    pub(crate) inverted: FastMap<String, BTreeMap<String, PostingList>>,
    /// field -> sorted (value, doc).
    pub(crate) numeric: FastMap<String, Vec<(i64, DocId)>>,
    /// field -> sorted (f64 sort key, doc) for Double columns.
    pub(crate) numeric_f64: FastMap<String, Vec<(u64, DocId)>>,
    pub(crate) doc_values: FastMap<String, ColumnValues>,
    /// composite-index name -> index.
    pub(crate) composites: FastMap<String, CompositeIndex>,
    /// sub-attribute name -> value -> postings (frequency-selected only).
    pub(crate) attr_inverted: FastMap<String, BTreeMap<String, PostingList>>,
    pub(crate) indexed_attrs: FastSet<String>,
    pub(crate) size_bytes: usize,
}

/// The per-segment tombstone overlay. Copy-on-write: a tombstone applied
/// while a snapshot shares the overlay clones the bitmap instead of
/// mutating it, so pinned readers keep their point-in-time liveness.
#[derive(Debug, Clone, Default)]
pub(crate) struct LiveDocs {
    pub(crate) bits: Vec<bool>,
    pub(crate) count: usize,
}

/// An immutable segment.
///
/// Cloning is O(1): the doc store and indexes live in a shared
/// [`SegmentCore`] and the tombstone bitmap in a shared [`LiveDocs`],
/// both behind `Arc`. Deletes copy the liveness overlay on write
/// (`Arc::make_mut`), never the core.
#[derive(Debug, Clone, Default)]
pub struct Segment {
    /// Cluster-unique id.
    pub id: SegmentId,
    pub(crate) core: std::sync::Arc<SegmentCore>,
    pub(crate) live: std::sync::Arc<LiveDocs>,
}

impl Segment {
    /// Assembles a segment from its built parts.
    pub(crate) fn from_parts(id: SegmentId, core: SegmentCore, live: LiveDocs) -> Self {
        Segment {
            id,
            core: std::sync::Arc::new(core),
            live: std::sync::Arc::new(live),
        }
    }

    /// Total docs including deleted.
    pub fn doc_count(&self) -> usize {
        self.core.docs.len()
    }

    /// Live (non-deleted) docs.
    pub fn live_count(&self) -> usize {
        self.live.count
    }

    /// Approximate on-disk size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.core.size_bytes
    }

    /// The stored document (even if deleted — callers filter by liveness).
    pub fn doc(&self, id: DocId) -> Option<&Document> {
        self.core.docs.get(id as usize)
    }

    /// Whether `id` is live.
    pub fn is_live(&self, id: DocId) -> bool {
        self.live.bits.get(id as usize).copied().unwrap_or(false)
    }

    /// Whether every doc in the segment is live (no tombstones): the
    /// block read path hands out stored posting blocks zero-copy when
    /// this holds.
    pub fn fully_live(&self) -> bool {
        self.live.count == self.core.docs.len()
    }

    /// Doc id holding `record_id`, if present and live.
    pub fn find_record(&self, record_id: u64) -> Option<DocId> {
        self.core
            .by_record
            .get(&record_id)
            .copied()
            .filter(|&d| self.is_live(d))
    }

    /// Marks the doc holding `record_id` deleted; returns whether a live
    /// doc was deleted. (Lucene-style per-segment tombstone.)
    ///
    /// Copy-on-write: if a pinned snapshot still shares this overlay, the
    /// bitmap is cloned first, so the snapshot's liveness is untouched.
    pub fn delete_record(&mut self, record_id: u64) -> bool {
        if let Some(&d) = self.core.by_record.get(&record_id) {
            if self.live.bits[d as usize] {
                let live = std::sync::Arc::make_mut(&mut self.live);
                live.bits[d as usize] = false;
                live.count -= 1;
                return true;
            }
        }
        false
    }

    /// All live docs.
    pub fn all_live(&self) -> PostingList {
        PostingList::from_sorted(
            (0..self.core.docs.len() as DocId)
                .filter(|&d| self.live.bits[d as usize])
                .collect(),
        )
    }

    /// Drops deleted docs from a posting list.
    pub fn filter_live(&self, list: PostingList) -> PostingList {
        if self.live.count == self.core.docs.len() {
            return list;
        }
        PostingList::from_sorted(
            list.iter()
                .filter(|&d| self.live.bits[d as usize])
                .collect(),
        )
    }

    /// [`Segment::filter_live`] over a borrowed list: callers holding a
    /// shared (e.g. cached) posting list skip the upfront clone when
    /// tombstones force a rebuild anyway.
    pub fn filter_live_ref(&self, list: &PostingList) -> PostingList {
        if self.live.count == self.core.docs.len() {
            return list.clone();
        }
        PostingList::from_sorted(
            list.iter()
                .filter(|&d| self.live.bits[d as usize])
                .collect(),
        )
    }

    /// Term lookup in a field's inverted index (term must be normalized).
    pub fn term_docs(&self, field: &str, term: &str) -> PostingList {
        self.core
            .inverted
            .get(field)
            .and_then(|m| m.get(term))
            .cloned()
            .map(|l| self.filter_live(l))
            .unwrap_or_default()
    }

    /// Whether `field` has an inverted index in this segment.
    pub fn has_inverted(&self, field: &str) -> bool {
        self.core.inverted.contains_key(field)
    }

    /// Whether `field` has a numeric index in this segment.
    pub fn has_numeric(&self, field: &str) -> bool {
        self.core.numeric.contains_key(field)
    }

    /// Whether `field` has an f64 numeric index in this segment.
    pub fn has_numeric_f64(&self, field: &str) -> bool {
        self.core.numeric_f64.contains_key(field)
    }

    /// f64 range lookup with explicit bound kinds.
    pub fn numeric_f64_range(
        &self,
        field: &str,
        lo: std::ops::Bound<f64>,
        hi: std::ops::Bound<f64>,
    ) -> PostingList {
        let Some(idx) = self.core.numeric_f64.get(field) else {
            return PostingList::new();
        };
        let start = match lo {
            std::ops::Bound::Unbounded => 0,
            std::ops::Bound::Included(v) => {
                let k = f64_sort_key(v);
                idx.partition_point(|&(x, _)| x < k)
            }
            std::ops::Bound::Excluded(v) => {
                let k = f64_sort_key(v);
                idx.partition_point(|&(x, _)| x <= k)
            }
        };
        let end = match hi {
            std::ops::Bound::Unbounded => idx.len(),
            std::ops::Bound::Included(v) => {
                let k = f64_sort_key(v);
                idx.partition_point(|&(x, _)| x <= k)
            }
            std::ops::Bound::Excluded(v) => {
                let k = f64_sort_key(v);
                idx.partition_point(|&(x, _)| x < k)
            }
        };
        self.filter_live(PostingList::from_unsorted(
            idx[start..end].iter().map(|&(_, d)| d).collect(),
        ))
    }

    /// Exact f64 lookup.
    pub fn numeric_f64_eq(&self, field: &str, value: f64) -> PostingList {
        self.numeric_f64_range(
            field,
            std::ops::Bound::Included(value),
            std::ops::Bound::Included(value),
        )
    }

    /// Numeric range lookup `[lo, hi]` (inclusive, either side optional).
    pub fn numeric_range(&self, field: &str, lo: Option<i64>, hi: Option<i64>) -> PostingList {
        let Some(idx) = self.core.numeric.get(field) else {
            return PostingList::new();
        };
        let start = match lo {
            None => 0,
            Some(l) => idx.partition_point(|&(v, _)| v < l),
        };
        let end = match hi {
            None => idx.len(),
            Some(h) => idx.partition_point(|&(v, _)| v <= h),
        };
        self.filter_live(PostingList::from_unsorted(
            idx[start..end].iter().map(|&(_, d)| d).collect(),
        ))
    }

    /// Exact numeric lookup.
    pub fn numeric_eq(&self, field: &str, value: i64) -> PostingList {
        self.numeric_range(field, Some(value), Some(value))
    }

    /// Access to a composite index by name.
    pub fn composite(&self, name: &str) -> Option<&CompositeIndex> {
        self.core.composites.get(name)
    }

    /// Composite lookup, filtered to live docs.
    pub fn composite_lookup(
        &self,
        name: &str,
        prefix: &[u8],
        range: Option<EncodedRange<'_>>,
    ) -> PostingList {
        self.core
            .composites
            .get(name)
            .map(|c| self.filter_live(c.lookup(prefix, range)))
            .unwrap_or_default()
    }

    /// Sub-attribute lookup; `None` when the attribute is not
    /// frequency-indexed in this segment (callers fall back to a stored-doc
    /// scan).
    pub fn attr_docs(&self, name: &str, value: &str) -> Option<PostingList> {
        if !self.core.indexed_attrs.contains(name) {
            return None;
        }
        Some(
            self.core
                .attr_inverted
                .get(name)
                .and_then(|m| m.get(value))
                .cloned()
                .map(|l| self.filter_live(l))
                .unwrap_or_default(),
        )
    }

    /// Doc-value read for the sequential-scan path and aggregation.
    ///
    /// The routing virtuals (`tenant_id`/`record_id`/`created_time`) are
    /// served from the typed columns the builder emits; the stored-payload
    /// read only remains as a fallback for segments assembled outside the
    /// builder.
    pub fn doc_value(&self, field: &str, doc: DocId) -> Option<FieldValue> {
        if let Some(c) = self.core.doc_values.get(field) {
            return c.get(doc);
        }
        match field {
            "tenant_id" => self
                .doc(doc)
                .map(|d| FieldValue::Int(d.tenant_id.raw() as i64)),
            "record_id" => self
                .doc(doc)
                .map(|d| FieldValue::Int(d.record_id.raw() as i64)),
            "created_time" => self.doc(doc).map(|d| FieldValue::Timestamp(d.created_at)),
            _ => None,
        }
    }

    /// Direct access to a field's columnar doc values (including the
    /// routing virtuals): the typed fast path for block-wise scan filters,
    /// sort-key extraction, and aggregation pushdown.
    pub fn column(&self, field: &str) -> Option<&ColumnValues> {
        self.core.doc_values.get(field)
    }

    /// Whether a doc-values column exists for `field`.
    pub fn has_doc_values(&self, field: &str) -> bool {
        matches!(field, "tenant_id" | "record_id" | "created_time")
            || self.core.doc_values.contains_key(field)
    }

    /// Sequential scan (§5.1): filter an input posting list by a predicate
    /// on a doc-values column, producing the filtered list.
    pub fn scan_filter<F>(&self, field: &str, input: &PostingList, pred: F) -> PostingList
    where
        F: Fn(Option<&FieldValue>) -> bool,
    {
        PostingList::from_sorted(
            input
                .iter()
                .filter(|&d| pred(self.doc_value(field, d).as_ref()))
                .collect(),
        )
    }

    /// Names of the sub-attributes indexed in this segment.
    pub fn indexed_attrs(&self) -> &FastSet<String> {
        &self.core.indexed_attrs
    }

    /// Iterates live documents (doc id + document).
    pub fn live_docs(&self) -> impl Iterator<Item = (DocId, &Document)> {
        self.core
            .docs
            .iter()
            .enumerate()
            .filter(|(i, _)| self.live.bits[*i])
            .map(|(i, d)| (i as DocId, d))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn composite_prefix_and_range_lookup() {
        // Keys: (tenant, time) with tenant ∈ {1,2}, time ∈ {10,20,30}.
        let mut entries = Vec::new();
        let mut doc = 0u32;
        for tenant in [1i64, 2] {
            for t in [10u64, 20, 30] {
                let mut k = FieldValue::Int(tenant).to_ordered_bytes();
                FieldValue::Timestamp(t).encode_ordered(&mut k);
                entries.push((k, doc));
                doc += 1;
            }
        }
        let idx = CompositeIndex::build(vec!["tenant_id".into(), "created_time".into()], entries);

        // Prefix-only: tenant 1 → docs 0,1,2.
        let p1 = FieldValue::Int(1).to_ordered_bytes();
        assert_eq!(idx.lookup(&p1, None).ids(), &[0, 1, 2]);

        // Range: tenant 1, time in [15, 30] → docs 1,2.
        let lo = FieldValue::Timestamp(15).to_ordered_bytes();
        let hi = FieldValue::Timestamp(30).to_ordered_bytes();
        let got = idx.lookup(&p1, Some((Bound::Included(&lo), Bound::Included(&hi))));
        assert_eq!(got.ids(), &[1, 2]);

        // Exclusive upper bound drops 30.
        let got = idx.lookup(&p1, Some((Bound::Included(&lo), Bound::Excluded(&hi))));
        assert_eq!(got.ids(), &[1]);

        // Exclusive lower bound from 10.
        let lo10 = FieldValue::Timestamp(10).to_ordered_bytes();
        let got = idx.lookup(&p1, Some((Bound::Excluded(&lo10), Bound::Unbounded)));
        assert_eq!(got.ids(), &[1, 2]);

        // Missing tenant.
        let p9 = FieldValue::Int(9).to_ordered_bytes();
        assert!(idx.lookup(&p9, None).is_empty());
    }

    #[test]
    fn composite_prefix_does_not_leak_across_values() {
        // Tenant 1 vs tenant 16777216: int encodings are fixed-width so no
        // prefix confusion; strings exercise the prefix-free property.
        let mut entries = Vec::new();
        for (i, s) in ["ab", "abc", "b"].iter().enumerate() {
            entries.push((FieldValue::Str((*s).into()).to_ordered_bytes(), i as u32));
        }
        let idx = CompositeIndex::build(vec!["k".into()], entries);
        let p = FieldValue::Str("ab".into()).to_ordered_bytes();
        assert_eq!(
            idx.lookup(&p, None).ids(),
            &[0],
            "'abc' must not match 'ab'"
        );
    }

    #[test]
    fn prefix_compression_shrinks_size() {
        let mut entries = Vec::new();
        for t in 0..1000u64 {
            let mut k = FieldValue::Int(42).to_ordered_bytes();
            FieldValue::Timestamp(t).encode_ordered(&mut k);
            entries.push((k, t as u32));
        }
        let idx = CompositeIndex::build(vec!["a".into(), "b".into()], entries);
        assert!(
            idx.compressed_size() < idx.uncompressed_size() / 2,
            "shared tenant prefix should compress well: {} vs {}",
            idx.compressed_size(),
            idx.uncompressed_size()
        );
    }
}
