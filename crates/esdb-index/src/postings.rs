//! Posting lists and their algebra.
//!
//! A posting list is a strictly-increasing sequence of segment-local doc
//! IDs, stored as fixed [`BLOCK_SIZE`]-entry blocks with per-block max
//! skip data (the block min is the block's first entry, so min/max are
//! both O(1)). Query plans (paper Fig. 7/8) are trees of intersections
//! and unions over posting lists; their cost is dominated by list
//! lengths, which is exactly the overhead the paper's optimizer attacks.
//! The algebra here works block-at-a-time: skip data prunes whole blocks
//! before any element is compared, galloping search handles heavily
//! skewed size ratios, and unions merge k-way instead of pairwise.

use crate::segment::DocId;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Entries per posting block. Chosen to keep one block of doc ids (512 B)
/// plus its decoded column values inside L1 while amortizing the per-block
/// skip probe over enough elements to matter.
pub const BLOCK_SIZE: usize = 128;

/// Work counters for block-wise set operations: how many blocks had their
/// elements examined (`scanned`), were jumped over via skip data without
/// touching any element (`skipped`), or were resolved wholesale by a
/// min/max disjointness test — dropped in an intersection, copied verbatim
/// in a difference (`pruned`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BlockStats {
    /// Blocks whose elements were individually examined.
    pub scanned: u64,
    /// Blocks jumped over via skip data (no element touched).
    pub skipped: u64,
    /// Blocks resolved wholesale by the min/max disjointness test.
    pub pruned: u64,
}

impl BlockStats {
    /// Accumulates another operation's counters into this one.
    pub fn merge(&mut self, other: &BlockStats) {
        self.scanned += other.scanned;
        self.skipped += other.skipped;
        self.pruned += other.pruned;
    }

    /// Total blocks accounted for.
    pub fn total(&self) -> u64 {
        self.scanned + self.skipped + self.pruned
    }
}

/// A borrowed view of one posting block: at most [`BLOCK_SIZE`] strictly
/// increasing doc ids. Blocks handed out by [`PostingList::blocks`] are
/// never empty, so `min`/`max` are total.
#[derive(Debug, Clone, Copy)]
pub struct BlockView<'a> {
    ids: &'a [DocId],
}

impl<'a> BlockView<'a> {
    /// The ids of this block, strictly increasing.
    pub fn ids(&self) -> &'a [DocId] {
        self.ids
    }

    /// Number of ids in the block (1..=BLOCK_SIZE).
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the block is empty (never true for blocks from a list).
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Smallest id in the block.
    pub fn min(&self) -> DocId {
        self.ids[0]
    }

    /// Largest id in the block.
    pub fn max(&self) -> DocId {
        self.ids[self.ids.len() - 1]
    }
}

/// A sorted, deduplicated list of doc IDs in fixed-size blocks.
///
/// ```
/// use esdb_index::PostingList;
///
/// let a = PostingList::from_unsorted(vec![3, 1, 2]);
/// let b = PostingList::from_unsorted(vec![2, 3, 4]);
/// assert_eq!(a.intersect(&b).ids(), &[2, 3]);
/// assert_eq!(a.union(&b).ids(), &[1, 2, 3, 4]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PostingList {
    ids: Vec<DocId>,
    /// Per-block skip data: `skip[b]` is the largest id in block `b`
    /// (derived from `ids`, maintained on every mutation).
    skip: Vec<DocId>,
}

fn build_skip(ids: &[DocId]) -> Vec<DocId> {
    ids.chunks(BLOCK_SIZE).map(|c| c[c.len() - 1]).collect()
}

impl PostingList {
    /// The empty list.
    pub fn new() -> Self {
        PostingList {
            ids: Vec::new(),
            skip: Vec::new(),
        }
    }

    /// Builds from a vector that is already sorted and unique
    /// (debug-asserted).
    pub fn from_sorted(ids: Vec<DocId>) -> Self {
        debug_assert!(
            ids.windows(2).all(|w| w[0] < w[1]),
            "ids must be strictly increasing"
        );
        let skip = build_skip(&ids);
        PostingList { ids, skip }
    }

    /// Builds from arbitrary ids (sorts + dedups).
    pub fn from_unsorted(mut ids: Vec<DocId>) -> Self {
        ids.sort_unstable();
        ids.dedup();
        let skip = build_skip(&ids);
        PostingList { ids, skip }
    }

    /// Internal: wraps an output vector that is sorted-unique by
    /// construction.
    fn from_sorted_vec(ids: Vec<DocId>) -> Self {
        let skip = build_skip(&ids);
        PostingList { ids, skip }
    }

    /// Appends an id that must be larger than the current tail (index
    /// build path). Skip data is maintained incrementally.
    pub fn push(&mut self, id: DocId) {
        debug_assert!(self.ids.last().map_or(true, |&l| l < id));
        self.ids.push(id);
        if (self.ids.len() - 1) % BLOCK_SIZE == 0 {
            self.skip.push(id);
        } else {
            *self.skip.last_mut().expect("skip tracks last block") = id;
        }
    }

    /// Number of postings.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// The raw sorted ids.
    pub fn ids(&self) -> &[DocId] {
        &self.ids
    }

    /// Number of blocks (`len` divided by [`BLOCK_SIZE`], rounded up).
    pub fn num_blocks(&self) -> usize {
        self.skip.len()
    }

    /// The `b`-th block (never empty for `b < num_blocks()`).
    pub fn block(&self, b: usize) -> BlockView<'_> {
        let start = b * BLOCK_SIZE;
        let end = ((b + 1) * BLOCK_SIZE).min(self.ids.len());
        BlockView {
            ids: &self.ids[start..end],
        }
    }

    /// Largest id in block `b` — the skip datum, read without touching
    /// the block's elements.
    pub fn block_max(&self, b: usize) -> DocId {
        self.skip[b]
    }

    /// Iterates the list block-at-a-time.
    pub fn blocks(&self) -> impl Iterator<Item = BlockView<'_>> {
        self.ids.chunks(BLOCK_SIZE).map(|c| BlockView { ids: c })
    }

    /// Iterates doc ids in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = DocId> + '_ {
        self.ids.iter().copied()
    }

    /// Whether `id` is present (skip probe, then binary search in-block).
    pub fn contains(&self, id: DocId) -> bool {
        let b = self.skip.partition_point(|&m| m < id);
        if b >= self.skip.len() {
            return false;
        }
        self.block(b).ids.binary_search(&id).is_ok()
    }

    /// Intersection. See [`PostingList::intersect_stats`].
    pub fn intersect(&self, other: &PostingList) -> PostingList {
        self.intersect_stats(other, &mut BlockStats::default())
    }

    /// Block-at-a-time intersection: walks the smaller list block-by-block,
    /// jumps the larger list's cursor forward whole blocks via skip data,
    /// drops blocks whose [min, max] window is disjoint from the remaining
    /// candidates, and only then compares elements — galloping into the
    /// large list when the size ratio is heavily skewed (the common case
    /// when one predicate is much more selective, which is what composite
    /// indexes produce).
    pub fn intersect_stats(&self, other: &PostingList, stats: &mut BlockStats) -> PostingList {
        let (small, large) = if self.len() <= other.len() {
            (self, other)
        } else {
            (other, self)
        };
        if small.is_empty() || large.is_empty() {
            return PostingList::new();
        }
        let gallop = large.len() / small.len() >= 8;
        let mut out = Vec::with_capacity(small.len());
        let llen = large.ids.len();
        let mut lo = 0usize; // cursor into large.ids
        for sb in 0..small.num_blocks() {
            if lo >= llen {
                break;
            }
            let blk = small.block(sb);
            let (smin, smax) = (blk.min(), blk.max());
            // Skip whole blocks of `large` whose max is below this block's
            // min: one probe per skipped block, zero element comparisons.
            let lb = lo / BLOCK_SIZE;
            if large.skip[lb] < smin {
                let nlb = lb + large.skip[lb..].partition_point(|&m| m < smin);
                stats.skipped += (nlb - lb) as u64;
                lo = nlb * BLOCK_SIZE;
                if lo >= llen {
                    break;
                }
            }
            // Disjoint windows: everything remaining in `large` is above
            // this block's max, so the whole block is dropped unexamined.
            if large.ids[lo] > smax {
                stats.pruned += 1;
                continue;
            }
            stats.scanned += 1;
            if gallop {
                // Galloping: for each id in the small block, exponential +
                // binary search in the large list from the cursor.
                for &id in blk.ids() {
                    let mut step = 1usize;
                    let mut hi = lo;
                    while hi < llen && large.ids[hi] < id {
                        lo = hi;
                        hi = (hi + step).min(llen);
                        step *= 2;
                    }
                    // The match may sit at `hi` itself (the probe that
                    // stopped the gallop) or at `lo` (carried over from the
                    // previous iteration), so search the inclusive range
                    // [lo, hi].
                    let end = if hi < llen { hi + 1 } else { llen };
                    match large.ids[lo..end].binary_search(&id) {
                        Ok(i) => {
                            out.push(id);
                            lo += i + 1;
                        }
                        Err(i) => lo += i,
                    }
                    if lo >= llen {
                        break;
                    }
                }
            } else {
                // Linear merge within the overlapping window.
                let ids = blk.ids();
                let mut i = 0usize;
                while i < ids.len() && lo < llen {
                    match ids[i].cmp(&large.ids[lo]) {
                        std::cmp::Ordering::Less => i += 1,
                        std::cmp::Ordering::Greater => lo += 1,
                        std::cmp::Ordering::Equal => {
                            out.push(ids[i]);
                            i += 1;
                            lo += 1;
                        }
                    }
                }
            }
        }
        PostingList::from_sorted_vec(out)
    }

    /// Union by linear merge.
    pub fn union(&self, other: &PostingList) -> PostingList {
        let mut out = Vec::with_capacity(self.len() + other.len());
        let (mut i, mut j) = (0, 0);
        while i < self.ids.len() && j < other.ids.len() {
            match self.ids[i].cmp(&other.ids[j]) {
                std::cmp::Ordering::Less => {
                    out.push(self.ids[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push(other.ids[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    out.push(self.ids[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&self.ids[i..]);
        out.extend_from_slice(&other.ids[j..]);
        PostingList::from_sorted_vec(out)
    }

    /// `self \ other`. See [`PostingList::difference_stats`].
    pub fn difference(&self, other: &PostingList) -> PostingList {
        self.difference_stats(other, &mut BlockStats::default())
    }

    /// Block-at-a-time `self \ other`: blocks of `self` with no overlap in
    /// `other` (detected via skip data) are copied wholesale; only
    /// overlapping blocks pay per-element comparisons.
    pub fn difference_stats(&self, other: &PostingList, stats: &mut BlockStats) -> PostingList {
        if other.is_empty() {
            return self.clone();
        }
        let mut out = Vec::with_capacity(self.len());
        let olen = other.ids.len();
        let mut j = 0usize; // cursor into other.ids
        for sb in 0..self.num_blocks() {
            let blk = self.block(sb);
            let (smin, smax) = (blk.min(), blk.max());
            if j < olen {
                let jb = j / BLOCK_SIZE;
                if other.skip[jb] < smin {
                    let njb = jb + other.skip[jb..].partition_point(|&m| m < smin);
                    stats.skipped += (njb - jb) as u64;
                    j = njb * BLOCK_SIZE;
                }
            }
            if j >= olen || other.ids[j] > smax {
                // No subtrahend in this block's window: copy it verbatim.
                stats.pruned += 1;
                out.extend_from_slice(blk.ids());
                continue;
            }
            stats.scanned += 1;
            for &id in blk.ids() {
                while j < olen && other.ids[j] < id {
                    j += 1;
                }
                if j >= olen || other.ids[j] != id {
                    out.push(id);
                }
            }
        }
        PostingList::from_sorted_vec(out)
    }

    /// K-way intersection, smallest lists first (the optimizer's ordering).
    pub fn intersect_many(lists: &[&PostingList]) -> PostingList {
        Self::intersect_many_stats(lists, &mut BlockStats::default())
    }

    /// K-way block-wise intersection with work counters.
    ///
    /// Sorting ascending by length bounds every intermediate result by the
    /// smallest input and keeps skip pruning + galloping effective; any
    /// empty input short-circuits the whole fold, and the first pairwise
    /// intersection avoids cloning the smallest list outright.
    pub fn intersect_many_stats(lists: &[&PostingList], stats: &mut BlockStats) -> PostingList {
        match lists.len() {
            0 => PostingList::new(),
            1 => lists[0].clone(),
            _ => {
                if lists.iter().any(|l| l.is_empty()) {
                    return PostingList::new();
                }
                let mut order: Vec<&&PostingList> = lists.iter().collect();
                order.sort_unstable_by_key(|l| l.len());
                let mut acc = order[0].intersect_stats(order[1], stats);
                for l in &order[2..] {
                    if acc.is_empty() {
                        break;
                    }
                    acc = acc.intersect_stats(l, stats);
                }
                acc
            }
        }
    }

    /// K-way union. See [`PostingList::union_many_stats`].
    pub fn union_many(lists: &[&PostingList]) -> PostingList {
        Self::union_many_stats(lists, &mut BlockStats::default())
    }

    /// K-way union by a single heap merge over all sorted inputs.
    ///
    /// One output vector is allocated up front and every input element is
    /// visited exactly once (O(n log k)), unlike a pairwise fold that
    /// re-allocates and re-copies intermediate unions on high-fan-in OR
    /// plans. When only one source remains its tail is copied wholesale.
    pub fn union_many_stats(lists: &[&PostingList], stats: &mut BlockStats) -> PostingList {
        match lists.len() {
            0 => PostingList::new(),
            1 => lists[0].clone(),
            2 => {
                stats.scanned += (lists[0].num_blocks() + lists[1].num_blocks()) as u64;
                lists[0].union(lists[1])
            }
            _ => {
                let mut pos = vec![0usize; lists.len()];
                let mut heap: BinaryHeap<Reverse<(DocId, usize)>> = lists
                    .iter()
                    .enumerate()
                    .filter(|(_, l)| !l.is_empty())
                    .map(|(i, l)| Reverse((l.ids[0], i)))
                    .collect();
                stats.scanned += lists.iter().map(|l| l.num_blocks() as u64).sum::<u64>();
                let mut out = Vec::with_capacity(lists.iter().map(|l| l.len()).sum());
                while let Some(Reverse((id, li))) = heap.pop() {
                    if out.last() != Some(&id) {
                        out.push(id);
                    }
                    pos[li] += 1;
                    if heap.is_empty() {
                        // Single remaining source: its tail is already
                        // sorted and above everything emitted.
                        let tail = &lists[li].ids[pos[li]..];
                        if let Some(&first) = tail.first() {
                            if out.last() == Some(&first) {
                                out.extend_from_slice(&tail[1..]);
                            } else {
                                out.extend_from_slice(tail);
                            }
                        }
                        break;
                    }
                    if let Some(&next) = lists[li].ids.get(pos[li]) {
                        heap.push(Reverse((next, li)));
                    }
                }
                PostingList::from_sorted_vec(out)
            }
        }
    }
}

impl FromIterator<DocId> for PostingList {
    fn from_iter<T: IntoIterator<Item = DocId>>(iter: T) -> Self {
        PostingList::from_unsorted(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeSet;

    fn pl(ids: &[u32]) -> PostingList {
        PostingList::from_unsorted(ids.to_vec())
    }

    #[test]
    fn basic_algebra() {
        let a = pl(&[1, 2, 3, 4]);
        let b = pl(&[2, 3, 4, 5]);
        assert_eq!(a.intersect(&b), pl(&[2, 3, 4]));
        assert_eq!(a.union(&b), pl(&[1, 2, 3, 4, 5]));
        assert_eq!(a.difference(&b), pl(&[1]));
        assert_eq!(b.difference(&a), pl(&[5]));
    }

    #[test]
    fn paper_fig7_example() {
        // A∩B∩C = D, D∪E = F from the paper's Lucene plan example.
        let a = pl(&[1, 2, 3, 4]);
        let b = pl(&[2, 3, 4, 5]);
        let c = pl(&[3, 4, 5]);
        let d = PostingList::intersect_many(&[&a, &b, &c]);
        assert_eq!(d, pl(&[3, 4]));
        let e = pl(&[6]);
        assert_eq!(d.union(&e), pl(&[3, 4, 6]));
    }

    #[test]
    fn intersect_many_orders_by_length_and_short_circuits() {
        // Inputs deliberately given largest-first: the result must be
        // independent of input order.
        let large = PostingList::from_sorted((0..10_000).collect());
        let mid = pl(&[5, 50, 500, 5_000]);
        let small = pl(&[50, 5_000]);
        let fwd = PostingList::intersect_many(&[&large, &mid, &small]);
        let rev = PostingList::intersect_many(&[&small, &mid, &large]);
        assert_eq!(fwd, pl(&[50, 5_000]));
        assert_eq!(fwd, rev);
        // Any empty input empties the whole intersection immediately.
        let empty = PostingList::new();
        assert!(PostingList::intersect_many(&[&large, &empty, &mid]).is_empty());
    }

    #[test]
    fn galloping_path_exercised() {
        let small = pl(&[100, 5_000, 99_999]);
        let large = PostingList::from_sorted((0..100_000).collect());
        assert_eq!(small.intersect(&large), small);
        let missing = pl(&[200_000]);
        assert!(missing.intersect(&large).is_empty());
    }

    #[test]
    fn empty_interactions() {
        let e = PostingList::new();
        let a = pl(&[1, 2]);
        assert!(e.intersect(&a).is_empty());
        assert_eq!(e.union(&a), a);
        assert!(PostingList::intersect_many(&[]).is_empty());
        assert!(PostingList::union_many(&[]).is_empty());
    }

    #[test]
    fn contains_binary_search() {
        let a = pl(&[10, 20, 30]);
        assert!(a.contains(20));
        assert!(!a.contains(25));
        assert!(!a.contains(5));
        assert!(!a.contains(31));
    }

    #[test]
    fn block_layout_and_skip_data() {
        // 300 ids → 3 blocks: 128 + 128 + 44.
        let ids: Vec<u32> = (0..300).map(|i| i * 3).collect();
        let p = PostingList::from_sorted(ids.clone());
        assert_eq!(p.num_blocks(), 3);
        assert_eq!(p.block(0).len(), BLOCK_SIZE);
        assert_eq!(p.block(2).len(), 300 - 2 * BLOCK_SIZE);
        assert_eq!(p.block(0).min(), 0);
        assert_eq!(p.block(0).max(), 127 * 3);
        assert_eq!(p.block_max(0), 127 * 3);
        assert_eq!(p.block_max(2), 299 * 3);
        let rebuilt: Vec<u32> = p.blocks().flat_map(|b| b.ids().to_vec()).collect();
        assert_eq!(rebuilt, ids);
    }

    #[test]
    fn push_maintains_skip_data() {
        let mut p = PostingList::new();
        for i in 0..=BLOCK_SIZE as u32 {
            p.push(i * 2);
        }
        assert_eq!(p.num_blocks(), 2);
        assert_eq!(p.block_max(0), (BLOCK_SIZE as u32 - 1) * 2);
        assert_eq!(p.block_max(1), BLOCK_SIZE as u32 * 2);
        // Equivalent to a bulk build.
        assert_eq!(
            p,
            PostingList::from_sorted((0..=BLOCK_SIZE as u32).map(|i| i * 2).collect())
        );
    }

    #[test]
    fn intersect_skip_counters() {
        // Small list hits only the far end of the large list: every large
        // block below it must be skipped via skip data, not scanned.
        let large = PostingList::from_sorted((0..10_000).collect());
        let small = pl(&[9_990, 9_995]);
        let mut stats = BlockStats::default();
        let got = small.intersect_stats(&large, &mut stats);
        assert_eq!(got, small);
        assert!(stats.skipped > 70, "skipped {} blocks", stats.skipped);
        assert!(stats.scanned <= 2);
    }

    #[test]
    fn intersect_prunes_disjoint_blocks() {
        // Disjoint windows: small sits entirely below large's first id.
        let small = PostingList::from_sorted((0..256).collect());
        let large = PostingList::from_sorted((100_000..100_256).collect());
        let mut stats = BlockStats::default();
        assert!(small.intersect_stats(&large, &mut stats).is_empty());
        assert_eq!(stats.pruned, 2, "both small blocks pruned");
        assert_eq!(stats.scanned, 0);
    }

    #[test]
    fn difference_copies_disjoint_blocks_wholesale() {
        let a = PostingList::from_sorted((0..1_000).collect());
        let b = pl(&[500]);
        let mut stats = BlockStats::default();
        let got = a.difference_stats(&b, &mut stats);
        assert_eq!(got.len(), 999);
        assert!(!got.contains(500));
        assert!(stats.pruned >= 6, "pruned {}", stats.pruned);
        assert!(stats.scanned <= 2);
    }

    #[test]
    fn union_many_high_fan_in() {
        // 16-way union with interleaved ids exercises the heap path.
        let lists: Vec<PostingList> = (0..16u32)
            .map(|k| PostingList::from_sorted((0..200).map(|i| i * 16 + k).collect()))
            .collect();
        let refs: Vec<&PostingList> = lists.iter().collect();
        let got = PostingList::union_many(&refs);
        assert_eq!(got.len(), 3_200);
        assert_eq!(got.ids()[0], 0);
        assert_eq!(*got.ids().last().unwrap(), 199 * 16 + 15);
        assert!(got.ids().windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn union_many_tail_copy_dedups_boundary() {
        // The last id popped from the heap equals the head of the sole
        // remaining source's tail: the wholesale copy must not duplicate it.
        let a = pl(&[1, 5]);
        let b = pl(&[2, 3]);
        let c = pl(&[5, 6, 7]);
        let got = PostingList::union_many(&[&a, &b, &c]);
        assert_eq!(got.ids(), &[1, 2, 3, 5, 6, 7]);
    }

    fn arb_ids() -> impl Strategy<Value = Vec<u32>> {
        proptest::collection::vec(0u32..500, 0..200)
    }

    proptest! {
        #[test]
        fn prop_intersect_matches_sets(a in arb_ids(), b in arb_ids()) {
            let sa: BTreeSet<u32> = a.iter().copied().collect();
            let sb: BTreeSet<u32> = b.iter().copied().collect();
            let expect: Vec<u32> = sa.intersection(&sb).copied().collect();
            let got = pl(&a).intersect(&pl(&b));
            prop_assert_eq!(got.ids(), expect.as_slice());
        }

        #[test]
        fn prop_union_matches_sets(a in arb_ids(), b in arb_ids()) {
            let sa: BTreeSet<u32> = a.iter().copied().collect();
            let sb: BTreeSet<u32> = b.iter().copied().collect();
            let expect: Vec<u32> = sa.union(&sb).copied().collect();
            let got = pl(&a).union(&pl(&b));
            prop_assert_eq!(got.ids(), expect.as_slice());
        }

        #[test]
        fn prop_difference_matches_sets(a in arb_ids(), b in arb_ids()) {
            let sa: BTreeSet<u32> = a.iter().copied().collect();
            let sb: BTreeSet<u32> = b.iter().copied().collect();
            let expect: Vec<u32> = sa.difference(&sb).copied().collect();
            let got = pl(&a).difference(&pl(&b));
            prop_assert_eq!(got.ids(), expect.as_slice());
        }

        #[test]
        fn prop_many_way_ops(lists in proptest::collection::vec(arb_ids(), 1..6)) {
            let pls: Vec<PostingList> = lists.iter().map(|l| pl(l)).collect();
            let refs: Vec<&PostingList> = pls.iter().collect();
            let mut inter: BTreeSet<u32> = lists[0].iter().copied().collect();
            let mut uni: BTreeSet<u32> = BTreeSet::new();
            for l in &lists {
                let s: BTreeSet<u32> = l.iter().copied().collect();
                inter = inter.intersection(&s).copied().collect();
                uni.extend(s);
            }
            let iv: Vec<u32> = inter.into_iter().collect();
            let uv: Vec<u32> = uni.into_iter().collect();
            let gi = PostingList::intersect_many(&refs);
            prop_assert_eq!(gi.ids(), iv.as_slice());
            let gu = PostingList::union_many(&refs);
            prop_assert_eq!(gu.ids(), uv.as_slice());
        }

        #[test]
        fn prop_skip_data_is_consistent(a in arb_ids()) {
            let p = pl(&a);
            for (b, blk) in p.blocks().enumerate() {
                prop_assert_eq!(p.block_max(b), blk.max());
                prop_assert_eq!(p.block(b).ids(), blk.ids());
            }
            prop_assert_eq!(p.num_blocks(), p.len().div_ceil(BLOCK_SIZE));
            // contains() via skip probe agrees with membership.
            for id in [0u32, 1, 250, 499, 500] {
                prop_assert_eq!(p.contains(id), a.contains(&id));
            }
        }

        #[test]
        fn prop_push_equals_bulk_build(a in arb_ids()) {
            let bulk = pl(&a);
            let mut inc = PostingList::new();
            for id in bulk.iter() {
                inc.push(id);
            }
            prop_assert_eq!(inc, bulk);
        }
    }
}
