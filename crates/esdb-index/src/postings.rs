//! Posting lists and their algebra.
//!
//! A posting list is a strictly-increasing sequence of segment-local doc
//! IDs. Query plans (paper Fig. 7/8) are trees of intersections and unions
//! over posting lists; their cost is dominated by list lengths, which is
//! exactly the overhead the paper's optimizer attacks, so the algebra here
//! is implemented with the standard adaptive techniques (galloping
//! intersection, k-way union).

use crate::segment::DocId;

/// A sorted, deduplicated list of doc IDs.
///
/// ```
/// use esdb_index::PostingList;
///
/// let a = PostingList::from_unsorted(vec![3, 1, 2]);
/// let b = PostingList::from_unsorted(vec![2, 3, 4]);
/// assert_eq!(a.intersect(&b).ids(), &[2, 3]);
/// assert_eq!(a.union(&b).ids(), &[1, 2, 3, 4]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PostingList {
    ids: Vec<DocId>,
}

impl PostingList {
    /// The empty list.
    pub fn new() -> Self {
        PostingList { ids: Vec::new() }
    }

    /// Builds from a vector that is already sorted and unique
    /// (debug-asserted).
    pub fn from_sorted(ids: Vec<DocId>) -> Self {
        debug_assert!(
            ids.windows(2).all(|w| w[0] < w[1]),
            "ids must be strictly increasing"
        );
        PostingList { ids }
    }

    /// Builds from arbitrary ids (sorts + dedups).
    pub fn from_unsorted(mut ids: Vec<DocId>) -> Self {
        ids.sort_unstable();
        ids.dedup();
        PostingList { ids }
    }

    /// Appends an id that must be larger than the current tail (index
    /// build path).
    pub fn push(&mut self, id: DocId) {
        debug_assert!(self.ids.last().map_or(true, |&l| l < id));
        self.ids.push(id);
    }

    /// Number of postings.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// The raw sorted ids.
    pub fn ids(&self) -> &[DocId] {
        &self.ids
    }

    /// Iterates doc ids in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = DocId> + '_ {
        self.ids.iter().copied()
    }

    /// Whether `id` is present (binary search).
    pub fn contains(&self, id: DocId) -> bool {
        self.ids.binary_search(&id).is_ok()
    }

    /// Intersection with galloping search when the lists' sizes are
    /// lopsided (the common case when one predicate is much more selective,
    /// which is what composite indexes produce).
    pub fn intersect(&self, other: &PostingList) -> PostingList {
        let (small, large) = if self.len() <= other.len() {
            (self, other)
        } else {
            (other, self)
        };
        if small.is_empty() {
            return PostingList::new();
        }
        let mut out = Vec::with_capacity(small.len());
        if large.len() / small.len().max(1) >= 8 {
            // Galloping: for each id in the small list, exponential +
            // binary search in the large one.
            let mut lo = 0usize;
            for &id in &small.ids {
                let mut step = 1usize;
                let mut hi = lo;
                while hi < large.ids.len() && large.ids[hi] < id {
                    lo = hi;
                    hi = (hi + step).min(large.ids.len());
                    step *= 2;
                }
                // The match may sit at `hi` itself (the probe that stopped
                // the gallop) or at `lo` (carried over from the previous
                // iteration), so search the inclusive range [lo, hi].
                let end = if hi < large.ids.len() {
                    hi + 1
                } else {
                    large.ids.len()
                };
                match large.ids[lo..end].binary_search(&id) {
                    Ok(i) => {
                        out.push(id);
                        lo += i + 1;
                    }
                    Err(i) => lo += i,
                }
                if lo >= large.ids.len() {
                    break;
                }
            }
        } else {
            // Linear merge.
            let (mut i, mut j) = (0, 0);
            while i < small.ids.len() && j < large.ids.len() {
                match small.ids[i].cmp(&large.ids[j]) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => {
                        out.push(small.ids[i]);
                        i += 1;
                        j += 1;
                    }
                }
            }
        }
        PostingList { ids: out }
    }

    /// Union by linear merge.
    pub fn union(&self, other: &PostingList) -> PostingList {
        let mut out = Vec::with_capacity(self.len() + other.len());
        let (mut i, mut j) = (0, 0);
        while i < self.ids.len() && j < other.ids.len() {
            match self.ids[i].cmp(&other.ids[j]) {
                std::cmp::Ordering::Less => {
                    out.push(self.ids[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push(other.ids[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    out.push(self.ids[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&self.ids[i..]);
        out.extend_from_slice(&other.ids[j..]);
        PostingList { ids: out }
    }

    /// `self \ other`.
    pub fn difference(&self, other: &PostingList) -> PostingList {
        let mut out = Vec::with_capacity(self.len());
        let mut j = 0usize;
        for &id in &self.ids {
            while j < other.ids.len() && other.ids[j] < id {
                j += 1;
            }
            if j >= other.ids.len() || other.ids[j] != id {
                out.push(id);
            }
        }
        PostingList { ids: out }
    }

    /// K-way intersection, smallest lists first (the optimizer's ordering).
    ///
    /// Sorting ascending by length bounds every intermediate result by the
    /// smallest input and keeps the galloping search effective; any empty
    /// input short-circuits the whole fold, and the first pairwise
    /// intersection avoids cloning the smallest list outright.
    pub fn intersect_many(lists: &[&PostingList]) -> PostingList {
        match lists.len() {
            0 => PostingList::new(),
            1 => lists[0].clone(),
            _ => {
                if lists.iter().any(|l| l.is_empty()) {
                    return PostingList::new();
                }
                let mut order: Vec<&&PostingList> = lists.iter().collect();
                order.sort_unstable_by_key(|l| l.len());
                let mut acc = order[0].intersect(order[1]);
                for l in &order[2..] {
                    if acc.is_empty() {
                        break;
                    }
                    acc = acc.intersect(l);
                }
                acc
            }
        }
    }

    /// K-way union by repeated pairwise merge (balanced).
    pub fn union_many(lists: &[&PostingList]) -> PostingList {
        match lists.len() {
            0 => PostingList::new(),
            1 => lists[0].clone(),
            _ => {
                let mut acc: Vec<PostingList> = lists.iter().map(|l| (*l).clone()).collect();
                while acc.len() > 1 {
                    let mut next = Vec::with_capacity(acc.len().div_ceil(2));
                    let mut it = acc.chunks(2);
                    for pair in &mut it {
                        next.push(if pair.len() == 2 {
                            pair[0].union(&pair[1])
                        } else {
                            pair[0].clone()
                        });
                    }
                    acc = next;
                }
                acc.pop().expect("non-empty")
            }
        }
    }
}

impl FromIterator<DocId> for PostingList {
    fn from_iter<T: IntoIterator<Item = DocId>>(iter: T) -> Self {
        PostingList::from_unsorted(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeSet;

    fn pl(ids: &[u32]) -> PostingList {
        PostingList::from_unsorted(ids.to_vec())
    }

    #[test]
    fn basic_algebra() {
        let a = pl(&[1, 2, 3, 4]);
        let b = pl(&[2, 3, 4, 5]);
        assert_eq!(a.intersect(&b), pl(&[2, 3, 4]));
        assert_eq!(a.union(&b), pl(&[1, 2, 3, 4, 5]));
        assert_eq!(a.difference(&b), pl(&[1]));
        assert_eq!(b.difference(&a), pl(&[5]));
    }

    #[test]
    fn paper_fig7_example() {
        // A∩B∩C = D, D∪E = F from the paper's Lucene plan example.
        let a = pl(&[1, 2, 3, 4]);
        let b = pl(&[2, 3, 4, 5]);
        let c = pl(&[3, 4, 5]);
        let d = PostingList::intersect_many(&[&a, &b, &c]);
        assert_eq!(d, pl(&[3, 4]));
        let e = pl(&[6]);
        assert_eq!(d.union(&e), pl(&[3, 4, 6]));
    }

    #[test]
    fn intersect_many_orders_by_length_and_short_circuits() {
        // Inputs deliberately given largest-first: the result must be
        // independent of input order.
        let large = PostingList::from_sorted((0..10_000).collect());
        let mid = pl(&[5, 50, 500, 5_000]);
        let small = pl(&[50, 5_000]);
        let fwd = PostingList::intersect_many(&[&large, &mid, &small]);
        let rev = PostingList::intersect_many(&[&small, &mid, &large]);
        assert_eq!(fwd, pl(&[50, 5_000]));
        assert_eq!(fwd, rev);
        // Any empty input empties the whole intersection immediately.
        let empty = PostingList::new();
        assert!(PostingList::intersect_many(&[&large, &empty, &mid]).is_empty());
    }

    #[test]
    fn galloping_path_exercised() {
        let small = pl(&[100, 5_000, 99_999]);
        let large = PostingList::from_sorted((0..100_000).collect());
        assert_eq!(small.intersect(&large), small);
        let missing = pl(&[200_000]);
        assert!(missing.intersect(&large).is_empty());
    }

    #[test]
    fn empty_interactions() {
        let e = PostingList::new();
        let a = pl(&[1, 2]);
        assert!(e.intersect(&a).is_empty());
        assert_eq!(e.union(&a), a);
        assert!(PostingList::intersect_many(&[]).is_empty());
        assert!(PostingList::union_many(&[]).is_empty());
    }

    #[test]
    fn contains_binary_search() {
        let a = pl(&[10, 20, 30]);
        assert!(a.contains(20));
        assert!(!a.contains(25));
    }

    fn arb_ids() -> impl Strategy<Value = Vec<u32>> {
        proptest::collection::vec(0u32..500, 0..200)
    }

    proptest! {
        #[test]
        fn prop_intersect_matches_sets(a in arb_ids(), b in arb_ids()) {
            let sa: BTreeSet<u32> = a.iter().copied().collect();
            let sb: BTreeSet<u32> = b.iter().copied().collect();
            let expect: Vec<u32> = sa.intersection(&sb).copied().collect();
            let got = pl(&a).intersect(&pl(&b));
            prop_assert_eq!(got.ids(), expect.as_slice());
        }

        #[test]
        fn prop_union_matches_sets(a in arb_ids(), b in arb_ids()) {
            let sa: BTreeSet<u32> = a.iter().copied().collect();
            let sb: BTreeSet<u32> = b.iter().copied().collect();
            let expect: Vec<u32> = sa.union(&sb).copied().collect();
            let got = pl(&a).union(&pl(&b));
            prop_assert_eq!(got.ids(), expect.as_slice());
        }

        #[test]
        fn prop_difference_matches_sets(a in arb_ids(), b in arb_ids()) {
            let sa: BTreeSet<u32> = a.iter().copied().collect();
            let sb: BTreeSet<u32> = b.iter().copied().collect();
            let expect: Vec<u32> = sa.difference(&sb).copied().collect();
            let got = pl(&a).difference(&pl(&b));
            prop_assert_eq!(got.ids(), expect.as_slice());
        }

        #[test]
        fn prop_many_way_ops(lists in proptest::collection::vec(arb_ids(), 1..6)) {
            let pls: Vec<PostingList> = lists.iter().map(|l| pl(l)).collect();
            let refs: Vec<&PostingList> = pls.iter().collect();
            let mut inter: BTreeSet<u32> = lists[0].iter().copied().collect();
            let mut uni: BTreeSet<u32> = BTreeSet::new();
            for l in &lists {
                let s: BTreeSet<u32> = l.iter().copied().collect();
                inter = inter.intersection(&s).copied().collect();
                uni.extend(s);
            }
            let iv: Vec<u32> = inter.into_iter().collect();
            let uv: Vec<u32> = uni.into_iter().collect();
            let gi = PostingList::intersect_many(&refs);
            prop_assert_eq!(gi.ids(), iv.as_slice());
            let gu = PostingList::union_many(&refs);
            prop_assert_eq!(gu.ids(), uv.as_slice());
        }
    }
}
