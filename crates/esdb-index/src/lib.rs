//! The Lucene-like indexing substrate of ESDB-RS.
//!
//! ESDB is built on Elasticsearch/Lucene (paper §2.1); this crate is the
//! from-scratch Rust equivalent of the slice of Lucene the paper relies on:
//!
//! * [`analyzer`] — text analysis for full-text fields (the capability that
//!   motivated the move away from MySQL, §1).
//! * [`postings`] — sorted-doc-id posting lists and the intersect/union
//!   algebra that query plans are made of (Fig. 7/8).
//! * [`segment`] — immutable segments: stored documents, per-field
//!   inverted and numeric indexes, columnar *doc values* (used by the
//!   sequential-scan access path, §5.1), composite indexes (1-D BKD-style
//!   over order-preserving concatenated keys with common-prefix
//!   compression, §5.1), and frequency-based sub-attribute indexes (§3.2).
//! * [`builder`] — the in-memory indexing buffer that `refresh` turns into
//!   a segment (§3.3 "near real-time search").
//! * [`merge`] — tiered segment merging (§3.3 "segment merge").
//! * [`freq`] — the sub-attribute frequency tracker driving
//!   frequency-based indexing (§6.3.3: index only the top-k of ~1500
//!   sub-attributes).

pub mod analyzer;
pub mod builder;
pub mod freq;
pub mod merge;
pub mod postings;
pub mod segment;
pub mod snapshot;

pub use analyzer::Analyzer;
pub use builder::SegmentBuilder;
pub use freq::AttrFrequencyTracker;
pub use merge::{MergePolicy, TieredMergePolicy};
pub use postings::{BlockStats, BlockView, PostingList, BLOCK_SIZE};
pub use segment::{ColumnValues, DocId, Segment, SegmentId};
pub use snapshot::SnapshotView;
