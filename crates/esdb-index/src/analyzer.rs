//! Text analysis for full-text fields.
//!
//! A deliberately simple analyzer in the spirit of Lucene's
//! `StandardAnalyzer`: Unicode-aware word splitting, lowercasing, and
//! length capping. CJK characters are emitted as single-character tokens
//! (unigram), which is how Elasticsearch's standard analyzer handles them
//! and matches the paper's e-commerce titles (auction titles mix Chinese
//! and ASCII).

/// Tokenizer + normalizer for `Text` fields.
#[derive(Debug, Clone)]
pub struct Analyzer {
    /// Maximum token length; longer tokens are discarded (Lucene default
    /// is 255, we keep it smaller since our titles are short).
    pub max_token_len: usize,
}

impl Default for Analyzer {
    fn default() -> Self {
        Analyzer { max_token_len: 64 }
    }
}

/// Whether `c` is in a CJK range that should be unigram-tokenized.
fn is_cjk(c: char) -> bool {
    matches!(c as u32,
        0x4E00..=0x9FFF      // CJK Unified Ideographs
        | 0x3400..=0x4DBF    // Extension A
        | 0xF900..=0xFAFF    // Compatibility Ideographs
        | 0x3040..=0x30FF    // Hiragana + Katakana
        | 0xAC00..=0xD7AF    // Hangul syllables
    )
}

impl Analyzer {
    /// Analyzer with a custom token length cap.
    pub fn new(max_token_len: usize) -> Self {
        assert!(max_token_len > 0);
        Analyzer { max_token_len }
    }

    /// Tokenizes `text` into normalized terms.
    pub fn tokenize(&self, text: &str) -> Vec<String> {
        let mut tokens = Vec::new();
        let mut current = String::new();
        for c in text.chars() {
            if is_cjk(c) {
                self.flush(&mut current, &mut tokens);
                tokens.push(c.to_string());
            } else if c.is_alphanumeric() {
                for lc in c.to_lowercase() {
                    current.push(lc);
                }
            } else {
                self.flush(&mut current, &mut tokens);
            }
        }
        self.flush(&mut current, &mut tokens);
        tokens
    }

    /// Normalizes a single term the same way tokens are normalized, so
    /// query terms match indexed terms.
    pub fn normalize_term(&self, term: &str) -> String {
        term.to_lowercase()
    }

    fn flush(&self, current: &mut String, tokens: &mut Vec<String>) {
        if !current.is_empty() {
            if current.chars().count() <= self.max_token_len {
                tokens.push(std::mem::take(current));
            } else {
                current.clear();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_and_lowercases() {
        let a = Analyzer::default();
        assert_eq!(
            a.tokenize("Rust in Action, 2nd-Edition!"),
            vec!["rust", "in", "action", "2nd", "edition"]
        );
    }

    #[test]
    fn cjk_unigrams() {
        let a = Analyzer::default();
        // ASCII digits between CJK chars accumulate into one token.
        assert_eq!(
            a.tokenize("双11大促 sale"),
            vec!["双", "11", "大", "促", "sale"]
        );
    }

    #[test]
    fn empty_and_punctuation_only() {
        let a = Analyzer::default();
        assert!(a.tokenize("").is_empty());
        assert!(a.tokenize("!!! --- ...").is_empty());
    }

    #[test]
    fn long_tokens_dropped() {
        let a = Analyzer::new(4);
        assert_eq!(a.tokenize("ab abcde cd"), vec!["ab", "cd"]);
    }

    #[test]
    fn numbers_kept() {
        let a = Analyzer::default();
        assert_eq!(a.tokenize("iphone 13 pro"), vec!["iphone", "13", "pro"]);
    }

    #[test]
    fn normalize_matches_tokenization() {
        let a = Analyzer::default();
        let toks = a.tokenize("HardCover");
        assert_eq!(toks[0], a.normalize_term("HARDCOVER"));
    }
}
