//! The in-memory indexing buffer.
//!
//! Writes land in a [`SegmentBuilder`] ("raw data and indices are temporally
//! written into an in-memory buffer", §3.3); `refresh` freezes it into an
//! immutable [`Segment`] that becomes searchable. The builder also applies
//! the frequency-based sub-attribute indexing decision: only sub-attributes
//! in the `indexed_attrs` set get inverted indexes (§3.2, §6.3.3).

use crate::analyzer::Analyzer;
use crate::segment::{
    f64_sort_key, ColumnValues, CompositeIndex, DocId, LiveDocs, Segment, SegmentCore, SegmentId,
};
use esdb_common::fastmap::{fast_map, fast_set, FastMap, FastSet};
use esdb_doc::{CollectionSchema, Document, FieldType, FieldValue};
use std::collections::BTreeMap;

/// Accumulates documents and builds a [`Segment`] on refresh.
pub struct SegmentBuilder {
    schema: CollectionSchema,
    analyzer: Analyzer,
    /// Sub-attributes that receive indexes in the built segment.
    indexed_attrs: FastSet<String>,
    docs: Vec<Document>,
    size_bytes: usize,
}

impl SegmentBuilder {
    /// Builder for `schema`, indexing the sub-attributes in `indexed_attrs`.
    pub fn new(schema: CollectionSchema, indexed_attrs: FastSet<String>) -> Self {
        SegmentBuilder {
            schema,
            analyzer: Analyzer::default(),
            indexed_attrs,
            docs: Vec::new(),
            size_bytes: 0,
        }
    }

    /// Builder with no sub-attribute indexing.
    pub fn without_attr_index(schema: CollectionSchema) -> Self {
        SegmentBuilder::new(schema, fast_set())
    }

    /// Buffers one document.
    pub fn add(&mut self, doc: Document) {
        self.size_bytes += doc.approx_size();
        self.docs.push(doc);
    }

    /// Number of buffered documents.
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }

    /// Approximate buffered bytes.
    pub fn size_bytes(&self) -> usize {
        self.size_bytes
    }

    /// Freezes the buffer into a segment with id `id`, leaving the builder
    /// empty and reusable.
    pub fn refresh(&mut self, id: SegmentId) -> Segment {
        let docs = std::mem::take(&mut self.docs);
        let size_bytes = std::mem::replace(&mut self.size_bytes, 0);
        build_segment(
            id,
            docs,
            &self.schema,
            &self.analyzer,
            &self.indexed_attrs,
            size_bytes,
        )
    }

    /// Replaces the indexed-attribute set for future refreshes (the
    /// frequency tracker re-ranks periodically).
    pub fn set_indexed_attrs(&mut self, attrs: FastSet<String>) {
        self.indexed_attrs = attrs;
    }

    /// The schema this builder indexes for.
    pub fn schema(&self) -> &CollectionSchema {
        &self.schema
    }
}

/// Builds a fully-indexed segment from raw documents. Exposed for the merge
/// path, which re-indexes the union of live docs of its inputs.
pub fn build_segment(
    id: SegmentId,
    docs: Vec<Document>,
    schema: &CollectionSchema,
    analyzer: &Analyzer,
    indexed_attrs: &FastSet<String>,
    size_bytes: usize,
) -> Segment {
    let n = docs.len();
    let mut inverted: FastMap<String, BTreeMap<String, Vec<DocId>>> = fast_map();
    let mut numeric: FastMap<String, Vec<(i64, DocId)>> = fast_map();
    let mut numeric_f64: FastMap<String, Vec<(u64, DocId)>> = fast_map();
    let mut doc_values: FastMap<String, ColumnValues> = fast_map();
    let mut attr_inverted: FastMap<String, BTreeMap<String, Vec<DocId>>> = fast_map();
    let mut by_record: FastMap<u64, DocId> = fast_map();

    // Pre-create doc-value columns for declared fields.
    for f in schema.fields() {
        if !f.doc_values {
            continue;
        }
        let col = match f.ty {
            FieldType::Long | FieldType::Bool => ColumnValues::I64(vec![None; n]),
            FieldType::Double => ColumnValues::F64(vec![None; n]),
            FieldType::Timestamp => ColumnValues::U64(vec![None; n]),
            FieldType::Keyword | FieldType::Text => ColumnValues::Str(vec![None; n]),
        };
        doc_values.insert(f.name.clone(), col);
    }

    // Routing virtuals always get numeric indexes (every query template in
    // the paper filters on tenant_id and created_time).
    numeric.insert("tenant_id".to_string(), Vec::with_capacity(n));
    numeric.insert("record_id".to_string(), Vec::with_capacity(n));
    numeric.insert("created_time".to_string(), Vec::with_capacity(n));

    for (i, doc) in docs.iter().enumerate() {
        let d = i as DocId;
        by_record.insert(doc.record_id.raw(), d);
        numeric
            .get_mut("tenant_id")
            .expect("pre-created")
            .push((doc.tenant_id.raw() as i64, d));
        numeric
            .get_mut("record_id")
            .expect("pre-created")
            .push((doc.record_id.raw() as i64, d));
        numeric
            .get_mut("created_time")
            .expect("pre-created")
            .push((doc.created_at as i64, d));

        for (name, value) in doc.fields() {
            let Some(def) = schema.field(name) else {
                // Dynamic (undeclared) field: store nothing, searchable via
                // stored-doc fallback only.
                continue;
            };
            if def.indexed {
                match (&def.ty, value) {
                    (FieldType::Text, FieldValue::Str(s)) => {
                        let terms = analyzer.tokenize(s);
                        let field_map = inverted.entry(name.to_string()).or_default();
                        for t in terms {
                            let list = field_map.entry(t).or_default();
                            if list.last() != Some(&d) {
                                list.push(d);
                            }
                        }
                    }
                    (FieldType::Keyword, FieldValue::Str(s)) => {
                        inverted
                            .entry(name.to_string())
                            .or_default()
                            .entry(s.clone())
                            .or_default()
                            .push(d);
                    }
                    (FieldType::Long, FieldValue::Int(v)) => {
                        numeric.entry(name.to_string()).or_default().push((*v, d));
                    }
                    (FieldType::Bool, FieldValue::Bool(b)) => {
                        numeric
                            .entry(name.to_string())
                            .or_default()
                            .push((*b as i64, d));
                    }
                    (FieldType::Timestamp, FieldValue::Timestamp(t)) => {
                        numeric
                            .entry(name.to_string())
                            .or_default()
                            .push((*t as i64, d));
                    }
                    (FieldType::Double, FieldValue::Float(x)) => {
                        numeric_f64
                            .entry(name.to_string())
                            .or_default()
                            .push((f64_sort_key(*x), d));
                    }
                    // Type mismatch or unindexable type: skip the index,
                    // the value stays reachable via stored fields.
                    _ => {}
                }
            }
            if def.doc_values {
                if let Some(col) = doc_values.get_mut(name) {
                    match (col, value) {
                        (ColumnValues::I64(v), FieldValue::Int(x)) => v[i] = Some(*x),
                        (ColumnValues::I64(v), FieldValue::Bool(b)) => v[i] = Some(*b as i64),
                        (ColumnValues::F64(v), FieldValue::Float(x)) => v[i] = Some(*x),
                        (ColumnValues::U64(v), FieldValue::Timestamp(t)) => v[i] = Some(*t),
                        (ColumnValues::Str(v), FieldValue::Str(s)) => v[i] = Some(s.clone()),
                        _ => {}
                    }
                }
            }
        }

        for (aname, avalue) in doc.attrs() {
            if indexed_attrs.contains(aname) {
                attr_inverted
                    .entry(aname.clone())
                    .or_default()
                    .entry(avalue.clone())
                    .or_default()
                    .push(d);
            }
        }
    }

    // Typed columns for the routing virtuals: aggregation pushdown and
    // block-wise sort-key extraction read tenant_id/record_id/created_time
    // without touching stored payloads. Inserted after the field loop so
    // they win over any same-named declared column.
    doc_values.insert(
        "tenant_id".to_string(),
        ColumnValues::I64(
            docs.iter()
                .map(|d| Some(d.tenant_id.raw() as i64))
                .collect(),
        ),
    );
    doc_values.insert(
        "record_id".to_string(),
        ColumnValues::I64(
            docs.iter()
                .map(|d| Some(d.record_id.raw() as i64))
                .collect(),
        ),
    );
    doc_values.insert(
        "created_time".to_string(),
        ColumnValues::U64(docs.iter().map(|d| Some(d.created_at)).collect()),
    );

    for lists in numeric.values_mut() {
        lists.sort_unstable();
    }
    for lists in numeric_f64.values_mut() {
        lists.sort_unstable();
    }

    // Composite indexes from the schema.
    let mut composites: FastMap<String, CompositeIndex> = fast_map();
    for def in &schema.composite_indexes {
        let mut entries = Vec::with_capacity(n);
        'doc: for (i, doc) in docs.iter().enumerate() {
            let mut key = Vec::with_capacity(def.columns.len() * 10);
            for col in &def.columns {
                match doc.get(col) {
                    Some(v) => v.encode_ordered(&mut key),
                    // A doc missing a composite column is absent from the
                    // index (like Lucene sparse points).
                    None => continue 'doc,
                }
            }
            entries.push((key, i as DocId));
        }
        composites.insert(
            def.name.clone(),
            CompositeIndex::build(def.columns.clone(), entries),
        );
    }

    let to_postings = |m: FastMap<String, BTreeMap<String, Vec<DocId>>>| -> FastMap<String, BTreeMap<String, crate::postings::PostingList>> {
        m.into_iter()
            .map(|(f, terms)| {
                (
                    f,
                    terms
                        .into_iter()
                        .map(|(t, ids)| (t, crate::postings::PostingList::from_unsorted(ids)))
                        .collect(),
                )
            })
            .collect()
    };

    let inverted = to_postings(inverted);
    let attr_inverted = to_postings(attr_inverted);

    // Report the real serialized footprint: stored docs plus every index
    // structure (the storage-overhead numbers of §6.3.3 depend on this).
    let mut size_bytes = size_bytes;
    for terms in inverted.values() {
        for (t, list) in terms {
            size_bytes += t.len() + 4 * list.len();
        }
    }
    for terms in attr_inverted.values() {
        for (t, list) in terms {
            size_bytes += t.len() + 4 * list.len();
        }
    }
    for lists in numeric.values() {
        size_bytes += 12 * lists.len();
    }
    for lists in numeric_f64.values() {
        size_bytes += 12 * lists.len();
    }
    for c in composites.values() {
        size_bytes += c.compressed_size();
    }

    Segment::from_parts(
        id,
        SegmentCore {
            by_record,
            inverted,
            numeric,
            numeric_f64,
            doc_values,
            composites,
            attr_inverted,
            indexed_attrs: indexed_attrs.clone(),
            docs,
            size_bytes,
        },
        LiveDocs {
            bits: vec![true; n],
            count: n,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use esdb_common::{RecordId, TenantId};

    fn sample_docs() -> Vec<Document> {
        vec![
            Document::builder(TenantId(1), RecordId(100), 1000)
                .field("status", 1i64)
                .field("group", 666i64)
                .field("province", "zhejiang")
                .field("auction_title", "Rust in Action hardcover")
                .attr("activity", "1111")
                .attr("size", "XL")
                .build(),
            Document::builder(TenantId(1), RecordId(101), 2000)
                .field("status", 0i64)
                .field("province", "jiangsu")
                .field("auction_title", "Database Internals")
                .attr("activity", "618")
                .build(),
            Document::builder(TenantId(2), RecordId(102), 1500)
                .field("status", 1i64)
                .field("auction_title", "rust programming language book")
                .attr("size", "M")
                .build(),
        ]
    }

    fn build() -> Segment {
        let schema = CollectionSchema::transaction_logs();
        let mut attrs = fast_set();
        attrs.insert("activity".to_string());
        let mut b = SegmentBuilder::new(schema, attrs);
        for d in sample_docs() {
            b.add(d);
        }
        assert_eq!(b.len(), 3);
        let s = b.refresh(7);
        assert!(b.is_empty(), "refresh drains the buffer");
        s
    }

    #[test]
    fn full_text_terms_searchable() {
        let s = build();
        assert_eq!(s.term_docs("auction_title", "rust").ids(), &[0, 2]);
        assert_eq!(s.term_docs("auction_title", "internals").ids(), &[1]);
        assert!(
            s.term_docs("auction_title", "Rust").is_empty(),
            "terms are normalized"
        );
    }

    #[test]
    fn keyword_exact_match() {
        let s = build();
        assert_eq!(s.term_docs("province", "zhejiang").ids(), &[0]);
        assert!(s.term_docs("province", "zhe").is_empty());
    }

    #[test]
    fn numeric_eq_and_range() {
        let s = build();
        assert_eq!(s.numeric_eq("status", 1).ids(), &[0, 2]);
        assert_eq!(s.numeric_eq("group", 666).ids(), &[0]);
        assert_eq!(
            s.numeric_range("created_time", Some(1200), Some(1800))
                .ids(),
            &[2]
        );
        assert_eq!(s.numeric_eq("tenant_id", 1).ids(), &[0, 1]);
    }

    #[test]
    fn composite_index_built_from_schema() {
        let s = build();
        let prefix = FieldValue::Int(1).to_ordered_bytes();
        let got = s.composite_lookup("tenant_id_created_time", &prefix, None);
        assert_eq!(got.ids(), &[0, 1]);
    }

    #[test]
    fn attr_indexing_is_selective() {
        let s = build();
        // "activity" was in the indexed set.
        assert_eq!(s.attr_docs("activity", "1111").unwrap().ids(), &[0]);
        assert_eq!(s.attr_docs("activity", "nope").unwrap().len(), 0);
        // "size" was not — callers must fall back to scanning.
        assert!(s.attr_docs("size", "XL").is_none());
    }

    #[test]
    fn doc_values_readable() {
        let s = build();
        assert_eq!(s.doc_value("status", 0), Some(FieldValue::Int(1)));
        assert_eq!(
            s.doc_value("province", 1),
            Some(FieldValue::Str("jiangsu".into()))
        );
        assert_eq!(s.doc_value("group", 1), None, "missing value is None");
        assert_eq!(
            s.doc_value("created_time", 2),
            Some(FieldValue::Timestamp(1500))
        );
    }

    #[test]
    fn scan_filter_applies_predicate() {
        let s = build();
        let input = s.all_live();
        let got = s.scan_filter("status", &input, |v| v == Some(&FieldValue::Int(1)));
        assert_eq!(got.ids(), &[0, 2]);
    }

    #[test]
    fn deletes_hide_docs_everywhere() {
        let mut s = build();
        assert!(s.delete_record(100));
        assert!(!s.delete_record(100), "double delete is a no-op");
        assert_eq!(s.live_count(), 2);
        assert_eq!(s.term_docs("auction_title", "rust").ids(), &[2]);
        assert_eq!(s.numeric_eq("status", 1).ids(), &[2]);
        assert!(s.find_record(100).is_none());
        let prefix = FieldValue::Int(1).to_ordered_bytes();
        assert_eq!(
            s.composite_lookup("tenant_id_created_time", &prefix, None)
                .ids(),
            &[1]
        );
    }

    #[test]
    fn dynamic_fields_stored_not_indexed() {
        let schema = CollectionSchema::transaction_logs();
        let mut b = SegmentBuilder::without_attr_index(schema);
        b.add(
            Document::builder(TenantId(9), RecordId(1), 1)
                .field("custom_note", "hello")
                .build(),
        );
        let s = b.refresh(1);
        assert!(s.term_docs("custom_note", "hello").is_empty());
        assert_eq!(
            s.doc(0).unwrap().get("custom_note"),
            Some(FieldValue::Str("hello".into()))
        );
    }
}
