//! Xdriver4ES's smart translator (§3.1): turns the parsed SQL AST into a
//! cost-effective normalized AST via
//!
//! 1. **flattening** — nested `AND(AND(..))`/`OR(OR(..))` collapse,
//! 2. **predicate merge** — `tenant_id=1 OR tenant_id=2` becomes
//!    `tenant_id IN (1,2)` (reduces AST *width*); ranges on the same column
//!    under `AND` intersect,
//! 3. **CNF/DNF conversion** — when distributing to DNF reduces AST depth
//!    without blowing up the leaf count, the translator prefers it.
//!
//! `And([])` is TRUE and `Or([])` is FALSE, matching `Expr::matches`.

use crate::ast::{cmp_values, values_eq, Bound, Expr, Query};
use std::cmp::Ordering;

/// Full translation pipeline: normalize, then pick the cheaper of the
/// normalized form and its DNF.
pub fn translate(query: Query) -> Query {
    let filter = normalize_choose(query.filter);
    Query { filter, ..query }
}

/// Normalizes and picks the cheaper of {normalized, DNF(normalized)}.
pub fn normalize_choose(e: Expr) -> Expr {
    let norm = normalize(e);
    let leaves = norm.leaf_count();
    if leaves == 0 || leaves > 16 {
        return norm; // DNF could explode; keep the flat form.
    }
    let dnf = normalize(to_dnf(norm.clone()));
    if dnf.leaf_count() <= leaves.saturating_mul(4) && dnf.depth() < norm.depth() {
        dnf
    } else {
        norm
    }
}

/// Flatten + merge, recursively (idempotent).
pub fn normalize(e: Expr) -> Expr {
    match e {
        Expr::And(children) => {
            let mut flat = Vec::new();
            for c in children {
                match normalize(c) {
                    Expr::And(inner) => flat.extend(inner),
                    Expr::True => {}
                    other => flat.push(other),
                }
            }
            let merged = merge_and(flat);
            match merged {
                Some(mut v) => {
                    if v.len() == 1 {
                        v.pop().expect("one element")
                    } else if v.is_empty() {
                        Expr::True
                    } else {
                        Expr::And(v)
                    }
                }
                None => Expr::Or(Vec::new()), // contradiction → FALSE
            }
        }
        Expr::Or(children) => {
            let mut flat = Vec::new();
            for c in children {
                match normalize(c) {
                    Expr::Or(inner) => flat.extend(inner),
                    other => flat.push(other),
                }
            }
            if flat.iter().any(|c| matches!(c, Expr::True)) {
                return Expr::True;
            }
            let mut v = merge_or(flat);
            if v.len() == 1 {
                v.pop().expect("one element")
            } else {
                Expr::Or(v)
            }
        }
        Expr::In(col, mut vals) => {
            vals.dedup_by(|a, b| values_eq(a, b));
            if vals.len() == 1 {
                Expr::Eq(col, vals.pop().expect("one value"))
            } else {
                Expr::In(col, vals)
            }
        }
        other => other,
    }
}

/// Merges OR-siblings: Eq/In on the same column combine into one In
/// (§3.1's `tenant_id=1 OR tenant_id=2` → `tenant_id IN (1,2)`).
fn merge_or(children: Vec<Expr>) -> Vec<Expr> {
    // Order-preserving merge: the first Eq/In on a column anchors the
    // position of the merged IN; later siblings fold into it.
    let mut out: Vec<Expr> = Vec::with_capacity(children.len());
    let mut slot_of_col: Vec<(String, usize)> = Vec::new();
    let mut pending: Vec<(usize, Vec<esdb_doc::FieldValue>)> = Vec::new();
    for c in children {
        let (col, vals) = match c {
            Expr::Eq(col, v) => (col, vec![v]),
            Expr::In(col, vs) => (col, vs),
            other => {
                out.push(other);
                continue;
            }
        };
        if let Some(&(_, slot)) = slot_of_col.iter().find(|(c2, _)| *c2 == col) {
            pending
                .iter_mut()
                .find(|(s, _)| *s == slot)
                .expect("slot registered")
                .1
                .extend(vals);
        } else {
            let slot = out.len();
            out.push(Expr::True); // placeholder, replaced below
            slot_of_col.push((col, slot));
            pending.push((slot, vals));
        }
    }
    for ((col, slot), (_, mut vals)) in slot_of_col.into_iter().zip(pending) {
        // Dedup (quadratic is fine: IN lists are small).
        let mut uniq: Vec<esdb_doc::FieldValue> = Vec::with_capacity(vals.len());
        for v in vals.drain(..) {
            if !uniq.iter().any(|u| values_eq(u, &v)) {
                uniq.push(v);
            }
        }
        out[slot] = if uniq.len() == 1 {
            Expr::Eq(col, uniq.pop().expect("one value"))
        } else {
            Expr::In(col, uniq)
        };
    }
    out
}

/// Merges AND-siblings: ranges on the same column intersect; duplicate
/// equalities dedup; contradictory equalities make the whole conjunction
/// FALSE (`None`).
fn merge_and(children: Vec<Expr>) -> Option<Vec<Expr>> {
    let mut ranges: Vec<(String, Bound, Bound)> = Vec::new();
    let mut rest: Vec<Expr> = Vec::new();
    for c in children {
        match c {
            Expr::Range(col, lo, hi) => {
                if let Some((_, alo, ahi)) = ranges.iter_mut().find(|(c2, _, _)| *c2 == col) {
                    *alo = tighter_lo(alo.clone(), lo);
                    *ahi = tighter_hi(ahi.clone(), hi);
                } else {
                    ranges.push((col, lo, hi));
                }
            }
            Expr::Eq(col, v) => {
                // Contradiction check against existing equalities.
                let dup = rest
                    .iter()
                    .any(|e| matches!(e, Expr::Eq(c2, v2) if *c2 == col && values_eq(v2, &v)));
                let conflict = rest
                    .iter()
                    .any(|e| matches!(e, Expr::Eq(c2, v2) if *c2 == col && !values_eq(v2, &v)));
                if conflict {
                    return None;
                }
                if !dup {
                    rest.push(Expr::Eq(col, v));
                }
            }
            other => rest.push(other),
        }
    }
    for (col, lo, hi) in ranges {
        if range_empty(&lo, &hi) {
            return None;
        }
        rest.push(Expr::Range(col, lo, hi));
    }
    Some(rest)
}

fn tighter_lo(a: Bound, b: Bound) -> Bound {
    match (&a, &b) {
        (Bound::Unbounded, _) => b,
        (_, Bound::Unbounded) => a,
        _ => {
            let va = a.value().expect("bounded");
            let vb = b.value().expect("bounded");
            match cmp_values(va, vb) {
                Some(Ordering::Greater) => a,
                Some(Ordering::Less) => b,
                // Equal values: exclusive wins (tighter).
                _ => {
                    if matches!(a, Bound::Excluded(_)) {
                        a
                    } else {
                        b
                    }
                }
            }
        }
    }
}

fn tighter_hi(a: Bound, b: Bound) -> Bound {
    match (&a, &b) {
        (Bound::Unbounded, _) => b,
        (_, Bound::Unbounded) => a,
        _ => {
            let va = a.value().expect("bounded");
            let vb = b.value().expect("bounded");
            match cmp_values(va, vb) {
                Some(Ordering::Less) => a,
                Some(Ordering::Greater) => b,
                _ => {
                    if matches!(a, Bound::Excluded(_)) {
                        a
                    } else {
                        b
                    }
                }
            }
        }
    }
}

fn range_empty(lo: &Bound, hi: &Bound) -> bool {
    let (Some(vl), Some(vh)) = (lo.value(), hi.value()) else {
        return false;
    };
    match cmp_values(vl, vh) {
        Some(Ordering::Greater) => true,
        Some(Ordering::Equal) => {
            matches!(lo, Bound::Excluded(_)) || matches!(hi, Bound::Excluded(_))
        }
        _ => false,
    }
}

/// Distributes AND over OR to reach disjunctive normal form.
pub fn to_dnf(e: Expr) -> Expr {
    match e {
        Expr::And(children) => {
            // DNF each child, then take the cross product of OR branches.
            let mut product: Vec<Vec<Expr>> = vec![Vec::new()];
            for c in children {
                let c = to_dnf(c);
                let branches: Vec<Expr> = match c {
                    Expr::Or(bs) => bs,
                    other => vec![other],
                };
                let mut next = Vec::with_capacity(product.len() * branches.len());
                for p in &product {
                    for b in &branches {
                        let mut conj = p.clone();
                        conj.push(b.clone());
                        next.push(conj);
                    }
                }
                product = next;
            }
            let branches: Vec<Expr> = product.into_iter().map(Expr::And).collect();
            if branches.len() == 1 {
                branches.into_iter().next().expect("one branch")
            } else {
                Expr::Or(branches)
            }
        }
        Expr::Or(children) => Expr::Or(children.into_iter().map(to_dnf).collect()),
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esdb_common::{RecordId, TenantId};
    use esdb_doc::{Document, FieldValue};
    use proptest::prelude::*;

    fn eq(c: &str, v: i64) -> Expr {
        Expr::Eq(c.into(), FieldValue::Int(v))
    }

    #[test]
    fn or_equalities_merge_to_in() {
        // The paper's example: tenant_id=1 OR tenant_id=2 → IN (1,2).
        let e = Expr::Or(vec![eq("tenant_id", 1), eq("tenant_id", 2)]);
        assert_eq!(
            normalize(e),
            Expr::In(
                "tenant_id".into(),
                vec![FieldValue::Int(1), FieldValue::Int(2)]
            )
        );
    }

    #[test]
    fn nested_structures_flatten() {
        let e = Expr::And(vec![Expr::And(vec![eq("a", 1), eq("b", 2)]), eq("c", 3)]);
        match normalize(e) {
            Expr::And(cs) => assert_eq!(cs.len(), 3),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn ranges_intersect_under_and() {
        let e = Expr::And(vec![
            Expr::Range(
                "t".into(),
                Bound::Included(FieldValue::Int(0)),
                Bound::Included(FieldValue::Int(100)),
            ),
            Expr::Range(
                "t".into(),
                Bound::Included(FieldValue::Int(50)),
                Bound::Included(FieldValue::Int(200)),
            ),
        ]);
        assert_eq!(
            normalize(e),
            Expr::Range(
                "t".into(),
                Bound::Included(FieldValue::Int(50)),
                Bound::Included(FieldValue::Int(100))
            )
        );
    }

    #[test]
    fn contradictions_become_false() {
        let e = Expr::And(vec![eq("a", 1), eq("a", 2)]);
        assert_eq!(normalize(e), Expr::Or(Vec::new()));
        let empty_range = Expr::And(vec![
            Expr::Range(
                "t".into(),
                Bound::Included(FieldValue::Int(10)),
                Bound::Unbounded,
            ),
            Expr::Range(
                "t".into(),
                Bound::Unbounded,
                Bound::Included(FieldValue::Int(5)),
            ),
        ]);
        assert_eq!(normalize(empty_range), Expr::Or(Vec::new()));
    }

    #[test]
    fn duplicates_dedup() {
        let e = Expr::And(vec![eq("a", 1), eq("a", 1), eq("b", 2)]);
        match normalize(e) {
            Expr::And(cs) => assert_eq!(cs.len(), 2),
            other => panic!("{other:?}"),
        }
        let o = Expr::Or(vec![eq("a", 1), eq("a", 1)]);
        assert_eq!(normalize(o), eq("a", 1));
    }

    #[test]
    fn true_absorbs() {
        assert_eq!(
            normalize(Expr::And(vec![Expr::True, eq("a", 1)])),
            eq("a", 1)
        );
        assert_eq!(
            normalize(Expr::Or(vec![Expr::True, eq("a", 1)])),
            Expr::True
        );
    }

    #[test]
    fn dnf_distributes() {
        // a AND (b OR c) → (a AND b) OR (a AND c).
        let e = Expr::And(vec![eq("a", 1), Expr::Or(vec![eq("b", 2), eq("c", 3)])]);
        let d = normalize(to_dnf(e));
        match d {
            Expr::Or(branches) => {
                assert_eq!(branches.len(), 2);
                for b in branches {
                    assert!(matches!(b, Expr::And(ref cs) if cs.len() == 2));
                }
            }
            other => panic!("{other:?}"),
        }
    }

    fn arb_expr() -> impl Strategy<Value = Expr> {
        let leaf = prop_oneof![
            (0u8..4, -3i64..4).prop_map(|(c, v)| Expr::Eq(format!("c{c}"), FieldValue::Int(v))),
            (0u8..4, -3i64..4, 0i64..5).prop_map(|(c, lo, w)| Expr::Range(
                format!("c{c}"),
                Bound::Included(FieldValue::Int(lo)),
                Bound::Included(FieldValue::Int(lo + w))
            )),
            (0u8..4, proptest::collection::vec(-3i64..4, 1..4)).prop_map(|(c, vs)| Expr::In(
                format!("c{c}"),
                vs.into_iter().map(FieldValue::Int).collect()
            )),
        ];
        leaf.prop_recursive(3, 24, 4, |inner| {
            prop_oneof![
                proptest::collection::vec(inner.clone(), 1..4).prop_map(Expr::And),
                proptest::collection::vec(inner, 1..4).prop_map(Expr::Or),
            ]
        })
    }

    fn arb_doc() -> impl Strategy<Value = Document> {
        proptest::collection::vec(-3i64..4, 4).prop_map(|vals| {
            let mut b = Document::builder(TenantId(1), RecordId(1), 100);
            for (i, v) in vals.into_iter().enumerate() {
                b = b.field(format!("c{i}"), v);
            }
            b.build()
        })
    }

    proptest! {
        /// Normalization must preserve semantics on every document.
        #[test]
        fn prop_normalize_preserves_semantics(e in arb_expr(), d in arb_doc()) {
            let n = normalize(e.clone());
            prop_assert_eq!(e.matches(&d), n.matches(&d), "normalize changed semantics: {:?} vs {:?}", e, n);
        }

        /// DNF conversion must preserve semantics too.
        #[test]
        fn prop_dnf_preserves_semantics(e in arb_expr(), d in arb_doc()) {
            let dnf = to_dnf(e.clone());
            prop_assert_eq!(e.matches(&d), dnf.matches(&d));
        }

        /// The full translate pipeline preserves semantics.
        #[test]
        fn prop_translate_preserves_semantics(e in arb_expr(), d in arb_doc()) {
            let chosen = normalize_choose(e.clone());
            prop_assert_eq!(e.matches(&d), chosen.matches(&d));
        }

        /// Normalization is idempotent.
        #[test]
        fn prop_normalize_idempotent(e in arb_expr()) {
            let once = normalize(e);
            let twice = normalize(once.clone());
            prop_assert_eq!(once, twice);
        }
    }
}
