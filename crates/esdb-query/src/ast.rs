//! The logical query AST (the ES-DSL analogue — "ES-DSL encodes query ASTs
//! directly", §3.1).

use esdb_doc::FieldValue;

/// An inclusive/exclusive/absent range bound.
#[derive(Debug, Clone, PartialEq)]
pub enum Bound {
    /// No bound on this side.
    Unbounded,
    /// Inclusive bound.
    Included(FieldValue),
    /// Exclusive bound.
    Excluded(FieldValue),
}

impl Bound {
    /// The bound's value, if any.
    pub fn value(&self) -> Option<&FieldValue> {
        match self {
            Bound::Unbounded => None,
            Bound::Included(v) | Bound::Excluded(v) => Some(v),
        }
    }
}

/// A boolean filter expression over document fields.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// `col = value`.
    Eq(String, FieldValue),
    /// `col != value`.
    Ne(String, FieldValue),
    /// `col IN (v1, v2, ...)`.
    In(String, Vec<FieldValue>),
    /// `col BETWEEN / < / <= / > / >=` — a (possibly half-open) range.
    Range(String, Bound, Bound),
    /// Full-text term match: `MATCH(col, 'terms ...')` — every term must
    /// appear in the analyzed field.
    Match(String, String),
    /// Sub-attribute equality on the "attributes" column:
    /// `ATTR('name') = 'value'`.
    AttrEq(String, String),
    /// Conjunction.
    And(Vec<Expr>),
    /// Disjunction.
    Or(Vec<Expr>),
    /// The always-true filter (`WHERE` absent).
    True,
}

impl Expr {
    /// AST depth (the metric Xdriver4ES's CNF/DNF conversion reduces,
    /// §3.1).
    pub fn depth(&self) -> usize {
        match self {
            Expr::And(cs) | Expr::Or(cs) => 1 + cs.iter().map(Expr::depth).max().unwrap_or(0),
            _ => 1,
        }
    }

    /// Number of leaf predicates.
    pub fn leaf_count(&self) -> usize {
        match self {
            Expr::And(cs) | Expr::Or(cs) => cs.iter().map(Expr::leaf_count).sum(),
            Expr::True => 0,
            _ => 1,
        }
    }

    /// Evaluates the expression against a document — the reference
    /// semantics that the planner/executor must agree with (used by the
    /// full-scan fallback and by property tests).
    pub fn matches(&self, doc: &esdb_doc::Document) -> bool {
        match self {
            Expr::True => true,
            Expr::Eq(col, v) => doc.get(col).is_some_and(|x| values_eq(&x, v)),
            Expr::Ne(col, v) => doc.get(col).is_some_and(|x| !values_eq(&x, v)),
            Expr::In(col, vs) => doc
                .get(col)
                .is_some_and(|x| vs.iter().any(|v| values_eq(&x, v))),
            Expr::Range(col, lo, hi) => {
                let Some(x) = doc.get(col) else { return false };
                let lo_ok = match lo {
                    Bound::Unbounded => true,
                    Bound::Included(v) => {
                        cmp_values(&x, v).is_some_and(|o| o >= std::cmp::Ordering::Equal)
                    }
                    Bound::Excluded(v) => cmp_values(&x, v) == Some(std::cmp::Ordering::Greater),
                };
                let hi_ok = match hi {
                    Bound::Unbounded => true,
                    Bound::Included(v) => {
                        cmp_values(&x, v).is_some_and(|o| o <= std::cmp::Ordering::Equal)
                    }
                    Bound::Excluded(v) => cmp_values(&x, v) == Some(std::cmp::Ordering::Less),
                };
                lo_ok && hi_ok
            }
            Expr::Match(col, text) => {
                let Some(FieldValue::Str(s)) = doc.get(col) else {
                    return false;
                };
                let analyzer = esdb_index::Analyzer::default();
                let doc_terms: std::collections::HashSet<String> =
                    analyzer.tokenize(&s).into_iter().collect();
                analyzer
                    .tokenize(text)
                    .iter()
                    .all(|t| doc_terms.contains(t))
            }
            Expr::AttrEq(name, value) => doc.attr(name) == Some(value.as_str()),
            Expr::And(cs) => cs.iter().all(|c| c.matches(doc)),
            Expr::Or(cs) => cs.iter().any(|c| c.matches(doc)),
        }
    }
}

/// Equality across the Int/Timestamp divide (SQL comparisons don't care
/// which of the two a column was declared as).
pub fn values_eq(a: &FieldValue, b: &FieldValue) -> bool {
    cmp_values(a, b) == Some(std::cmp::Ordering::Equal)
}

/// Comparison across numeric-ish types; `None` for incomparable types.
pub fn cmp_values(a: &FieldValue, b: &FieldValue) -> Option<std::cmp::Ordering> {
    use FieldValue::*;
    match (a, b) {
        (Int(x), Int(y)) => Some(x.cmp(y)),
        (Timestamp(x), Timestamp(y)) => Some(x.cmp(y)),
        (Int(x), Timestamp(y)) => Some((*x as i128).cmp(&(*y as i128))),
        (Timestamp(x), Int(y)) => Some((*x as i128).cmp(&(*y as i128))),
        (Float(x), Float(y)) => x.partial_cmp(y),
        (Int(x), Float(y)) => (*x as f64).partial_cmp(y),
        (Float(x), Int(y)) => x.partial_cmp(&(*y as f64)),
        (Str(x), Str(y)) => Some(x.cmp(y)),
        (Bool(x), Bool(y)) => Some(x.cmp(y)),
        _ => None,
    }
}

/// `ORDER BY` clause.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OrderBy {
    /// Sort column.
    pub column: String,
    /// Descending?
    pub descending: bool,
}

/// A complete SFW query (the paper's target shape: multi-column
/// SELECT-FROM-WHERE on one table, §5).
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// Table name.
    pub table: String,
    /// Projected columns; empty = `*`.
    pub projection: Vec<String>,
    /// Aggregate select list (`COUNT(*)`, `SUM(col)`, ...); empty = a row
    /// query. When non-empty the query returns aggregate rows instead of
    /// documents and `projection` is unused.
    pub aggregates: Vec<crate::aggregate::AggFunc>,
    /// Optional GROUP BY column (aggregate queries only).
    pub group_by: Option<String>,
    /// The WHERE filter.
    pub filter: Expr,
    /// Optional ORDER BY.
    pub order_by: Option<OrderBy>,
    /// Optional LIMIT.
    pub limit: Option<usize>,
}

impl Query {
    /// `true` when the select list is aggregates rather than rows.
    pub fn is_aggregate(&self) -> bool {
        !self.aggregates.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esdb_common::{RecordId, TenantId};
    use esdb_doc::Document;

    fn doc() -> Document {
        Document::builder(TenantId(10086), RecordId(1), 1_000)
            .field("status", 1i64)
            .field("group", 666i64)
            .field("title", "rust in action")
            .attr("activity", "1111")
            .build()
    }

    #[test]
    fn depth_and_leaves() {
        let e = Expr::Or(vec![
            Expr::And(vec![
                Expr::Eq("a".into(), FieldValue::Int(1)),
                Expr::Eq("b".into(), FieldValue::Int(2)),
            ]),
            Expr::Eq("c".into(), FieldValue::Int(3)),
        ]);
        assert_eq!(e.depth(), 3);
        assert_eq!(e.leaf_count(), 3);
    }

    #[test]
    fn matches_semantics() {
        let d = doc();
        assert!(Expr::Eq("status".into(), FieldValue::Int(1)).matches(&d));
        assert!(Expr::Ne("status".into(), FieldValue::Int(2)).matches(&d));
        assert!(Expr::In(
            "group".into(),
            vec![FieldValue::Int(1), FieldValue::Int(666)]
        )
        .matches(&d));
        assert!(Expr::Range(
            "created_time".into(),
            Bound::Included(FieldValue::Timestamp(500)),
            Bound::Excluded(FieldValue::Timestamp(1_001))
        )
        .matches(&d));
        assert!(!Expr::Range(
            "created_time".into(),
            Bound::Excluded(FieldValue::Timestamp(1_000)),
            Bound::Unbounded
        )
        .matches(&d));
        assert!(Expr::Match("title".into(), "RUST action".into()).matches(&d));
        assert!(!Expr::Match("title".into(), "rust golang".into()).matches(&d));
        assert!(Expr::AttrEq("activity".into(), "1111".into()).matches(&d));
        assert!(!Expr::AttrEq("activity".into(), "618".into()).matches(&d));
        assert!(Expr::True.matches(&d));
    }

    #[test]
    fn boolean_combinations() {
        let d = doc();
        let t = Expr::Eq("status".into(), FieldValue::Int(1));
        let f = Expr::Eq("status".into(), FieldValue::Int(0));
        assert!(Expr::And(vec![t.clone(), t.clone()]).matches(&d));
        assert!(!Expr::And(vec![t.clone(), f.clone()]).matches(&d));
        assert!(Expr::Or(vec![f.clone(), t.clone()]).matches(&d));
        assert!(!Expr::Or(vec![f.clone(), f]).matches(&d));
    }

    #[test]
    fn numeric_cross_type_compare() {
        assert!(values_eq(&FieldValue::Int(5), &FieldValue::Timestamp(5)));
        assert!(values_eq(&FieldValue::Float(2.0), &FieldValue::Int(2)));
        assert_eq!(
            cmp_values(&FieldValue::Str("a".into()), &FieldValue::Int(1)),
            None
        );
    }

    #[test]
    fn missing_column_never_matches() {
        let d = doc();
        assert!(!Expr::Eq("nope".into(), FieldValue::Int(1)).matches(&d));
        assert!(!Expr::Range("nope".into(), Bound::Unbounded, Bound::Unbounded).matches(&d));
        // But Ne on a missing column is also false (SQL NULL semantics).
        assert!(!Expr::Ne("nope".into(), FieldValue::Int(1)).matches(&d));
    }
}
