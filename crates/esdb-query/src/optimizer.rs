//! ESDB's rule-based optimizer (§5.1, "Rule-based optimizer").
//!
//! Access-path rules for a conjunction, in order:
//!
//! 1. **Composite index** — predicates on the leftmost columns of a
//!    composite index (equalities, optionally followed by one range on the
//!    next column). *Longest match* picks the composite covering the most
//!    predicates.
//! 2. **Sequential scan** — remaining AND-predicates on scan-list columns
//!    become doc-value scan filters over the base posting list.
//! 3. **Single-column index** — remaining indexed columns (and OR-connected
//!    predicates) get their own index searches.
//!
//! Anything not coverable by an index (Ne, undeclared columns, non-indexed
//! sub-attributes) becomes a scan-filter residual, keeping plans exact.

use crate::ast::{Bound, Expr};
use crate::plan::Plan;
use esdb_doc::{CollectionSchema, FieldType, FieldValue};

/// Coerces a literal to the column's declared type so its order-preserving
/// encoding matches what the composite index stored (numeric SQL literals
/// parse as `Int` even when the column is a `Timestamp`).
fn coerce_to_field(schema: &CollectionSchema, col: &str, v: FieldValue) -> FieldValue {
    match (schema.field(col).map(|f| f.ty), v) {
        (Some(FieldType::Timestamp), FieldValue::Int(i)) if i >= 0 => {
            FieldValue::Timestamp(i as u64)
        }
        (Some(FieldType::Long), FieldValue::Timestamp(t)) if t <= i64::MAX as u64 => {
            FieldValue::Int(t as i64)
        }
        (_, v) => v,
    }
}

fn coerce_bound(schema: &CollectionSchema, col: &str, b: Bound) -> Bound {
    match b {
        Bound::Unbounded => Bound::Unbounded,
        Bound::Included(v) => Bound::Included(coerce_to_field(schema, col, v)),
        Bound::Excluded(v) => Bound::Excluded(coerce_to_field(schema, col, v)),
    }
}

/// Builds the optimized plan for a (normalized) filter expression.
pub fn optimize(expr: &Expr, schema: &CollectionSchema) -> Plan {
    match expr {
        Expr::True => Plan::All,
        Expr::Or(branches) if branches.is_empty() => Plan::Empty,
        Expr::Or(branches) => Plan::Union(branches.iter().map(|b| optimize(b, schema)).collect()),
        Expr::And(preds) => plan_conjunction(preds, schema),
        single => plan_conjunction(std::slice::from_ref(single), schema),
    }
}

/// Classifies how one predicate can be served.
enum Access {
    SingleIndex,
    Scan,
    Residual,
}

fn classify(pred: &Expr, schema: &CollectionSchema) -> Access {
    match pred {
        Expr::Eq(col, _) | Expr::In(col, _) | Expr::Range(col, _, _) => {
            if schema.in_scan_list(col) && schema.field(col).map(|f| f.doc_values).unwrap_or(false)
            {
                Access::Scan
            } else if schema.field(col).map(|f| f.indexed).unwrap_or(false) {
                Access::SingleIndex
            } else {
                Access::Residual
            }
        }
        Expr::Match(col, _) => {
            if schema.field(col).map(|f| f.indexed).unwrap_or(false) {
                Access::SingleIndex
            } else {
                Access::Residual
            }
        }
        // Attribute predicates become scan filters over the base plan: the
        // executor uses the frequency-based attr index when the segment has
        // one (intersecting with the input) and a bounded stored-field scan
        // otherwise — never an unbounded full scan.
        Expr::AttrEq(_, _) => Access::Scan,
        Expr::Ne(_, _) => Access::Residual,
        Expr::And(_) | Expr::Or(_) | Expr::True => Access::Residual,
    }
}

fn plan_conjunction(preds: &[Expr], schema: &CollectionSchema) -> Plan {
    // Nested Or inside the conjunction (normalize keeps one level when it
    // can't merge): plan it as a sub-union intersected with the rest.
    let mut sub_plans: Vec<Plan> = Vec::new();
    let mut flat: Vec<&Expr> = Vec::new();
    for p in preds {
        match p {
            Expr::Or(bs) if bs.is_empty() => return Plan::Empty,
            Expr::Or(_) | Expr::And(_) => sub_plans.push(optimize(p, schema)),
            Expr::True => {}
            other => flat.push(other),
        }
    }

    // Step 1: composite selection with longest-match.
    let mut best: Option<(usize, usize, bool)> = None; // (def idx, eq cols, has range)
    for (di, def) in schema.composite_indexes.iter().enumerate() {
        let mut eq_cols = 0usize;
        for col in &def.columns {
            if flat.iter().any(|p| matches!(p, Expr::Eq(c, _) if c == col)) {
                eq_cols += 1;
            } else {
                break;
            }
        }
        let has_range = def
            .columns
            .get(eq_cols)
            .map(|col| {
                flat.iter()
                    .any(|p| matches!(p, Expr::Range(c, _, _) if c == col))
            })
            .unwrap_or(false);
        let score = eq_cols * 2 + has_range as usize;
        if eq_cols == 0 || score == 0 {
            continue;
        }
        if best.map_or(true, |(bi, beq, br)| {
            score > beq * 2 + br as usize || (score == beq * 2 + br as usize && di < bi)
        }) {
            best = Some((di, eq_cols, has_range));
        }
    }

    let mut consumed: Vec<bool> = vec![false; flat.len()];
    if let Some((di, eq_cols, has_range)) = best {
        let def = &schema.composite_indexes[di];
        let mut eq: Vec<(String, FieldValue)> = Vec::with_capacity(eq_cols);
        for col in def.columns.iter().take(eq_cols) {
            let (pi, value) = flat
                .iter()
                .enumerate()
                .find_map(|(i, p)| match p {
                    Expr::Eq(c, v) if c == col => Some((i, v.clone())),
                    _ => None,
                })
                .expect("matched above");
            consumed[pi] = true;
            eq.push((col.clone(), coerce_to_field(schema, col, value)));
        }
        let range = if has_range {
            let col = &def.columns[eq_cols];
            flat.iter().enumerate().find_map(|(i, p)| match p {
                Expr::Range(c, lo, hi) if c == col => {
                    consumed[i] = true;
                    Some((
                        c.clone(),
                        coerce_bound(schema, c, lo.clone()),
                        coerce_bound(schema, c, hi.clone()),
                    ))
                }
                _ => None,
            })
        } else {
            None
        };
        sub_plans.push(Plan::CompositeScan {
            index: def.name.clone(),
            eq,
            range,
        });
    }

    // Steps 2–3: classify the remainder.
    let mut scan_preds: Vec<Expr> = Vec::new();
    let mut residual: Vec<Expr> = Vec::new();
    for (i, p) in flat.iter().enumerate() {
        if consumed[i] {
            continue;
        }
        match classify(p, schema) {
            Access::SingleIndex => sub_plans.push(Plan::IndexPredicate((*p).clone())),
            Access::Scan => scan_preds.push((*p).clone()),
            Access::Residual => residual.push((*p).clone()),
        }
    }

    let base = match sub_plans.len() {
        0 => Plan::All,
        1 => sub_plans.pop().expect("one plan"),
        _ => Plan::Intersect(sub_plans),
    };

    let mut filters = scan_preds;
    filters.extend(residual);
    if filters.is_empty() {
        base
    } else {
        Plan::ScanFilter {
            input: Box::new(base),
            predicates: filters,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sql::parse_sql;
    use crate::xdriver::translate;

    fn plan_of(sql: &str) -> Plan {
        let q = translate(parse_sql(sql).unwrap());
        optimize(&q.filter, &CollectionSchema::transaction_logs())
    }

    #[test]
    fn paper_fig8_plan_shape() {
        // The paper's example query (Fig. 6) must plan as Fig. 8: a
        // composite scan on tenant_id_created_time, a doc-value scan on
        // status, unioned with a single index search on group.
        let p = plan_of(
            "SELECT * FROM transaction_logs WHERE tenant_id = 10086 \
             AND created_time >= '2021-09-16 00:00:00' \
             AND created_time <= '2021-09-17 00:00:00' \
             AND status = 1 OR group = 666",
        );
        match &p {
            Plan::Union(branches) => {
                assert_eq!(branches.len(), 2);
                // Branch 1: ScanFilter(status) over CompositeScan.
                match &branches[0] {
                    Plan::ScanFilter { input, predicates } => {
                        assert_eq!(predicates.len(), 1);
                        match input.as_ref() {
                            Plan::CompositeScan { index, eq, range } => {
                                assert_eq!(index, "tenant_id_created_time");
                                assert_eq!(eq.len(), 1);
                                assert!(range.is_some());
                            }
                            other => panic!("expected CompositeScan, got {other:?}"),
                        }
                    }
                    other => panic!("expected ScanFilter, got {other:?}"),
                }
                // Branch 2: single index on group.
                assert!(
                    matches!(&branches[1], Plan::IndexPredicate(Expr::Eq(c, _)) if c == "group")
                );
            }
            other => panic!("expected Union, got {other:?}"),
        }
    }

    #[test]
    fn composite_longest_match_requires_leftmost() {
        // Only created_time range, no tenant_id equality: the leftmost
        // principle rejects the composite; falls back to single index.
        let p = plan_of(
            "SELECT * FROM transaction_logs \
             WHERE created_time >= '2021-09-16 00:00:00' AND group = 5",
        );
        assert!(!p.uses_composite());
    }

    #[test]
    fn scan_list_column_becomes_filter_not_index() {
        let p = plan_of("SELECT * FROM transaction_logs WHERE tenant_id = 1 AND status = 1");
        match &p {
            Plan::ScanFilter { input, predicates } => {
                assert!(matches!(&predicates[0], Expr::Eq(c, _) if c == "status"));
                assert!(input.uses_composite());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn undeclared_column_is_residual() {
        let p = plan_of("SELECT * FROM transaction_logs WHERE tenant_id = 1 AND custom_note = 'x'");
        match &p {
            Plan::ScanFilter { predicates, .. } => {
                assert!(matches!(&predicates[0], Expr::Eq(c, _) if c == "custom_note"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn double_column_uses_single_index() {
        let p = plan_of("SELECT * FROM transaction_logs WHERE tenant_id = 1 AND amount > 10.0");
        fn has_amount_index(p: &Plan) -> bool {
            match p {
                Plan::IndexPredicate(Expr::Range(c, _, _)) => c == "amount",
                Plan::Intersect(ps) | Plan::Union(ps) => ps.iter().any(has_amount_index),
                Plan::ScanFilter { input, .. } => has_amount_index(input),
                _ => false,
            }
        }
        assert!(has_amount_index(&p), "{p}");
    }

    #[test]
    fn empty_filter_plans_all() {
        let p = plan_of("SELECT * FROM transaction_logs LIMIT 10");
        assert_eq!(p, Plan::All);
    }

    #[test]
    fn contradiction_plans_empty() {
        let p = plan_of("SELECT * FROM transaction_logs WHERE status = 1 AND status = 2");
        // status is scan-list so the contradiction dies in normalize → Or([]).
        assert_eq!(p, Plan::Empty);
    }

    #[test]
    fn attr_predicates_become_scan_filters() {
        let p = plan_of(
            "SELECT * FROM transaction_logs WHERE tenant_id = 1 AND ATTR('activity') = '1111'",
        );
        // AttrEq filters the base plan; the executor picks the attr index
        // per segment (frequency-based) or a bounded stored scan.
        match &p {
            Plan::ScanFilter { input, predicates } => {
                assert!(predicates.iter().any(|e| matches!(e, Expr::AttrEq(_, _))));
                assert!(input.uses_composite());
            }
            other => panic!("expected ScanFilter, got {other}"),
        }
    }
}
