//! Datetime literal conversion — part of Xdriver4ES's mapping module
//! ("we implement in this module built-in functions of SQL, such as data
//! type conversion", §3.1). Parses `'YYYY-MM-DD[ HH:MM:SS]'` literals into
//! epoch milliseconds (UTC) with the standard civil-date algorithm.

/// Days from the civil epoch 1970-01-01 for a (year, month, day), using
/// Howard Hinnant's `days_from_civil` algorithm.
fn days_from_civil(y: i64, m: u32, d: u32) -> i64 {
    let y = if m <= 2 { y - 1 } else { y };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400; // [0, 399]
    let mp = (m as i64 + 9) % 12; // Mar=0 .. Feb=11
    let doy = (153 * mp + 2) / 5 + d as i64 - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146_097 + doe - 719_468
}

/// Whether `(y, m, d)` is a real calendar date.
fn valid_date(y: i64, m: u32, d: u32) -> bool {
    if !(1..=12).contains(&m) || d < 1 {
        return false;
    }
    let leap = (y % 4 == 0 && y % 100 != 0) || y % 400 == 0;
    let dim = match m {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if leap {
                29
            } else {
                28
            }
        }
        _ => unreachable!(),
    };
    d <= dim
}

/// Parses `YYYY-MM-DD` or `YYYY-MM-DD HH:MM:SS` into epoch milliseconds.
/// Returns `None` for malformed or impossible datetimes.
pub fn parse_datetime(s: &str) -> Option<u64> {
    let s = s.trim();
    let (date_part, time_part) = match s.split_once(' ') {
        Some((d, t)) => (d, Some(t)),
        None => (s, None),
    };
    let mut it = date_part.split('-');
    let y: i64 = it.next()?.parse().ok()?;
    let m: u32 = it.next()?.parse().ok()?;
    let d: u32 = it.next()?.parse().ok()?;
    if it.next().is_some() || !valid_date(y, m, d) {
        return None;
    }
    let (hh, mm, ss) = match time_part {
        None => (0u32, 0u32, 0u32),
        Some(t) => {
            let mut it = t.split(':');
            let hh: u32 = it.next()?.parse().ok()?;
            let mm: u32 = it.next()?.parse().ok()?;
            let ss: u32 = it.next()?.parse().ok()?;
            if it.next().is_some() || hh > 23 || mm > 59 || ss > 59 {
                return None;
            }
            (hh, mm, ss)
        }
    };
    let days = days_from_civil(y, m, d);
    let secs = days * 86_400 + hh as i64 * 3_600 + mm as i64 * 60 + ss as i64;
    if secs < 0 {
        return None;
    }
    Some(secs as u64 * 1_000)
}

/// Formats epoch milliseconds back to `YYYY-MM-DD HH:MM:SS` (UTC) — the
/// inverse mapping used when rendering results to a SQL client.
pub fn format_datetime(ms: u64) -> String {
    let secs = (ms / 1_000) as i64;
    let days = secs.div_euclid(86_400);
    let sod = secs.rem_euclid(86_400);
    // civil_from_days (Hinnant).
    let z = days + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097;
    let yoe = (doe - doe / 1_460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    format!(
        "{:04}-{:02}-{:02} {:02}:{:02}:{:02}",
        y,
        m,
        d,
        sod / 3_600,
        (sod % 3_600) / 60,
        sod % 60
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_epochs() {
        assert_eq!(parse_datetime("1970-01-01"), Some(0));
        assert_eq!(parse_datetime("1970-01-01 00:00:01"), Some(1_000));
        // 2021-09-16 00:00:00 UTC = 1631750400.
        assert_eq!(
            parse_datetime("2021-09-16 00:00:00"),
            Some(1_631_750_400_000)
        );
        // Leap-year day.
        assert_eq!(parse_datetime("2020-02-29"), Some(1_582_934_400_000));
    }

    #[test]
    fn rejects_malformed() {
        for bad in [
            "2021-13-01",
            "2021-00-10",
            "2021-02-30",
            "2019-02-29",
            "2021-09-16 24:00:00",
            "2021-09-16 10:60:00",
            "not a date",
            "2021-09",
            "2021-09-16 10:00",
            "",
        ] {
            assert_eq!(parse_datetime(bad), None, "{bad} should be rejected");
        }
    }

    #[test]
    fn format_roundtrip() {
        for s in [
            "1970-01-01 00:00:00",
            "2021-09-16 00:00:00",
            "2021-11-11 23:59:59",
            "2000-02-29 12:30:45",
        ] {
            let ms = parse_datetime(s).unwrap();
            assert_eq!(format_datetime(ms), s);
        }
    }

    #[test]
    fn ordering_preserved() {
        let a = parse_datetime("2021-09-16 00:00:00").unwrap();
        let b = parse_datetime("2021-09-17 00:00:00").unwrap();
        assert!(a < b);
        assert_eq!(b - a, 86_400_000);
    }
}
