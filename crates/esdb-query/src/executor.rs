//! Plan execution against segments, with an optional segment filter cache.
//!
//! Caching model (tier 1 of the skew-aware query cache): segments are
//! immutable between refresh/merge except for *monotone* tombstones (a doc
//! can go live → deleted, never back). A cacheable sub-plan's posting list
//! is therefore stored as computed and re-filtered through
//! [`Segment::filter_live`] on every hit — any tombstone that landed after
//! the entry was cached is re-applied, so cached and uncached execution
//! return identical rows at all times. Merged-away segments can never
//! serve stale entries because merges mint fresh segment ids and lookups
//! only ever use ids from the current segment list.

use crate::aggregate::{aggregate_rows, AggPartials, AggResult};
use crate::ast::{cmp_values, values_eq, Bound, Expr, Query};
use crate::naive::naive_plan;
use crate::optimizer::optimize;
use crate::plan::Plan;
use esdb_common::cache::ShardedCache;
use esdb_doc::{CollectionSchema, Document, FieldType, FieldValue};
use esdb_index::snapshot::SnapshotView;
use esdb_index::{Analyzer, BlockStats, ColumnValues, PostingList, Segment, SegmentId};
use std::cmp::Ordering;
use std::sync::Arc;
use std::time::Instant;

/// Execution options.
#[derive(Debug, Clone, Copy)]
pub struct QueryOptions {
    /// `true` = ESDB's rule-based optimizer (§5.1); `false` = the naive
    /// Lucene plan of Fig. 7 (one index search per predicate).
    pub use_optimizer: bool,
    /// `true` = block-at-a-time execution for block-eligible plans;
    /// `false` = always the scalar executor (the equivalence oracle).
    pub block_execution: bool,
}

impl Default for QueryOptions {
    fn default() -> Self {
        QueryOptions {
            use_optimizer: true,
            block_execution: true,
        }
    }
}

/// A result set plus work counters (used to compare plans).
#[derive(Debug, Clone, Default)]
pub struct QueryRows {
    /// Matching documents (after ORDER BY / LIMIT).
    pub docs: Vec<Document>,
    /// Posting entries materialized while executing (the cost the
    /// optimizer attacks — Fig. 7's "posting list grows prohibitively
    /// large").
    pub postings_scanned: u64,
    /// Documents touched by scan filters.
    pub docs_scanned: u64,
    /// Posting-block counters from block-at-a-time set operations (zero on
    /// the scalar path).
    pub blocks: BlockStats,
    /// Wall time spent in block set operations (the `block_prune` trace
    /// stage; zero on the scalar path).
    pub block_prune_ns: u64,
}

/// Work counters threaded through execution.
#[derive(Debug, Default)]
struct Work {
    postings: u64,
    docs: u64,
    blocks: BlockStats,
    prune_ns: u64,
}

/// Converts a numeric-ish [`FieldValue`] to the i64 domain of the numeric
/// index.
fn to_i64(v: &FieldValue) -> Option<i64> {
    match v {
        FieldValue::Int(i) => Some(*i),
        FieldValue::Timestamp(t) => i64::try_from(*t).ok(),
        FieldValue::Bool(b) => Some(*b as i64),
        _ => None,
    }
}

/// Converts a numeric-ish [`FieldValue`] to the f64 domain of the f64
/// numeric index.
fn to_f64(v: &FieldValue) -> Option<f64> {
    match v {
        FieldValue::Float(x) => Some(*x),
        FieldValue::Int(i) => Some(*i as f64),
        _ => None,
    }
}

/// Translates an AST bound into an `std::ops::Bound<f64>`; `Err(())` means
/// the bound's value is not f64-convertible.
fn f64_bound(b: &Bound) -> Result<std::ops::Bound<f64>, ()> {
    match b {
        Bound::Unbounded => Ok(std::ops::Bound::Unbounded),
        Bound::Included(v) => to_f64(v).map(std::ops::Bound::Included).ok_or(()),
        Bound::Excluded(v) => to_f64(v).map(std::ops::Bound::Excluded).ok_or(()),
    }
}

/// Evaluates one leaf predicate through the best index the segment has,
/// falling back to a stored-field scan (always exact).
fn index_predicate(
    pred: &Expr,
    seg: &Segment,
    analyzer: &Analyzer,
    work: &mut Work,
) -> PostingList {
    let out = match pred {
        Expr::Eq(col, v) => match eq_lookup(col, v, seg, analyzer, work) {
            Some(list) => list,
            None => return scan_predicate(pred, seg, &seg.all_live(), work),
        },
        Expr::In(col, vals) => {
            // Union of per-value equality lookups. Each value borrows the
            // column and literal directly — no per-value `Expr` trees are
            // rebuilt on the indexed path.
            let mut lists: Vec<PostingList> = Vec::with_capacity(vals.len());
            for v in vals {
                match eq_lookup(col, v, seg, analyzer, work) {
                    Some(list) => {
                        work.postings += list.len() as u64;
                        lists.push(list);
                    }
                    None => {
                        // No usable index in this segment: exact per-value
                        // scan, still borrowing the operands.
                        lists.push(scan_eq(col, v, seg, &seg.all_live(), work));
                    }
                }
            }
            let refs: Vec<&PostingList> = lists.iter().collect();
            PostingList::union_many(&refs)
        }
        Expr::Range(col, lo, hi) => {
            if seg.has_numeric(col) {
                let lo_i = match lo {
                    Bound::Unbounded => None,
                    Bound::Included(v) => match to_i64(v) {
                        Some(i) => Some(i),
                        None => return scan_predicate(pred, seg, &seg.all_live(), work),
                    },
                    Bound::Excluded(v) => match to_i64(v).and_then(|i| i.checked_add(1)) {
                        Some(i) => Some(i),
                        None => return PostingList::new(),
                    },
                };
                let hi_i = match hi {
                    Bound::Unbounded => None,
                    Bound::Included(v) => match to_i64(v) {
                        Some(i) => Some(i),
                        None => return scan_predicate(pred, seg, &seg.all_live(), work),
                    },
                    Bound::Excluded(v) => match to_i64(v).and_then(|i| i.checked_sub(1)) {
                        Some(i) => Some(i),
                        None => return PostingList::new(),
                    },
                };
                seg.numeric_range(col, lo_i, hi_i)
            } else if seg.has_numeric_f64(col) {
                match (f64_bound(lo), f64_bound(hi)) {
                    (Ok(l), Ok(h)) => seg.numeric_f64_range(col, l, h),
                    _ => return scan_predicate(pred, seg, &seg.all_live(), work),
                }
            } else {
                return scan_predicate(pred, seg, &seg.all_live(), work);
            }
        }
        Expr::Match(col, text) => match_terms(col, text, seg, analyzer, work),
        Expr::AttrEq(name, value) => match seg.attr_docs(name, value) {
            Some(list) => list,
            // Not frequency-indexed in this segment: stored-attr scan.
            None => return scan_predicate(pred, seg, &seg.all_live(), work),
        },
        Expr::True => seg.all_live(),
        // Ne and nested booleans only appear here via the naive planner's
        // fallback — evaluate exactly by scanning.
        other => return scan_predicate(other, seg, &seg.all_live(), work),
    };
    work.postings += out.len() as u64;
    out
}

/// Resolves `col = v` through the best index the segment has, borrowing
/// both operands. `None` means no index applies (undeclared column, or a
/// value type the column's index cannot serve) and the caller must fall
/// back to an exact scan.
fn eq_lookup(
    col: &str,
    v: &FieldValue,
    seg: &Segment,
    analyzer: &Analyzer,
    work: &mut Work,
) -> Option<PostingList> {
    if seg.has_numeric(col) {
        to_i64(v).map(|i| seg.numeric_eq(col, i))
    } else if seg.has_numeric_f64(col) {
        to_f64(v).map(|x| seg.numeric_f64_eq(col, x))
    } else if seg.has_inverted(col) {
        match v {
            FieldValue::Str(s) => {
                // Keyword fields index raw values; text fields index
                // tokens — try raw first, then all-tokens semantics.
                let raw = seg.term_docs(col, s);
                Some(if !raw.is_empty() {
                    raw
                } else {
                    match_terms(col, s, seg, analyzer, work)
                })
            }
            _ => None,
        }
    } else {
        None
    }
}

/// All analyzed terms of `text` must match (conjunction of term postings).
fn match_terms(
    col: &str,
    text: &str,
    seg: &Segment,
    analyzer: &Analyzer,
    work: &mut Work,
) -> PostingList {
    let terms = analyzer.tokenize(text);
    if terms.is_empty() {
        return seg.all_live();
    }
    let lists: Vec<PostingList> = terms.iter().map(|t| seg.term_docs(col, t)).collect();
    work.postings += lists.iter().map(|l| l.len() as u64).sum::<u64>();
    let refs: Vec<&PostingList> = lists.iter().collect();
    PostingList::intersect_many(&refs)
}

/// Exact scan evaluation of `pred` over `input`, via doc values when the
/// column has them and stored fields otherwise.
fn scan_predicate(pred: &Expr, seg: &Segment, input: &PostingList, work: &mut Work) -> PostingList {
    work.docs += input.len() as u64;
    match pred {
        Expr::Eq(col, v) if seg.has_doc_values(col) => {
            seg.scan_filter(col, input, |x| x.is_some_and(|x| values_eq(x, v)))
        }
        Expr::Ne(col, v) if seg.has_doc_values(col) => {
            seg.scan_filter(col, input, |x| x.is_some_and(|x| !values_eq(x, v)))
        }
        Expr::In(col, vs) if seg.has_doc_values(col) => seg.scan_filter(col, input, |x| {
            x.is_some_and(|x| vs.iter().any(|v| values_eq(x, v)))
        }),
        Expr::Range(col, lo, hi) if seg.has_doc_values(col) => seg.scan_filter(col, input, |x| {
            let Some(x) = x else { return false };
            bound_ok(x, lo, true) && bound_ok(x, hi, false)
        }),
        Expr::AttrEq(name, value) => {
            // Frequency-based index when this segment has it (§3.2),
            // bounded stored-attr scan of the input otherwise.
            if let Some(list) = seg.attr_docs(name, value) {
                list.intersect(input)
            } else {
                PostingList::from_sorted(
                    input
                        .iter()
                        .filter(|&d| seg.doc(d).is_some_and(|doc| doc.attr(name) == Some(value)))
                        .collect(),
                )
            }
        }
        // Stored-field fallback (undeclared columns, Match on unindexed
        // fields, nested booleans).
        other => PostingList::from_sorted(
            input
                .iter()
                .filter(|&d| seg.doc(d).is_some_and(|doc| other.matches(doc)))
                .collect(),
        ),
    }
}

/// Exact `col = v` scan over `input`, borrowing both operands (same
/// semantics as [`scan_predicate`] with an `Expr::Eq`, without building
/// the temporary expression tree).
fn scan_eq(
    col: &str,
    v: &FieldValue,
    seg: &Segment,
    input: &PostingList,
    work: &mut Work,
) -> PostingList {
    work.docs += input.len() as u64;
    if seg.has_doc_values(col) {
        seg.scan_filter(col, input, |x| x.is_some_and(|x| values_eq(x, v)))
    } else {
        PostingList::from_sorted(
            input
                .iter()
                .filter(|&d| {
                    seg.doc(d)
                        .is_some_and(|doc| doc.get(col).is_some_and(|x| values_eq(&x, v)))
                })
                .collect(),
        )
    }
}

/// Exact `lo <= col <= hi` scan over `input`, borrowing the bounds (same
/// semantics as [`scan_predicate`] with an `Expr::Range`).
fn scan_range(
    col: &str,
    lo: &Bound,
    hi: &Bound,
    seg: &Segment,
    input: &PostingList,
    work: &mut Work,
) -> PostingList {
    work.docs += input.len() as u64;
    if seg.has_doc_values(col) {
        seg.scan_filter(col, input, |x| {
            let Some(x) = x else { return false };
            bound_ok(x, lo, true) && bound_ok(x, hi, false)
        })
    } else {
        PostingList::from_sorted(
            input
                .iter()
                .filter(|&d| {
                    seg.doc(d).is_some_and(|doc| {
                        doc.get(col)
                            .is_some_and(|x| bound_ok(&x, lo, true) && bound_ok(&x, hi, false))
                    })
                })
                .collect(),
        )
    }
}

fn bound_ok(x: &FieldValue, b: &Bound, is_lo: bool) -> bool {
    match b {
        Bound::Unbounded => true,
        Bound::Included(v) => cmp_values(x, v).is_some_and(|o| {
            if is_lo {
                o != Ordering::Less
            } else {
                o != Ordering::Greater
            }
        }),
        Bound::Excluded(v) => cmp_values(x, v).is_some_and(|o| {
            if is_lo {
                o == Ordering::Greater
            } else {
                o == Ordering::Less
            }
        }),
    }
}

/// Executes a plan on one segment.
fn execute_plan(plan: &Plan, seg: &Segment, analyzer: &Analyzer, work: &mut Work) -> PostingList {
    match plan {
        Plan::All => seg.all_live(),
        Plan::Empty => PostingList::new(),
        Plan::CompositeScan { index, eq, range } => {
            let Some(_) = seg.composite(index) else {
                // Segment without the composite (e.g. built before the
                // schema declared it): fall back to exact scanning of the
                // plan's borrowed fragments — no Expr trees are rebuilt.
                let mut acc = seg.all_live();
                for (c, v) in eq {
                    acc = scan_eq(c, v, seg, &acc, work);
                }
                if let Some((c, lo, hi)) = range {
                    acc = scan_range(c, lo, hi, seg, &acc, work);
                }
                return acc;
            };
            let mut prefix = Vec::with_capacity(eq.len() * 10);
            for (_, v) in eq {
                v.encode_ordered(&mut prefix);
            }
            let enc = |b: &Bound| match b {
                Bound::Unbounded => std::ops::Bound::Unbounded,
                Bound::Included(v) => std::ops::Bound::Included(v.to_ordered_bytes()),
                Bound::Excluded(v) => std::ops::Bound::Excluded(v.to_ordered_bytes()),
            };
            let out = match range {
                None => seg.composite_lookup(index, &prefix, None),
                Some((_, lo, hi)) => {
                    fn as_ref(b: &std::ops::Bound<Vec<u8>>) -> std::ops::Bound<&[u8]> {
                        match b {
                            std::ops::Bound::Unbounded => std::ops::Bound::Unbounded,
                            std::ops::Bound::Included(v) => std::ops::Bound::Included(v.as_slice()),
                            std::ops::Bound::Excluded(v) => std::ops::Bound::Excluded(v.as_slice()),
                        }
                    }
                    let lo_b = enc(lo);
                    let hi_b = enc(hi);
                    seg.composite_lookup(index, &prefix, Some((as_ref(&lo_b), as_ref(&hi_b))))
                }
            };
            work.postings += out.len() as u64;
            out
        }
        Plan::IndexPredicate(p) => index_predicate(p, seg, analyzer, work),
        Plan::ScanFilter { input, predicates } => {
            let mut acc = execute_plan(input, seg, analyzer, work);
            for p in predicates {
                if acc.is_empty() {
                    break;
                }
                acc = scan_predicate(p, seg, &acc, work);
            }
            acc
        }
        Plan::Intersect(ps) => {
            let lists: Vec<PostingList> = ps
                .iter()
                .map(|p| execute_plan(p, seg, analyzer, work))
                .collect();
            let refs: Vec<&PostingList> = lists.iter().collect();
            PostingList::intersect_many(&refs)
        }
        Plan::Union(ps) => {
            let lists: Vec<PostingList> = ps
                .iter()
                .map(|p| execute_plan(p, seg, analyzer, work))
                .collect();
            let refs: Vec<&PostingList> = lists.iter().collect();
            PostingList::union_many(&refs)
        }
    }
}

/// Key of one cached per-segment filter result: `(routing shard, segment
/// id, plan fingerprint)`. Segment ids are only unique *within* a shard
/// (each shard engine numbers from 1), so the shard index is part of the
/// key.
pub type FilterCacheKey = (u32, SegmentId, u128);

/// Tier-1 cache: per-segment posting lists of cacheable sub-plans,
/// weighted by approximate resident bytes.
pub type SegmentFilterCache = ShardedCache<FilterCacheKey, Arc<PostingList>>;

/// Binds a shared [`SegmentFilterCache`] to the routing shard whose
/// segments are being executed.
pub struct FilterCacheContext<'a> {
    /// The instance-wide filter cache.
    pub cache: &'a SegmentFilterCache,
    /// Routing shard the segments belong to (key namespace).
    pub shard: u32,
}

/// Approximate resident weight of a cached posting list.
fn posting_weight(list: &PostingList) -> u64 {
    (list.len() * std::mem::size_of::<esdb_index::segment::DocId>() + 64) as u64
}

/// A plan annotated with fingerprints at its *maximal cacheable subtrees*,
/// computed once per query and shared across every segment and shard the
/// query fans out to.
pub struct PreparedPlan<'p> {
    plan: &'p Plan,
    root: CacheNode<'p>,
}

enum CacheNode<'p> {
    /// Root of a maximal cacheable subtree.
    Cached { plan: &'p Plan, fp: u128 },
    /// Non-cacheable scan residual over a (possibly cacheable) input.
    ScanFilter {
        input: Box<CacheNode<'p>>,
        predicates: &'p [Expr],
    },
    /// Intersection with at least one non-cacheable child.
    Intersect(Vec<CacheNode<'p>>),
    /// Union with at least one non-cacheable child.
    Union(Vec<CacheNode<'p>>),
    /// Trivial leaf executed directly (`All` / `Empty`).
    Direct(&'p Plan),
}

fn annotate(plan: &Plan) -> CacheNode<'_> {
    if plan.cacheable() {
        return CacheNode::Cached {
            plan,
            fp: plan.fingerprint(),
        };
    }
    match plan {
        Plan::ScanFilter { input, predicates } => CacheNode::ScanFilter {
            input: Box::new(annotate(input)),
            predicates,
        },
        Plan::Intersect(ps) => CacheNode::Intersect(ps.iter().map(annotate).collect()),
        Plan::Union(ps) => CacheNode::Union(ps.iter().map(annotate).collect()),
        other => CacheNode::Direct(other),
    }
}

impl<'p> PreparedPlan<'p> {
    /// Annotates `plan` for cached execution (fingerprints each maximal
    /// cacheable subtree once).
    pub fn new(plan: &'p Plan) -> Self {
        PreparedPlan {
            plan,
            root: annotate(plan),
        }
    }

    /// The underlying plan.
    pub fn plan(&self) -> &'p Plan {
        self.plan
    }
}

/// Executes one annotated node on one segment, consulting the cache at
/// cacheable roots.
fn execute_node(
    node: &CacheNode<'_>,
    seg: &Segment,
    analyzer: &Analyzer,
    work: &mut Work,
    ctx: &FilterCacheContext<'_>,
) -> PostingList {
    match node {
        CacheNode::Cached { plan, fp } => {
            let key = (ctx.shard, seg.id, *fp);
            if let Some(hit) = ctx.cache.get(&key) {
                // Re-filter through the *current* tombstones: liveness is
                // monotone, so this equals recomputing from scratch.
                // Work counters stay untouched — a hit does none of the
                // index work the counters measure.
                return seg.filter_live_ref(&hit);
            }
            let out = execute_plan(plan, seg, analyzer, work);
            ctx.cache
                .insert(key, Arc::new(out.clone()), posting_weight(&out));
            out
        }
        CacheNode::ScanFilter { input, predicates } => {
            let mut acc = execute_node(input, seg, analyzer, work, ctx);
            for p in *predicates {
                if acc.is_empty() {
                    break;
                }
                acc = scan_predicate(p, seg, &acc, work);
            }
            acc
        }
        CacheNode::Intersect(ns) => {
            let lists: Vec<PostingList> = ns
                .iter()
                .map(|n| execute_node(n, seg, analyzer, work, ctx))
                .collect();
            let refs: Vec<&PostingList> = lists.iter().collect();
            PostingList::intersect_many(&refs)
        }
        CacheNode::Union(ns) => {
            let lists: Vec<PostingList> = ns
                .iter()
                .map(|n| execute_node(n, seg, analyzer, work, ctx))
                .collect();
            let refs: Vec<&PostingList> = lists.iter().collect();
            PostingList::union_many(&refs)
        }
        CacheNode::Direct(plan) => execute_plan(plan, seg, analyzer, work),
    }
}

/// Executes a full query over a set of segments (one shard's searchable
/// state), applying ORDER BY and LIMIT.
pub fn execute_on_segments(
    query: &Query,
    schema: &CollectionSchema,
    segments: &[&Segment],
    opts: QueryOptions,
) -> QueryRows {
    let plan = if opts.use_optimizer {
        optimize(&query.filter, schema)
    } else {
        naive_plan(&query.filter)
    };
    execute_plan_on_segments(query, &plan, segments)
}

/// Executes a pre-built plan (the figure harness uses this to time plans).
///
/// Like Elasticsearch's query-then-fetch, matching is done on doc IDs and
/// only the rows surviving ORDER BY / LIMIT are materialized (the paper
/// appends `LIMIT 100` to every benchmark query precisely so fetch cost
/// does not dominate).
pub fn execute_plan_on_segments(query: &Query, plan: &Plan, segments: &[&Segment]) -> QueryRows {
    collect_and_fetch(query, segments, |seg, analyzer, work| {
        execute_plan(plan, seg, analyzer, work)
    })
}

/// Executes a prepared plan with the segment filter cache. With
/// `cache: None` this is byte-identical to [`execute_plan_on_segments`].
pub fn execute_prepared_on_segments(
    query: &Query,
    prepared: &PreparedPlan<'_>,
    segments: &[&Segment],
    cache: Option<&FilterCacheContext<'_>>,
) -> QueryRows {
    match cache {
        None => execute_plan_on_segments(query, prepared.plan, segments),
        Some(ctx) => collect_and_fetch(query, segments, |seg, analyzer, work| {
            execute_node(&prepared.root, seg, analyzer, work, ctx)
        }),
    }
}

/// Executes a full query against a pinned point-in-time view. The view
/// is immutable, so execution is lock-free end to end: planning, cache
/// probes, posting intersection, and row materialization all run against
/// the snapshot's sealed segments.
pub fn execute_on_snapshot<V: SnapshotView + ?Sized>(
    query: &Query,
    schema: &CollectionSchema,
    view: &V,
    opts: QueryOptions,
) -> QueryRows {
    let segs: Vec<&Segment> = view.segments().iter().map(|s| s.as_ref()).collect();
    execute_on_segments(query, schema, &segs, opts)
}

/// Executes a prepared plan against a pinned point-in-time view (see
/// [`execute_on_snapshot`]). Tier-1 cache entries are keyed by the
/// view's segment ids; because the view is frozen, a concurrent refresh
/// or merge can neither invalidate nor corrupt entries mid-query.
pub fn execute_prepared_on_snapshot<V: SnapshotView + ?Sized>(
    query: &Query,
    prepared: &PreparedPlan<'_>,
    view: &V,
    cache: Option<&FilterCacheContext<'_>>,
) -> QueryRows {
    let segs: Vec<&Segment> = view.segments().iter().map(|s| s.as_ref()).collect();
    execute_prepared_on_segments(query, prepared, &segs, cache)
}

/// The shared collection / sort / limit / fetch skeleton: runs `matcher`
/// per segment, then applies ORDER BY and LIMIT and materializes only the
/// surviving rows.
fn collect_and_fetch(
    query: &Query,
    segments: &[&Segment],
    mut matcher: impl FnMut(&Segment, &Analyzer, &mut Work) -> PostingList,
) -> QueryRows {
    let analyzer = Analyzer::default();
    let mut work = Work::default();
    // Row-ID collection phase.
    let mut ids: Vec<(usize, esdb_index::segment::DocId)> = Vec::new();
    for (si, seg) in segments.iter().enumerate() {
        let list = matcher(seg, &analyzer, &mut work);
        ids.extend(list.iter().map(|d| (si, d)));
        // Without a sort we only need `limit` rows in total.
        if query.order_by.is_none() {
            if let Some(limit) = query.limit {
                if ids.len() >= limit {
                    ids.truncate(limit);
                    break;
                }
            }
        }
    }
    if let Some(ob) = &query.order_by {
        // Sort keys come from doc values, falling back to stored fields
        // for columns without a doc-values column.
        let key = |si: usize, d: esdb_index::segment::DocId| -> Option<FieldValue> {
            segments[si]
                .doc_value(&ob.column, d)
                .or_else(|| segments[si].doc(d).and_then(|doc| doc.get(&ob.column)))
        };
        ids.sort_by(|&(sa, da), &(sb, db)| {
            let va = key(sa, da);
            let vb = key(sb, db);
            let ord = match (va, vb) {
                (Some(x), Some(y)) => cmp_values(&x, &y).unwrap_or(Ordering::Equal),
                (Some(_), None) => Ordering::Greater,
                (None, Some(_)) => Ordering::Less,
                (None, None) => Ordering::Equal,
            };
            if ob.descending {
                ord.reverse()
            } else {
                ord
            }
        });
    }
    if let Some(limit) = query.limit {
        ids.truncate(limit);
    }
    // Fetch phase: materialize only the surviving rows.
    let docs: Vec<Document> = ids
        .into_iter()
        .filter_map(|(si, d)| segments[si].doc(d).cloned())
        .collect();
    QueryRows {
        docs,
        postings_scanned: work.postings,
        docs_scanned: work.docs,
        blocks: work.blocks,
        block_prune_ns: work.prune_ns,
    }
}

// ---------------------------------------------------------------------------
// Block-at-a-time execution (vectorized read path).
// ---------------------------------------------------------------------------

/// Whether `plan` can run on the block-at-a-time path. The criterion is
/// that no predicate forces a *stored-payload* fallback inside a scan
/// residual: leaf predicates (Eq/Ne/In/Range/Match/AttrEq/True) evaluate
/// through indexes or typed doc-value columns block by block, while a
/// nested boolean residual (`And`/`Or` under a `ScanFilter` or
/// `IndexPredicate`) must match full documents and stays on the scalar
/// executor.
pub fn block_eligible(plan: &Plan) -> bool {
    fn leaf_ok(e: &Expr) -> bool {
        matches!(
            e,
            Expr::Eq(..)
                | Expr::Ne(..)
                | Expr::In(..)
                | Expr::Range(..)
                | Expr::Match(..)
                | Expr::AttrEq(..)
                | Expr::True
        )
    }
    match plan {
        Plan::All | Plan::Empty | Plan::CompositeScan { .. } => true,
        Plan::IndexPredicate(e) => leaf_ok(e),
        Plan::ScanFilter { input, predicates } => {
            block_eligible(input) && predicates.iter().all(leaf_ok)
        }
        Plan::Intersect(ps) | Plan::Union(ps) => ps.iter().all(block_eligible),
    }
}

/// Whether an aggregate query can be computed straight from columnar doc
/// values. Every aggregated column and the GROUP BY column must be a
/// declared doc-values column whose columnar representation is faithful to
/// the stored value (Long/Double/Timestamp/Keyword; Bool columns are
/// stored as integers and stay on the scalar path).
pub fn aggregate_pushdown_eligible(query: &Query, schema: &CollectionSchema) -> bool {
    let col_ok = |c: &str| {
        schema
            .field(c)
            .is_some_and(|f| f.doc_values && !matches!(f.ty, FieldType::Bool))
    };
    query
        .aggregates
        .iter()
        .all(|f| f.column().map_or(true, col_ok))
        && query.group_by.as_deref().map_or(true, col_ok)
}

/// Compares a typed i64 column value against a literal with exactly the
/// [`cmp_values`] semantics of the `FieldValue::Int` the column would
/// produce.
fn cmp_col_i64(x: i64, v: &FieldValue) -> Option<Ordering> {
    match v {
        FieldValue::Int(y) => Some(x.cmp(y)),
        FieldValue::Timestamp(y) => Some((x as i128).cmp(&(*y as i128))),
        FieldValue::Float(y) => (x as f64).partial_cmp(y),
        _ => None,
    }
}

/// [`cmp_values`] semantics for a `FieldValue::Timestamp` column value.
fn cmp_col_u64(x: u64, v: &FieldValue) -> Option<Ordering> {
    match v {
        FieldValue::Int(y) => Some((x as i128).cmp(&(*y as i128))),
        FieldValue::Timestamp(y) => Some(x.cmp(y)),
        _ => None,
    }
}

/// [`cmp_values`] semantics for a `FieldValue::Float` column value.
fn cmp_col_f64(x: f64, v: &FieldValue) -> Option<Ordering> {
    match v {
        FieldValue::Float(y) => x.partial_cmp(y),
        FieldValue::Int(y) => x.partial_cmp(&(*y as f64)),
        _ => None,
    }
}

/// [`cmp_values`] semantics for a `FieldValue::Str` column value.
fn cmp_col_str(x: &str, v: &FieldValue) -> Option<Ordering> {
    match v {
        FieldValue::Str(y) => Some(x.cmp(y.as_str())),
        _ => None,
    }
}

/// Evaluates a comparison predicate given a function producing the
/// ordering of the (present) column value against each literal. Mirrors
/// the reference semantics of [`Expr::matches`] / `scan_predicate` for a
/// present value: `Ne` is true whenever the value does not compare equal
/// (incomparable types included), ranges require both bounds to hold.
fn pred_ord_matches(pred: &Expr, ord: impl Fn(&FieldValue) -> Option<Ordering>) -> bool {
    match pred {
        Expr::Eq(_, v) => ord(v) == Some(Ordering::Equal),
        Expr::Ne(_, v) => ord(v) != Some(Ordering::Equal),
        Expr::In(_, vs) => vs.iter().any(|v| ord(v) == Some(Ordering::Equal)),
        Expr::Range(_, lo, hi) => {
            let lo_ok = match lo {
                Bound::Unbounded => true,
                Bound::Included(v) => ord(v).is_some_and(|o| o != Ordering::Less),
                Bound::Excluded(v) => ord(v) == Some(Ordering::Greater),
            };
            let hi_ok = match hi {
                Bound::Unbounded => true,
                Bound::Included(v) => ord(v).is_some_and(|o| o != Ordering::Greater),
                Bound::Excluded(v) => ord(v) == Some(Ordering::Less),
            };
            lo_ok && hi_ok
        }
        _ => false,
    }
}

/// Filters `input` through a typed column block by block, without
/// materializing per-doc `FieldValue`s. Missing values never match (SQL
/// NULL semantics, same as the scalar scan).
fn filter_typed_column<T: Copy>(
    vals: &[Option<T>],
    input: &PostingList,
    pred: &Expr,
    cmp: impl Fn(T, &FieldValue) -> Option<Ordering>,
) -> PostingList {
    let mut out = PostingList::new();
    for b in input.blocks() {
        for &d in b.ids() {
            if let Some(Some(x)) = vals.get(d as usize) {
                if pred_ord_matches(pred, |v| cmp(*x, v)) {
                    out.push(d);
                }
            }
        }
    }
    out
}

/// Block-at-a-time scan residual: evaluates `pred` over `input` via the
/// segment's typed doc-value column, falling back to the scalar
/// [`scan_predicate`] when the predicate's column has no typed column
/// (identical semantics either way).
fn block_scan_predicate(
    pred: &Expr,
    seg: &Segment,
    input: &PostingList,
    work: &mut Work,
) -> PostingList {
    let col = match pred {
        Expr::Eq(c, _) | Expr::Ne(c, _) | Expr::In(c, _) | Expr::Range(c, _, _) => c,
        other => return scan_predicate(other, seg, input, work),
    };
    let Some(column) = seg.column(col) else {
        return scan_predicate(pred, seg, input, work);
    };
    work.docs += input.len() as u64;
    match column {
        ColumnValues::I64(vals) => filter_typed_column(vals, input, pred, cmp_col_i64),
        ColumnValues::U64(vals) => filter_typed_column(vals, input, pred, cmp_col_u64),
        ColumnValues::F64(vals) => filter_typed_column(vals, input, pred, cmp_col_f64),
        ColumnValues::Str(vals) => {
            let mut out = PostingList::new();
            for b in input.blocks() {
                for &d in b.ids() {
                    if let Some(Some(x)) = vals.get(d as usize) {
                        if pred_ord_matches(pred, |v| cmp_col_str(x, v)) {
                            out.push(d);
                        }
                    }
                }
            }
            out
        }
    }
}

/// Executes a plan on one segment block-at-a-time: set operations run
/// through the skip-data-aware block kernels (timed as the `block_prune`
/// stage) and scan residuals filter typed columns block by block. Leaves
/// (index lookups, composite scans) share the scalar implementations, so
/// results are identical to [`execute_plan`] by construction.
fn execute_plan_blocks(
    plan: &Plan,
    seg: &Segment,
    analyzer: &Analyzer,
    work: &mut Work,
) -> PostingList {
    match plan {
        Plan::ScanFilter { input, predicates } => {
            let mut acc = execute_plan_blocks(input, seg, analyzer, work);
            for p in predicates {
                if acc.is_empty() {
                    break;
                }
                acc = block_scan_predicate(p, seg, &acc, work);
            }
            acc
        }
        Plan::Intersect(ps) => {
            let lists: Vec<PostingList> = ps
                .iter()
                .map(|p| execute_plan_blocks(p, seg, analyzer, work))
                .collect();
            let refs: Vec<&PostingList> = lists.iter().collect();
            let t = Instant::now();
            let out = PostingList::intersect_many_stats(&refs, &mut work.blocks);
            work.prune_ns += t.elapsed().as_nanos() as u64;
            out
        }
        Plan::Union(ps) => {
            let lists: Vec<PostingList> = ps
                .iter()
                .map(|p| execute_plan_blocks(p, seg, analyzer, work))
                .collect();
            let refs: Vec<&PostingList> = lists.iter().collect();
            let t = Instant::now();
            let out = PostingList::union_many_stats(&refs, &mut work.blocks);
            work.prune_ns += t.elapsed().as_nanos() as u64;
            out
        }
        other => execute_plan(other, seg, analyzer, work),
    }
}

/// The cached variant of [`execute_plan_blocks`]: consults the segment
/// filter cache at cacheable roots exactly like `execute_node`, but runs
/// set operations and scan residuals through the block kernels.
fn execute_node_blocks(
    node: &CacheNode<'_>,
    seg: &Segment,
    analyzer: &Analyzer,
    work: &mut Work,
    ctx: &FilterCacheContext<'_>,
) -> PostingList {
    match node {
        CacheNode::Cached { plan, fp } => {
            let key = (ctx.shard, seg.id, *fp);
            if let Some(hit) = ctx.cache.get(&key) {
                return seg.filter_live_ref(&hit);
            }
            let out = execute_plan_blocks(plan, seg, analyzer, work);
            ctx.cache
                .insert(key, Arc::new(out.clone()), posting_weight(&out));
            out
        }
        CacheNode::ScanFilter { input, predicates } => {
            let mut acc = execute_node_blocks(input, seg, analyzer, work, ctx);
            for p in *predicates {
                if acc.is_empty() {
                    break;
                }
                acc = block_scan_predicate(p, seg, &acc, work);
            }
            acc
        }
        CacheNode::Intersect(ns) => {
            let lists: Vec<PostingList> = ns
                .iter()
                .map(|n| execute_node_blocks(n, seg, analyzer, work, ctx))
                .collect();
            let refs: Vec<&PostingList> = lists.iter().collect();
            let t = Instant::now();
            let out = PostingList::intersect_many_stats(&refs, &mut work.blocks);
            work.prune_ns += t.elapsed().as_nanos() as u64;
            out
        }
        CacheNode::Union(ns) => {
            let lists: Vec<PostingList> = ns
                .iter()
                .map(|n| execute_node_blocks(n, seg, analyzer, work, ctx))
                .collect();
            let refs: Vec<&PostingList> = lists.iter().collect();
            let t = Instant::now();
            let out = PostingList::union_many_stats(&refs, &mut work.blocks);
            work.prune_ns += t.elapsed().as_nanos() as u64;
            out
        }
        CacheNode::Direct(plan) => execute_plan_blocks(plan, seg, analyzer, work),
    }
}

/// Block-path collection / sort / limit / fetch: row ids stay in posting
/// blocks until the final projection, and ORDER BY decorates each id with
/// its sort key exactly once (the scalar path fetches keys inside the
/// comparator). The decorated sort's total order — key order, then
/// `(segment, doc)` — reproduces the scalar stable sort byte for byte,
/// because ids are collected in ascending `(segment, doc)` order.
fn collect_blocks_and_fetch(
    query: &Query,
    segments: &[&Segment],
    mut matcher: impl FnMut(&Segment, &Analyzer, &mut Work) -> PostingList,
) -> QueryRows {
    let analyzer = Analyzer::default();
    let mut work = Work::default();
    let mut ids: Vec<(usize, esdb_index::segment::DocId)> = Vec::new();
    'collect: for (si, seg) in segments.iter().enumerate() {
        let list = matcher(seg, &analyzer, &mut work);
        for b in list.blocks() {
            ids.extend(b.ids().iter().map(|&d| (si, d)));
        }
        if query.order_by.is_none() {
            if let Some(limit) = query.limit {
                if ids.len() >= limit {
                    ids.truncate(limit);
                    break 'collect;
                }
            }
        }
    }
    if let Some(ob) = &query.order_by {
        // Decorate once: one doc-values lookup per id instead of two per
        // comparison.
        let mut dec: Vec<(Option<FieldValue>, usize, esdb_index::segment::DocId)> = ids
            .iter()
            .map(|&(si, d)| {
                let key = segments[si]
                    .doc_value(&ob.column, d)
                    .or_else(|| segments[si].doc(d).and_then(|doc| doc.get(&ob.column)));
                (key, si, d)
            })
            .collect();
        type Dec = (Option<FieldValue>, usize, esdb_index::segment::DocId);
        let cmp = |a: &Dec, b: &Dec| {
            let ord = match (&a.0, &b.0) {
                (Some(x), Some(y)) => cmp_values(x, y).unwrap_or(Ordering::Equal),
                (Some(_), None) => Ordering::Greater,
                (None, Some(_)) => Ordering::Less,
                (None, None) => Ordering::Equal,
            };
            let ord = if ob.descending { ord.reverse() } else { ord };
            ord.then_with(|| (a.1, a.2).cmp(&(b.1, b.2)))
        };
        // Top-k selection: the comparator is a strict total order (ties
        // break on the unique `(segment, doc)` pair), so selecting the
        // smallest `limit` elements and sorting only those reproduces the
        // full sort's prefix exactly, in O(n + k log k) instead of
        // O(n log n).
        if let Some(limit) = query.limit {
            if limit == 0 {
                dec.clear();
            } else if limit < dec.len() {
                dec.select_nth_unstable_by(limit - 1, cmp);
                dec.truncate(limit);
            }
        }
        dec.sort_by(cmp);
        ids = dec.into_iter().map(|(_, si, d)| (si, d)).collect();
    }
    if let Some(limit) = query.limit {
        ids.truncate(limit);
    }
    let docs: Vec<Document> = ids
        .into_iter()
        .filter_map(|(si, d)| segments[si].doc(d).cloned())
        .collect();
    QueryRows {
        docs,
        postings_scanned: work.postings,
        docs_scanned: work.docs,
        blocks: work.blocks,
        block_prune_ns: work.prune_ns,
    }
}

/// Executes a full query block-at-a-time against a pinned point-in-time
/// view. Results are identical to [`execute_on_snapshot`]; only the
/// execution strategy (and the block counters) differ.
pub fn execute_blocks_on_snapshot<V: SnapshotView + ?Sized>(
    query: &Query,
    schema: &CollectionSchema,
    view: &V,
    opts: QueryOptions,
) -> QueryRows {
    let plan = if opts.use_optimizer {
        optimize(&query.filter, schema)
    } else {
        naive_plan(&query.filter)
    };
    let segs: Vec<&Segment> = view.segments().iter().map(|s| s.as_ref()).collect();
    collect_blocks_and_fetch(query, &segs, |seg, analyzer, work| {
        execute_plan_blocks(&plan, seg, analyzer, work)
    })
}

/// Executes a prepared plan block-at-a-time with the segment filter cache
/// (the block counterpart of [`execute_prepared_on_snapshot`]).
pub fn execute_prepared_blocks_on_snapshot<V: SnapshotView + ?Sized>(
    query: &Query,
    prepared: &PreparedPlan<'_>,
    view: &V,
    cache: Option<&FilterCacheContext<'_>>,
) -> QueryRows {
    let segs: Vec<&Segment> = view.segments().iter().map(|s| s.as_ref()).collect();
    match cache {
        None => collect_blocks_and_fetch(query, &segs, |seg, analyzer, work| {
            execute_plan_blocks(prepared.plan, seg, analyzer, work)
        }),
        Some(ctx) => collect_blocks_and_fetch(query, &segs, |seg, analyzer, work| {
            execute_node_blocks(&prepared.root, seg, analyzer, work, ctx)
        }),
    }
}

/// Aggregation pushdown: computes the aggregate select list directly from
/// per-segment columnar doc values, never materializing stored payloads
/// for column-backed inputs. The matched doc ids are consumed through
/// [`SnapshotView::for_each_live_block`], so the copy-on-write live-doc
/// bitmap is applied a block at a time.
fn aggregate_blocks<V: SnapshotView + ?Sized>(
    query: &Query,
    view: &V,
    mut matcher: impl FnMut(&Segment, &Analyzer, &mut Work) -> PostingList,
) -> AggPartials {
    let analyzer = Analyzer::default();
    let mut work = Work::default();
    let mut partials = AggPartials::default();
    let mut payloads = 0u64;
    let funcs = &query.aggregates;
    for (si, seg) in view.segments().iter().enumerate() {
        let seg = seg.as_ref();
        let list = matcher(seg, &analyzer, &mut work);
        // Typed column per aggregate input (None = payload fallback).
        let cols: Vec<Option<&ColumnValues>> = funcs
            .iter()
            .map(|f| f.column().and_then(|c| seg.column(c)))
            .collect();
        let gcol = query.group_by.as_deref().and_then(|c| seg.column(c));
        view.for_each_live_block(si, &list, &mut |block_ids| {
            for &d in block_ids {
                let key = match &query.group_by {
                    None => None,
                    Some(c) => match gcol {
                        Some(col) => col.get(d),
                        None => {
                            payloads += 1;
                            seg.doc(d).and_then(|doc| doc.get(c))
                        }
                    },
                };
                let parts = partials.entry(key, funcs);
                for (i, (p, f)) in parts.iter_mut().zip(funcs).enumerate() {
                    let v = match cols[i] {
                        Some(col) => col.get(d),
                        None => match f.column() {
                            Some(c) => {
                                payloads += 1;
                                seg.doc(d).and_then(|doc| doc.get(c))
                            }
                            None => None,
                        },
                    };
                    p.accumulate(f, v);
                }
            }
        });
    }
    partials.postings_scanned = work.postings;
    partials.docs_scanned = work.docs;
    partials.payload_reads = payloads;
    partials.blocks = work.blocks;
    partials.block_prune_ns = work.prune_ns;
    partials
}

/// Executes an aggregate query block-at-a-time against a pinned view,
/// returning mergeable per-shard partials (the coordinator merges shards
/// with [`AggPartials::merge`] and finishes once).
pub fn aggregate_blocks_on_snapshot<V: SnapshotView + ?Sized>(
    query: &Query,
    schema: &CollectionSchema,
    view: &V,
    opts: QueryOptions,
) -> AggPartials {
    let plan = if opts.use_optimizer {
        optimize(&query.filter, schema)
    } else {
        naive_plan(&query.filter)
    };
    aggregate_blocks(query, view, |seg, analyzer, work| {
        execute_plan_blocks(&plan, seg, analyzer, work)
    })
}

/// Cached variant of [`aggregate_blocks_on_snapshot`].
pub fn aggregate_prepared_blocks_on_snapshot<V: SnapshotView + ?Sized>(
    query: &Query,
    prepared: &PreparedPlan<'_>,
    view: &V,
    cache: Option<&FilterCacheContext<'_>>,
) -> AggPartials {
    match cache {
        None => aggregate_blocks(query, view, |seg, analyzer, work| {
            execute_plan_blocks(prepared.plan, seg, analyzer, work)
        }),
        Some(ctx) => aggregate_blocks(query, view, |seg, analyzer, work| {
            execute_node_blocks(&prepared.root, seg, analyzer, work, ctx)
        }),
    }
}

/// The scalar aggregation oracle: materializes every matching row through
/// the scalar executor, then aggregates with the reference semantics of
/// [`crate::aggregate::aggregate`]. `payload_reads` counts the
/// materialized rows — the cost the block path's pushdown avoids.
pub fn aggregate_scalar_on_snapshot<V: SnapshotView + ?Sized>(
    query: &Query,
    schema: &CollectionSchema,
    view: &V,
    opts: QueryOptions,
) -> AggResult {
    let row_query = Query {
        aggregates: Vec::new(),
        group_by: None,
        projection: Vec::new(),
        order_by: None,
        limit: None,
        ..query.clone()
    };
    let rows = execute_on_snapshot(&row_query, schema, view, opts);
    let agg_rows = aggregate_rows(&rows.docs, &query.aggregates, query.group_by.as_deref());
    AggResult {
        rows: agg_rows,
        postings_scanned: rows.postings_scanned,
        docs_scanned: rows.docs_scanned,
        payload_reads: rows.docs.len() as u64,
        blocks: rows.blocks,
        block_prune_ns: rows.block_prune_ns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sql::parse_sql;
    use crate::xdriver::translate;
    use esdb_common::fastmap::fast_set;
    use esdb_common::{RecordId, TenantId};
    use esdb_index::SegmentBuilder;

    /// 200 docs: tenants 1..=4, times 1000+i, status i%3, group i%10,
    /// titles cycling, attrs on every 4th doc.
    fn build_segment() -> Segment {
        let schema = CollectionSchema::transaction_logs();
        let mut attrs = fast_set();
        attrs.insert("activity".to_string());
        let mut b = SegmentBuilder::new(schema, attrs);
        for i in 0..200u64 {
            let mut d = Document::builder(TenantId(1 + i % 4), RecordId(i), 1_000 + i)
                .field("status", (i % 3) as i64)
                .field("group", (i % 10) as i64)
                .field("province", if i % 2 == 0 { "zhejiang" } else { "jiangsu" })
                .field("amount", FieldValue::Float(i as f64 * 1.5))
                .field(
                    "auction_title",
                    format!(
                        "{} book vol {}",
                        if i % 2 == 0 { "rust" } else { "java" },
                        i
                    ),
                );
            if i % 4 == 0 {
                d = d.attr("activity", "1111").attr("size", "XL");
            }
            b.add(d.build());
        }
        b.refresh(1)
    }

    fn run(sql: &str, optimizer: bool) -> QueryRows {
        let seg = build_segment();
        let q = translate(parse_sql(sql).unwrap());
        execute_on_segments(
            &q,
            &CollectionSchema::transaction_logs(),
            &[&seg],
            QueryOptions {
                use_optimizer: optimizer,
                ..QueryOptions::default()
            },
        )
    }

    /// Both planners must agree with the reference semantics.
    fn check_against_reference(sql: &str) {
        let seg = build_segment();
        let q = translate(parse_sql(sql).unwrap());
        let expected: Vec<u64> = seg
            .live_docs()
            .filter(|(_, d)| q.filter.matches(d))
            .map(|(_, d)| d.record_id.raw())
            .collect();
        for optimizer in [true, false] {
            let rows = execute_on_segments(
                &q,
                &CollectionSchema::transaction_logs(),
                &[&seg],
                QueryOptions {
                    use_optimizer: optimizer,
                    ..QueryOptions::default()
                },
            );
            let mut got: Vec<u64> = rows.docs.iter().map(|d| d.record_id.raw()).collect();
            got.sort_unstable();
            let mut want = expected.clone();
            want.sort_unstable();
            assert_eq!(got, want, "optimizer={optimizer} sql={sql}");
        }
    }

    #[test]
    fn reference_queries_agree() {
        for sql in [
            "SELECT * FROM transaction_logs WHERE tenant_id = 1",
            "SELECT * FROM transaction_logs WHERE tenant_id = 2 AND status = 1",
            "SELECT * FROM transaction_logs WHERE tenant_id = 1 AND created_time BETWEEN 1050 AND 1100",
            "SELECT * FROM transaction_logs WHERE tenant_id = 1 AND created_time >= 1050 AND created_time <= 1150 AND status = 0 OR group = 7",
            "SELECT * FROM transaction_logs WHERE MATCH(auction_title, 'rust book')",
            "SELECT * FROM transaction_logs WHERE tenant_id IN (1, 3) AND group IN (2, 4)",
            "SELECT * FROM transaction_logs WHERE ATTR('activity') = '1111'",
            "SELECT * FROM transaction_logs WHERE ATTR('size') = 'XL' AND tenant_id = 1",
            "SELECT * FROM transaction_logs WHERE status != 2 AND tenant_id = 4",
            "SELECT * FROM transaction_logs WHERE amount > 100.0 AND amount <= 200.0",
            "SELECT * FROM transaction_logs WHERE province = 'zhejiang' AND status = 1",
            "SELECT * FROM transaction_logs WHERE created_time < 1010 OR created_time > 1190",
        ] {
            check_against_reference(sql);
        }
    }

    #[test]
    fn order_by_and_limit() {
        let rows = run(
            "SELECT * FROM transaction_logs WHERE tenant_id = 1 ORDER BY created_time DESC LIMIT 5",
            true,
        );
        assert_eq!(rows.docs.len(), 5);
        let times: Vec<u64> = rows.docs.iter().map(|d| d.created_at).collect();
        let mut sorted = times.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        assert_eq!(times, sorted, "descending order");
        assert_eq!(times[0], 1_196, "latest doc of tenant 1");
    }

    #[test]
    fn optimizer_scans_fewer_postings() {
        let sql = "SELECT * FROM transaction_logs WHERE tenant_id = 1 \
                   AND created_time BETWEEN 1000 AND 1020 AND status = 1";
        let opt = run(sql, true);
        let naive = run(sql, false);
        let opt_ids: Vec<u64> = opt.docs.iter().map(|d| d.record_id.raw()).collect();
        let naive_ids: Vec<u64> = naive.docs.iter().map(|d| d.record_id.raw()).collect();
        assert_eq!(opt_ids.len(), naive_ids.len());
        assert!(
            opt.postings_scanned < naive.postings_scanned,
            "optimizer {} vs naive {}",
            opt.postings_scanned,
            naive.postings_scanned
        );
    }

    #[test]
    fn multi_segment_execution() {
        let schema = CollectionSchema::transaction_logs();
        let mut b1 = SegmentBuilder::without_attr_index(schema.clone());
        let mut b2 = SegmentBuilder::without_attr_index(schema.clone());
        for i in 0..10u64 {
            b1.add(
                Document::builder(TenantId(1), RecordId(i), 1_000 + i)
                    .field("status", 1i64)
                    .build(),
            );
            b2.add(
                Document::builder(TenantId(1), RecordId(100 + i), 2_000 + i)
                    .field("status", 1i64)
                    .build(),
            );
        }
        let s1 = b1.refresh(1);
        let s2 = b2.refresh(2);
        let q = translate(
            parse_sql("SELECT * FROM transaction_logs WHERE tenant_id = 1 AND status = 1").unwrap(),
        );
        let rows = execute_on_segments(&q, &schema, &[&s1, &s2], QueryOptions::default());
        assert_eq!(rows.docs.len(), 20);
    }

    #[test]
    fn attr_fallback_scan_when_not_indexed() {
        // "size" is not in the indexed-attr set, so the executor must scan
        // stored attrs — and still be exact.
        let rows = run(
            "SELECT * FROM transaction_logs WHERE ATTR('size') = 'XL'",
            true,
        );
        assert_eq!(rows.docs.len(), 50);
        assert!(rows.docs_scanned > 0, "fallback scanned stored docs");
    }

    #[test]
    fn cached_execution_matches_uncached_across_tombstones() {
        let mut seg = build_segment();
        let schema = CollectionSchema::transaction_logs();
        let q = translate(
            parse_sql(
                "SELECT * FROM transaction_logs WHERE tenant_id = 1 AND status = 0 \
                 ORDER BY created_time ASC LIMIT 100",
            )
            .unwrap(),
        );
        let plan = optimize(&q.filter, &schema);
        let prepared = PreparedPlan::new(&plan);
        let cache = SegmentFilterCache::new(1 << 20);
        let ctx = FilterCacheContext {
            cache: &cache,
            shard: 0,
        };

        let plain = execute_plan_on_segments(&q, &plan, &[&seg]);
        let cold = execute_prepared_on_segments(&q, &prepared, &[&seg], Some(&ctx));
        // A cold pass does exactly the uncached work.
        assert_eq!(cold.docs, plain.docs);
        assert_eq!(cold.postings_scanned, plain.postings_scanned);
        assert_eq!(cold.docs_scanned, plain.docs_scanned);
        assert!(cache.stats().entries >= 1, "cacheable sub-plan stored");

        let warm = execute_prepared_on_segments(&q, &prepared, &[&seg], Some(&ctx));
        assert_eq!(warm.docs, plain.docs);
        assert!(cache.stats().hits >= 1, "warm pass must hit");

        // Tombstones landing *after* the entry was cached must be applied
        // on every subsequent hit.
        let victims: Vec<RecordId> = plain.docs.iter().take(3).map(|d| d.record_id).collect();
        assert_eq!(victims.len(), 3);
        for v in &victims {
            assert!(seg.delete_record(v.raw()));
        }
        let after = execute_prepared_on_segments(&q, &prepared, &[&seg], Some(&ctx));
        let plain_after = execute_plan_on_segments(&q, &plan, &[&seg]);
        assert_eq!(after.docs, plain_after.docs);
        assert_eq!(after.docs.len(), plain.docs.len() - 3);
        assert!(after.docs.iter().all(|d| !victims.contains(&d.record_id)));
    }

    #[test]
    fn prepared_without_cache_is_the_plain_path() {
        let seg = build_segment();
        let schema = CollectionSchema::transaction_logs();
        for sql in [
            "SELECT * FROM transaction_logs WHERE tenant_id = 2 AND group IN (1, 3, 5)",
            "SELECT * FROM transaction_logs WHERE status = 1 OR group = 2",
            "SELECT * FROM transaction_logs WHERE MATCH(auction_title, 'rust book')",
        ] {
            let q = translate(parse_sql(sql).unwrap());
            let plan = optimize(&q.filter, &schema);
            let prepared = PreparedPlan::new(&plan);
            let a = execute_plan_on_segments(&q, &plan, &[&seg]);
            let b = execute_prepared_on_segments(&q, &prepared, &[&seg], None);
            assert_eq!(a.docs, b.docs, "{sql}");
            assert_eq!(a.postings_scanned, b.postings_scanned, "{sql}");
            assert_eq!(a.docs_scanned, b.docs_scanned, "{sql}");
        }
    }

    /// Minimal snapshot view over owned segments, for block-path tests.
    struct TestView {
        segs: Vec<Arc<Segment>>,
    }

    impl SnapshotView for TestView {
        fn segments(&self) -> &[Arc<Segment>] {
            &self.segs
        }
        fn search_generation(&self) -> u64 {
            1
        }
    }

    fn test_view(segs: Vec<Segment>) -> TestView {
        TestView {
            segs: segs.into_iter().map(Arc::new).collect(),
        }
    }

    const BLOCK_CORPUS: &[&str] = &[
        "SELECT * FROM transaction_logs WHERE tenant_id = 1",
        "SELECT * FROM transaction_logs WHERE tenant_id = 2 AND status = 1",
        "SELECT * FROM transaction_logs WHERE tenant_id = 1 AND created_time BETWEEN 1050 AND 1100",
        "SELECT * FROM transaction_logs WHERE tenant_id = 1 AND created_time >= 1050 AND created_time <= 1150 AND status = 0 OR group = 7",
        "SELECT * FROM transaction_logs WHERE MATCH(auction_title, 'rust book')",
        "SELECT * FROM transaction_logs WHERE tenant_id IN (1, 3) AND group IN (2, 4)",
        "SELECT * FROM transaction_logs WHERE status != 2 AND tenant_id = 4",
        "SELECT * FROM transaction_logs WHERE amount > 100.0 AND amount <= 200.0",
        "SELECT * FROM transaction_logs WHERE province = 'zhejiang' AND status = 1",
        "SELECT * FROM transaction_logs WHERE tenant_id = 1 ORDER BY created_time DESC LIMIT 5",
        "SELECT * FROM transaction_logs WHERE status = 1 ORDER BY amount ASC LIMIT 17",
        "SELECT * FROM transaction_logs WHERE tenant_id = 2 LIMIT 9",
        "SELECT * FROM transaction_logs WHERE created_time < 1010 OR created_time > 1190",
    ];

    #[test]
    fn block_rows_match_scalar_exactly() {
        let view = test_view(vec![build_segment()]);
        let schema = CollectionSchema::transaction_logs();
        for sql in BLOCK_CORPUS {
            let q = translate(parse_sql(sql).unwrap());
            for use_optimizer in [true, false] {
                let opts = QueryOptions {
                    use_optimizer,
                    ..QueryOptions::default()
                };
                let scalar = execute_on_snapshot(&q, &schema, &view, opts);
                let block = execute_blocks_on_snapshot(&q, &schema, &view, opts);
                assert_eq!(scalar.docs, block.docs, "{sql} optimizer={use_optimizer}");
            }
        }
    }

    #[test]
    fn block_rows_match_scalar_with_tombstones() {
        let mut seg = build_segment();
        for r in [0u64, 3, 7, 50, 51, 52, 53, 199] {
            assert!(seg.delete_record(r));
        }
        let view = test_view(vec![seg]);
        let schema = CollectionSchema::transaction_logs();
        for sql in BLOCK_CORPUS {
            let q = translate(parse_sql(sql).unwrap());
            let scalar = execute_on_snapshot(&q, &schema, &view, QueryOptions::default());
            let block = execute_blocks_on_snapshot(&q, &schema, &view, QueryOptions::default());
            assert_eq!(scalar.docs, block.docs, "{sql}");
        }
    }

    #[test]
    fn cached_block_execution_matches_plain_block_execution() {
        let view = test_view(vec![build_segment()]);
        let schema = CollectionSchema::transaction_logs();
        let q = translate(
            parse_sql(
                "SELECT * FROM transaction_logs WHERE tenant_id = 1 AND status = 0 \
                 ORDER BY created_time ASC LIMIT 100",
            )
            .unwrap(),
        );
        let plan = optimize(&q.filter, &schema);
        let prepared = PreparedPlan::new(&plan);
        let cache = SegmentFilterCache::new(1 << 20);
        let ctx = FilterCacheContext {
            cache: &cache,
            shard: 0,
        };
        let plain = execute_blocks_on_snapshot(&q, &schema, &view, QueryOptions::default());
        let cold = execute_prepared_blocks_on_snapshot(&q, &prepared, &view, Some(&ctx));
        assert_eq!(cold.docs, plain.docs);
        let warm = execute_prepared_blocks_on_snapshot(&q, &prepared, &view, Some(&ctx));
        assert_eq!(warm.docs, plain.docs);
        assert!(cache.stats().hits >= 1, "warm pass must hit");
    }

    #[test]
    fn block_path_is_eligible_for_leaf_plans_only() {
        let schema = CollectionSchema::transaction_logs();
        let eligible = translate(
            parse_sql("SELECT * FROM transaction_logs WHERE tenant_id = 1 AND status = 1").unwrap(),
        );
        assert!(block_eligible(&optimize(&eligible.filter, &schema)));
        // A NOT-over-OR style residual the optimizer cannot flatten keeps
        // nested booleans inside a scan predicate.
        let nested = Expr::And(vec![
            Expr::Eq("tenant_id".into(), FieldValue::Int(1)),
            Expr::Or(vec![
                Expr::And(vec![
                    Expr::Ne("status".into(), FieldValue::Int(1)),
                    Expr::Ne("status".into(), FieldValue::Int(2)),
                ]),
                Expr::Match("auction_title".into(), "rust".into()),
            ]),
        ]);
        let plan = optimize(&nested, &schema);
        // Whatever shape the optimizer picks, eligibility must agree with
        // the structural rule (no nested boolean residuals).
        fn has_nested_residual(p: &Plan) -> bool {
            match p {
                Plan::ScanFilter { input, predicates } => {
                    predicates
                        .iter()
                        .any(|e| matches!(e, Expr::And(_) | Expr::Or(_)))
                        || has_nested_residual(input)
                }
                Plan::IndexPredicate(e) => matches!(e, Expr::And(_) | Expr::Or(_)),
                Plan::Intersect(ps) | Plan::Union(ps) => ps.iter().any(has_nested_residual),
                _ => false,
            }
        }
        assert_eq!(block_eligible(&plan), !has_nested_residual(&plan));
    }

    #[test]
    fn aggregation_pushdown_matches_scalar_oracle_with_zero_payload_reads() {
        let view = test_view(vec![build_segment()]);
        let schema = CollectionSchema::transaction_logs();
        for sql in [
            "SELECT COUNT(*) FROM transaction_logs WHERE tenant_id = 1",
            "SELECT COUNT(*), SUM(group), MIN(amount), MAX(created_time), AVG(status) \
             FROM transaction_logs WHERE tenant_id = 1 AND status = 1",
            "SELECT COUNT(amount), SUM(amount) FROM transaction_logs \
             WHERE created_time BETWEEN 1050 AND 1150",
            "SELECT COUNT(*), SUM(group) FROM transaction_logs \
             WHERE tenant_id = 2 GROUP BY status",
            "SELECT COUNT(*), MIN(created_time), MAX(amount) FROM transaction_logs \
             WHERE tenant_id = 9999",
            "SELECT COUNT(*) FROM transaction_logs WHERE tenant_id = 3 GROUP BY province",
        ] {
            let q = translate(parse_sql(sql).unwrap());
            assert!(aggregate_pushdown_eligible(&q, &schema), "{sql}");
            let oracle = aggregate_scalar_on_snapshot(&q, &schema, &view, QueryOptions::default());
            let partials =
                aggregate_blocks_on_snapshot(&q, &schema, &view, QueryOptions::default());
            assert_eq!(partials.payload_reads, 0, "{sql}: pushdown read payloads");
            let got = partials.finish(&q.aggregates, q.group_by.is_some());
            assert_eq!(got.rows, oracle.rows, "{sql}");
            assert!(
                oracle.payload_reads > 0 || oracle.rows[0].values[0] == FieldValue::Int(0),
                "{sql}: scalar oracle materializes rows"
            );
        }
    }

    #[test]
    fn aggregation_pushdown_matches_oracle_under_tombstones() {
        let mut seg = build_segment();
        for r in (0..200u64).step_by(3) {
            assert!(seg.delete_record(r));
        }
        let view = test_view(vec![seg, build_segment_offset(200)]);
        let schema = CollectionSchema::transaction_logs();
        let q = translate(
            parse_sql(
                "SELECT COUNT(*), SUM(group), MIN(created_time), MAX(created_time) \
                 FROM transaction_logs WHERE tenant_id = 1 GROUP BY status",
            )
            .unwrap(),
        );
        let oracle = aggregate_scalar_on_snapshot(&q, &schema, &view, QueryOptions::default());
        let partials = aggregate_blocks_on_snapshot(&q, &schema, &view, QueryOptions::default());
        assert_eq!(partials.payload_reads, 0);
        let got = partials.finish(&q.aggregates, true);
        assert_eq!(got.rows, oracle.rows);
    }

    /// Like [`build_segment`] but with record ids / times offset, to model
    /// a second segment.
    fn build_segment_offset(base: u64) -> Segment {
        let schema = CollectionSchema::transaction_logs();
        let mut b = SegmentBuilder::without_attr_index(schema);
        for i in 0..100u64 {
            b.add(
                Document::builder(TenantId(1 + i % 4), RecordId(base + i), 1_000 + base + i)
                    .field("status", (i % 3) as i64)
                    .field("group", (i % 10) as i64)
                    .build(),
            );
        }
        b.refresh(2)
    }

    #[test]
    fn bool_columns_are_not_pushdown_eligible() {
        let schema = CollectionSchema::builder("t")
            .field("flag", esdb_doc::FieldType::Bool, true, true)
            .field("v", esdb_doc::FieldType::Long, true, true)
            .build();
        let q = translate(parse_sql("SELECT SUM(flag) FROM t").unwrap());
        assert!(!aggregate_pushdown_eligible(&q, &schema));
        let q2 = translate(parse_sql("SELECT SUM(v) FROM t").unwrap());
        assert!(aggregate_pushdown_eligible(&q2, &schema));
        let q3 = translate(parse_sql("SELECT COUNT(*) FROM t GROUP BY flag").unwrap());
        assert!(!aggregate_pushdown_eligible(&q3, &schema));
    }
}
