//! The query engine: SQL front-end, Xdriver4ES translation, rule-based
//! optimization, and execution over segments (paper §3.1, §5.1).
//!
//! Pipeline:
//!
//! ```text
//! SQL text ──sql──▶ Expr AST ──xdriver──▶ normalized AST (CNF/DNF
//!   conversion + predicate merge, §3.1) ──optimizer──▶ physical plan
//!   (composite index / sequential scan / single-column index, §5.1)
//!   ──executor──▶ per-segment posting lists ──▶ rows
//!   ──aggregate──▶ cross-shard merge (global sort / top-k / LIMIT)
//! ```
//!
//! The `naive` module reproduces the *unoptimized* Lucene plan of Fig. 7
//! (one index search per predicate, then intersect/union) — the baseline of
//! the Fig. 17 experiment.

pub mod aggregate;
pub mod ast;
pub mod datetime;
pub mod executor;
pub mod mapping;
pub mod naive;
pub mod optimizer;
pub mod plan;
pub mod sql;
pub mod xdriver;

pub use aggregate::{
    aggregate, aggregate_rows, merge_results, AggFunc, AggPartial, AggPartials, AggResult, AggRow,
};
pub use ast::{Bound, Expr, OrderBy, Query};
pub use executor::{
    aggregate_blocks_on_snapshot, aggregate_prepared_blocks_on_snapshot,
    aggregate_pushdown_eligible, aggregate_scalar_on_snapshot, block_eligible,
    execute_blocks_on_snapshot, execute_on_segments, execute_on_snapshot, execute_plan_on_segments,
    execute_prepared_blocks_on_snapshot, execute_prepared_on_segments,
    execute_prepared_on_snapshot, FilterCacheContext, FilterCacheKey, PreparedPlan, QueryOptions,
    QueryRows, SegmentFilterCache,
};
pub use optimizer::optimize;
pub use plan::{query_fingerprint, Plan};
pub use sql::parse_sql;
pub use xdriver::translate;
