//! The unoptimized Lucene plan (paper Fig. 7) — the baseline ESDB's query
//! optimizer is evaluated against (§6.3.2).
//!
//! Lucene "generates posting lists for each column by searching the
//! corresponding indices, then aggregates the posting lists through
//! intersections and unions": no composite indexes, no sequential scans —
//! every predicate pays for a full index search, however unselective.

use crate::ast::Expr;
use crate::plan::Plan;

/// Builds the naive plan: one index search per leaf, intersect for AND,
/// union for OR.
pub fn naive_plan(expr: &Expr) -> Plan {
    match expr {
        Expr::True => Plan::All,
        Expr::Or(bs) if bs.is_empty() => Plan::Empty,
        Expr::And(ps) => Plan::Intersect(ps.iter().map(naive_plan).collect()),
        Expr::Or(ps) => Plan::Union(ps.iter().map(naive_plan).collect()),
        leaf => Plan::IndexPredicate(leaf.clone()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Bound;
    use esdb_doc::FieldValue;

    #[test]
    fn fig7_shape() {
        // (tenant AND time AND status) OR group — four index searches.
        let e = Expr::Or(vec![
            Expr::And(vec![
                Expr::Eq("tenant_id".into(), FieldValue::Int(10086)),
                Expr::Range(
                    "created_time".into(),
                    Bound::Included(FieldValue::Timestamp(0)),
                    Bound::Included(FieldValue::Timestamp(10)),
                ),
                Expr::Eq("status".into(), FieldValue::Int(1)),
            ]),
            Expr::Eq("group".into(), FieldValue::Int(666)),
        ]);
        let p = naive_plan(&e);
        assert!(!p.uses_composite());
        match &p {
            Plan::Union(bs) => {
                assert!(matches!(&bs[0], Plan::Intersect(ps) if ps.len() == 3));
                assert!(matches!(&bs[1], Plan::IndexPredicate(_)));
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(p.operator_count(), 6);
    }

    #[test]
    fn leaves_become_index_predicates() {
        let e = Expr::Eq("a".into(), FieldValue::Int(1));
        assert_eq!(naive_plan(&e), Plan::IndexPredicate(e));
        assert_eq!(naive_plan(&Expr::True), Plan::All);
        assert_eq!(naive_plan(&Expr::Or(vec![])), Plan::Empty);
    }
}
