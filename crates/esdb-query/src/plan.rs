//! Physical query plans (paper §5.1, Fig. 7/8).

use crate::ast::{Bound, Expr};
use esdb_doc::FieldValue;
use std::fmt;

/// A physical access plan producing a posting list per segment.
#[derive(Debug, Clone, PartialEq)]
pub enum Plan {
    /// All live documents.
    All,
    /// No documents (contradictory filter).
    Empty,
    /// Composite-index scan: equality prefix plus an optional range on the
    /// next column (Fig. 8's `tenant_id_created_time` scan).
    CompositeScan {
        /// Index name.
        index: String,
        /// Leading equality columns and their values, in index order.
        eq: Vec<(String, FieldValue)>,
        /// Optional range on the column right after the equality prefix.
        range: Option<(String, Bound, Bound)>,
    },
    /// A single predicate resolved through its own index (falling back to
    /// a scan when the segment has no suitable index).
    IndexPredicate(Expr),
    /// Sequential scan (§5.1): filter the input posting list through
    /// doc-values/stored-field predicates.
    ScanFilter {
        /// Producer of the candidate list.
        input: Box<Plan>,
        /// Predicates applied by scanning.
        predicates: Vec<Expr>,
    },
    /// Intersection of sub-plans (AND).
    Intersect(Vec<Plan>),
    /// Union of sub-plans (OR).
    Union(Vec<Plan>),
}

impl Plan {
    /// Number of index/scan operators — a quick plan-complexity metric.
    pub fn operator_count(&self) -> usize {
        match self {
            Plan::All | Plan::Empty => 1,
            Plan::CompositeScan { .. } | Plan::IndexPredicate(_) => 1,
            Plan::ScanFilter { input, .. } => 1 + input.operator_count(),
            Plan::Intersect(ps) | Plan::Union(ps) => {
                1 + ps.iter().map(Plan::operator_count).sum::<usize>()
            }
        }
    }

    /// Whether the plan contains a composite-index scan.
    pub fn uses_composite(&self) -> bool {
        match self {
            Plan::CompositeScan { .. } => true,
            Plan::ScanFilter { input, .. } => input.uses_composite(),
            Plan::Intersect(ps) | Plan::Union(ps) => ps.iter().any(Plan::uses_composite),
            _ => false,
        }
    }
}

impl fmt::Display for Plan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn go(p: &Plan, f: &mut fmt::Formatter<'_>, indent: usize) -> fmt::Result {
            let pad = "  ".repeat(indent);
            match p {
                Plan::All => writeln!(f, "{pad}All"),
                Plan::Empty => writeln!(f, "{pad}Empty"),
                Plan::CompositeScan { index, eq, range } => {
                    write!(f, "{pad}CompositeScan {index} eq=[")?;
                    for (i, (c, v)) in eq.iter().enumerate() {
                        if i > 0 {
                            write!(f, ", ")?;
                        }
                        write!(f, "{c}={v}")?;
                    }
                    write!(f, "]")?;
                    if let Some((c, _, _)) = range {
                        write!(f, " range on {c}")?;
                    }
                    writeln!(f)
                }
                Plan::IndexPredicate(e) => writeln!(f, "{pad}IndexSearch {e:?}"),
                Plan::ScanFilter { input, predicates } => {
                    writeln!(f, "{pad}ScanFilter {} predicate(s)", predicates.len())?;
                    go(input, f, indent + 1)
                }
                Plan::Intersect(ps) => {
                    writeln!(f, "{pad}Intersect")?;
                    for p in ps {
                        go(p, f, indent + 1)?;
                    }
                    Ok(())
                }
                Plan::Union(ps) => {
                    writeln!(f, "{pad}Union")?;
                    for p in ps {
                        go(p, f, indent + 1)?;
                    }
                    Ok(())
                }
            }
        }
        go(self, f, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operator_count_and_display() {
        let p = Plan::ScanFilter {
            input: Box::new(Plan::Intersect(vec![
                Plan::CompositeScan {
                    index: "tenant_id_created_time".into(),
                    eq: vec![("tenant_id".into(), FieldValue::Int(1))],
                    range: None,
                },
                Plan::IndexPredicate(Expr::Eq("group".into(), FieldValue::Int(666))),
            ])),
            predicates: vec![Expr::Eq("status".into(), FieldValue::Int(1))],
        };
        assert_eq!(p.operator_count(), 4);
        assert!(p.uses_composite());
        let s = p.to_string();
        assert!(s.contains("CompositeScan"));
        assert!(s.contains("ScanFilter"));
    }
}
