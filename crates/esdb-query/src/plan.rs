//! Physical query plans (paper §5.1, Fig. 7/8) and their canonical
//! fingerprints.
//!
//! Fingerprints drive the skew-aware query cache: ESDB's hot tenants run
//! the same filter shapes against the same immutable segments thousands of
//! times per refresh interval, so `(segment, plan-fingerprint)` is a
//! natural cache key. A fingerprint is a [`stable_hash128`] of a
//! *normalized* byte encoding of the plan — commutative operators
//! (`Intersect`/`Union`, `AND`/`OR`, `IN` lists) encode their children in
//! sorted, deduplicated order so equivalent plans that differ only in
//! operand order share cache entries. The encoding is exact about value
//! types (`Int(1)` never aliases `Bool(true)`): equal fingerprints must
//! imply equal results on *every* segment, including scan fallbacks whose
//! comparison semantics are type-sensitive.

use crate::ast::{Bound, Expr, Query};
use esdb_common::hash::stable_hash128;
use esdb_doc::FieldValue;
use std::fmt;

/// A physical access plan producing a posting list per segment.
#[derive(Debug, Clone, PartialEq)]
pub enum Plan {
    /// All live documents.
    All,
    /// No documents (contradictory filter).
    Empty,
    /// Composite-index scan: equality prefix plus an optional range on the
    /// next column (Fig. 8's `tenant_id_created_time` scan).
    CompositeScan {
        /// Index name.
        index: String,
        /// Leading equality columns and their values, in index order.
        eq: Vec<(String, FieldValue)>,
        /// Optional range on the column right after the equality prefix.
        range: Option<(String, Bound, Bound)>,
    },
    /// A single predicate resolved through its own index (falling back to
    /// a scan when the segment has no suitable index).
    IndexPredicate(Expr),
    /// Sequential scan (§5.1): filter the input posting list through
    /// doc-values/stored-field predicates.
    ScanFilter {
        /// Producer of the candidate list.
        input: Box<Plan>,
        /// Predicates applied by scanning.
        predicates: Vec<Expr>,
    },
    /// Intersection of sub-plans (AND).
    Intersect(Vec<Plan>),
    /// Union of sub-plans (OR).
    Union(Vec<Plan>),
}

impl Plan {
    /// Number of index/scan operators — a quick plan-complexity metric.
    pub fn operator_count(&self) -> usize {
        match self {
            Plan::All | Plan::Empty => 1,
            Plan::CompositeScan { .. } | Plan::IndexPredicate(_) => 1,
            Plan::ScanFilter { input, .. } => 1 + input.operator_count(),
            Plan::Intersect(ps) | Plan::Union(ps) => {
                1 + ps.iter().map(Plan::operator_count).sum::<usize>()
            }
        }
    }

    /// Whether the plan contains a composite-index scan.
    pub fn uses_composite(&self) -> bool {
        match self {
            Plan::CompositeScan { .. } => true,
            Plan::ScanFilter { input, .. } => input.uses_composite(),
            Plan::Intersect(ps) | Plan::Union(ps) => ps.iter().any(Plan::uses_composite),
            _ => false,
        }
    }

    /// Whether per-segment results of this plan may be cached.
    ///
    /// Cacheable: composite scans, single-index predicates, and
    /// intersections/unions built purely from cacheable children. Never
    /// cacheable: `ScanFilter` residuals (their cost is in the scan, and
    /// caching them would pin large intermediate lists for little reuse)
    /// and the trivial `All`/`Empty` plans (nothing to save).
    pub fn cacheable(&self) -> bool {
        match self {
            Plan::CompositeScan { .. } | Plan::IndexPredicate(_) => true,
            Plan::Intersect(ps) | Plan::Union(ps) => {
                !ps.is_empty() && ps.iter().all(Plan::cacheable)
            }
            Plan::All | Plan::Empty | Plan::ScanFilter { .. } => false,
        }
    }

    /// Canonical byte encoding (normalized: commutative children sorted
    /// and deduplicated). Two plans with equal encodings produce equal
    /// result sets on every segment.
    fn encode_canonical(&self, out: &mut Vec<u8>) {
        match self {
            Plan::All => out.push(1),
            Plan::Empty => out.push(2),
            Plan::CompositeScan { index, eq, range } => {
                out.push(3);
                encode_str(index, out);
                // Equality order is the index's column order — semantic,
                // not commutative — so it is preserved.
                out.extend_from_slice(&(eq.len() as u32).to_be_bytes());
                for (col, v) in eq {
                    encode_str(col, out);
                    encode_value(v, out);
                }
                match range {
                    None => out.push(0),
                    Some((col, lo, hi)) => {
                        out.push(1);
                        encode_str(col, out);
                        encode_bound(lo, out);
                        encode_bound(hi, out);
                    }
                }
            }
            Plan::IndexPredicate(e) => {
                out.push(4);
                encode_expr(e, out);
            }
            Plan::ScanFilter { input, predicates } => {
                out.push(5);
                input.encode_canonical(out);
                // Application order changes work counters, not results,
                // but ScanFilter is never cached — keep it exact anyway.
                out.extend_from_slice(&(predicates.len() as u32).to_be_bytes());
                for p in predicates {
                    encode_expr(p, out);
                }
            }
            Plan::Intersect(ps) => {
                out.push(6);
                encode_sorted(ps.iter().map(|p| to_bytes(|b| p.encode_canonical(b))), out);
            }
            Plan::Union(ps) => {
                out.push(7);
                encode_sorted(ps.iter().map(|p| to_bytes(|b| p.encode_canonical(b))), out);
            }
        }
    }

    /// The plan's canonical 128-bit fingerprint.
    pub fn fingerprint(&self) -> u128 {
        let mut buf = Vec::with_capacity(128);
        self.encode_canonical(&mut buf);
        stable_hash128(&buf)
    }
}

/// Fingerprint of a whole shard-level request: the access plan plus every
/// query clause that shapes the returned rows (ORDER BY, LIMIT,
/// projection). Keys the tier-2 request cache.
pub fn query_fingerprint(plan: &Plan, query: &Query) -> u128 {
    let mut buf = Vec::with_capacity(192);
    plan.encode_canonical(&mut buf);
    match &query.order_by {
        None => buf.push(0),
        Some(ob) => {
            buf.push(if ob.descending { 2 } else { 1 });
            encode_str(&ob.column, &mut buf);
        }
    }
    match query.limit {
        None => buf.push(0),
        Some(n) => {
            buf.push(1);
            buf.extend_from_slice(&(n as u64).to_be_bytes());
        }
    }
    buf.extend_from_slice(&(query.projection.len() as u32).to_be_bytes());
    for col in &query.projection {
        encode_str(col, &mut buf);
    }
    buf.extend_from_slice(&(query.aggregates.len() as u32).to_be_bytes());
    for agg in &query.aggregates {
        use crate::aggregate::AggFunc;
        let (tag, col) = match agg {
            AggFunc::Count => (1u8, None),
            AggFunc::CountField(c) => (2, Some(c)),
            AggFunc::Sum(c) => (3, Some(c)),
            AggFunc::Avg(c) => (4, Some(c)),
            AggFunc::Min(c) => (5, Some(c)),
            AggFunc::Max(c) => (6, Some(c)),
        };
        buf.push(tag);
        if let Some(c) = col {
            encode_str(c, &mut buf);
        }
    }
    match &query.group_by {
        None => buf.push(0),
        Some(c) => {
            buf.push(1);
            encode_str(c, &mut buf);
        }
    }
    stable_hash128(&buf)
}

/// Runs `f` into a fresh buffer (used to sort commutative children by
/// their encodings).
fn to_bytes(f: impl FnOnce(&mut Vec<u8>)) -> Vec<u8> {
    let mut b = Vec::new();
    f(&mut b);
    b
}

/// Encodes a set of child encodings sorted and deduplicated — `A ∩ A = A`
/// and `A ∪ A = A`, so duplicates never change a commutative node's
/// result.
fn encode_sorted(children: impl Iterator<Item = Vec<u8>>, out: &mut Vec<u8>) {
    let mut enc: Vec<Vec<u8>> = children.collect();
    enc.sort_unstable();
    enc.dedup();
    out.extend_from_slice(&(enc.len() as u32).to_be_bytes());
    for e in enc {
        out.extend_from_slice(&(e.len() as u32).to_be_bytes());
        out.extend_from_slice(&e);
    }
}

fn encode_str(s: &str, out: &mut Vec<u8>) {
    out.extend_from_slice(&(s.len() as u32).to_be_bytes());
    out.extend_from_slice(s.as_bytes());
}

/// Exact type-tagged value encoding. `Int(5)` and `Timestamp(5)` compare
/// equal in query semantics *most* of the time, but not against `Float`
/// doc values (`cmp_values` declares Float/Timestamp incomparable), so
/// coercion is left to the optimizer and the encoding stays exact.
fn encode_value(v: &FieldValue, out: &mut Vec<u8>) {
    match v {
        FieldValue::Null => out.push(0),
        FieldValue::Bool(b) => {
            out.push(1);
            out.push(*b as u8);
        }
        FieldValue::Int(i) => {
            out.push(2);
            out.extend_from_slice(&i.to_be_bytes());
        }
        FieldValue::Float(x) => {
            out.push(3);
            out.extend_from_slice(&x.to_bits().to_be_bytes());
        }
        FieldValue::Timestamp(t) => {
            out.push(4);
            out.extend_from_slice(&t.to_be_bytes());
        }
        FieldValue::Str(s) => {
            out.push(5);
            encode_str(s, out);
        }
    }
}

fn encode_bound(b: &Bound, out: &mut Vec<u8>) {
    match b {
        Bound::Unbounded => out.push(0),
        Bound::Included(v) => {
            out.push(1);
            encode_value(v, out);
        }
        Bound::Excluded(v) => {
            out.push(2);
            encode_value(v, out);
        }
    }
}

fn encode_expr(e: &Expr, out: &mut Vec<u8>) {
    match e {
        Expr::Eq(col, v) => {
            out.push(1);
            encode_str(col, out);
            encode_value(v, out);
        }
        Expr::Ne(col, v) => {
            out.push(2);
            encode_str(col, out);
            encode_value(v, out);
        }
        Expr::In(col, vs) => {
            out.push(3);
            encode_str(col, out);
            // IN-list union is commutative and idempotent.
            encode_sorted(vs.iter().map(|v| to_bytes(|b| encode_value(v, b))), out);
        }
        Expr::Range(col, lo, hi) => {
            out.push(4);
            encode_str(col, out);
            encode_bound(lo, out);
            encode_bound(hi, out);
        }
        Expr::Match(col, text) => {
            out.push(5);
            encode_str(col, out);
            encode_str(text, out);
        }
        Expr::AttrEq(name, value) => {
            out.push(6);
            encode_str(name, out);
            encode_str(value, out);
        }
        Expr::And(cs) => {
            out.push(7);
            encode_sorted(cs.iter().map(|c| to_bytes(|b| encode_expr(c, b))), out);
        }
        Expr::Or(cs) => {
            out.push(8);
            encode_sorted(cs.iter().map(|c| to_bytes(|b| encode_expr(c, b))), out);
        }
        Expr::True => out.push(9),
    }
}

impl fmt::Display for Plan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn go(p: &Plan, f: &mut fmt::Formatter<'_>, indent: usize) -> fmt::Result {
            let pad = "  ".repeat(indent);
            match p {
                Plan::All => writeln!(f, "{pad}All"),
                Plan::Empty => writeln!(f, "{pad}Empty"),
                Plan::CompositeScan { index, eq, range } => {
                    write!(f, "{pad}CompositeScan {index} eq=[")?;
                    for (i, (c, v)) in eq.iter().enumerate() {
                        if i > 0 {
                            write!(f, ", ")?;
                        }
                        write!(f, "{c}={v}")?;
                    }
                    write!(f, "]")?;
                    if let Some((c, _, _)) = range {
                        write!(f, " range on {c}")?;
                    }
                    writeln!(f)
                }
                Plan::IndexPredicate(e) => writeln!(f, "{pad}IndexSearch {e:?}"),
                Plan::ScanFilter { input, predicates } => {
                    writeln!(f, "{pad}ScanFilter {} predicate(s)", predicates.len())?;
                    go(input, f, indent + 1)
                }
                Plan::Intersect(ps) => {
                    writeln!(f, "{pad}Intersect")?;
                    for p in ps {
                        go(p, f, indent + 1)?;
                    }
                    Ok(())
                }
                Plan::Union(ps) => {
                    writeln!(f, "{pad}Union")?;
                    for p in ps {
                        go(p, f, indent + 1)?;
                    }
                    Ok(())
                }
            }
        }
        go(self, f, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operator_count_and_display() {
        let p = Plan::ScanFilter {
            input: Box::new(Plan::Intersect(vec![
                Plan::CompositeScan {
                    index: "tenant_id_created_time".into(),
                    eq: vec![("tenant_id".into(), FieldValue::Int(1))],
                    range: None,
                },
                Plan::IndexPredicate(Expr::Eq("group".into(), FieldValue::Int(666))),
            ])),
            predicates: vec![Expr::Eq("status".into(), FieldValue::Int(1))],
        };
        assert_eq!(p.operator_count(), 4);
        assert!(p.uses_composite());
        let s = p.to_string();
        assert!(s.contains("CompositeScan"));
        assert!(s.contains("ScanFilter"));
    }

    fn eq(col: &str, v: i64) -> Plan {
        Plan::IndexPredicate(Expr::Eq(col.into(), FieldValue::Int(v)))
    }

    #[test]
    fn cacheable_classification() {
        assert!(eq("a", 1).cacheable());
        assert!(Plan::CompositeScan {
            index: "i".into(),
            eq: vec![],
            range: None
        }
        .cacheable());
        assert!(Plan::Intersect(vec![eq("a", 1), eq("b", 2)]).cacheable());
        assert!(Plan::Union(vec![eq("a", 1), eq("b", 2)]).cacheable());
        assert!(!Plan::All.cacheable());
        assert!(!Plan::Empty.cacheable());
        assert!(!Plan::ScanFilter {
            input: Box::new(eq("a", 1)),
            predicates: vec![Expr::Eq("s".into(), FieldValue::Int(0))],
        }
        .cacheable());
        // A residual anywhere poisons the subtree.
        assert!(!Plan::Intersect(vec![
            eq("a", 1),
            Plan::ScanFilter {
                input: Box::new(eq("b", 2)),
                predicates: vec![],
            }
        ])
        .cacheable());
    }

    #[test]
    fn fingerprint_normalizes_commutative_order() {
        let ab = Plan::Intersect(vec![eq("a", 1), eq("b", 2)]);
        let ba = Plan::Intersect(vec![eq("b", 2), eq("a", 1)]);
        assert_eq!(ab.fingerprint(), ba.fingerprint());
        let dup = Plan::Intersect(vec![eq("a", 1), eq("a", 1), eq("b", 2)]);
        assert_eq!(ab.fingerprint(), dup.fingerprint(), "A ∩ A = A");

        let u1 = Plan::Union(vec![eq("a", 1), eq("b", 2)]);
        assert_ne!(
            ab.fingerprint(),
            u1.fingerprint(),
            "intersect and union must not alias"
        );

        let in1 = Plan::IndexPredicate(Expr::In(
            "g".into(),
            vec![FieldValue::Int(1), FieldValue::Int(2)],
        ));
        let in2 = Plan::IndexPredicate(Expr::In(
            "g".into(),
            vec![FieldValue::Int(2), FieldValue::Int(1), FieldValue::Int(2)],
        ));
        assert_eq!(
            in1.fingerprint(),
            in2.fingerprint(),
            "IN order/dups ignored"
        );
    }

    #[test]
    fn fingerprint_is_type_exact() {
        let int1 = eq("c", 1);
        let bool1 = Plan::IndexPredicate(Expr::Eq("c".into(), FieldValue::Bool(true)));
        let ts1 = Plan::IndexPredicate(Expr::Eq("c".into(), FieldValue::Timestamp(1)));
        let f1 = Plan::IndexPredicate(Expr::Eq("c".into(), FieldValue::Float(1.0)));
        let fps = [
            int1.fingerprint(),
            bool1.fingerprint(),
            ts1.fingerprint(),
            f1.fingerprint(),
        ];
        for i in 0..fps.len() {
            for j in (i + 1)..fps.len() {
                assert_ne!(fps[i], fps[j], "value types {i} and {j} alias");
            }
        }
    }

    #[test]
    fn fingerprint_distinguishes_columns_and_values() {
        assert_ne!(eq("a", 1).fingerprint(), eq("a", 2).fingerprint());
        assert_ne!(eq("a", 1).fingerprint(), eq("b", 1).fingerprint());
        assert_ne!(
            eq("a", 1).fingerprint(),
            Plan::IndexPredicate(Expr::Ne("a".into(), FieldValue::Int(1))).fingerprint()
        );
    }

    #[test]
    fn query_fingerprint_covers_order_and_limit() {
        use crate::ast::OrderBy;
        let plan = eq("a", 1);
        let q = |order: Option<OrderBy>, limit: Option<usize>| Query {
            table: "t".into(),
            projection: vec![],
            aggregates: vec![],
            group_by: None,
            filter: Expr::True,
            order_by: order,
            limit,
        };
        let base = query_fingerprint(&plan, &q(None, None));
        assert_ne!(base, query_fingerprint(&plan, &q(None, Some(10))));
        assert_ne!(
            base,
            query_fingerprint(
                &plan,
                &q(
                    Some(OrderBy {
                        column: "t".into(),
                        descending: false
                    }),
                    None
                )
            )
        );
        assert_ne!(
            query_fingerprint(
                &plan,
                &q(
                    Some(OrderBy {
                        column: "t".into(),
                        descending: false
                    }),
                    None
                )
            ),
            query_fingerprint(
                &plan,
                &q(
                    Some(OrderBy {
                        column: "t".into(),
                        descending: true
                    }),
                    None
                )
            ),
            "sort direction must be part of the key"
        );
        assert_eq!(base, query_fingerprint(&plan, &q(None, None)), "stable");
    }
}
