//! A SQL subset parser — the front half of Xdriver4ES (§3.1).
//!
//! Supported grammar (case-insensitive keywords):
//!
//! ```text
//! SELECT (* | col, ... | agg, ...) FROM table
//!   [WHERE expr]
//!   [GROUP BY col]
//!   [ORDER BY col [ASC|DESC]]
//!   [LIMIT n]
//!
//! agg       := COUNT(*) | COUNT(col) | SUM(col) | AVG(col)
//!            | MIN(col) | MAX(col)
//!
//! expr      := and_expr (OR and_expr)*
//! and_expr  := primary (AND primary)*
//! primary   := '(' expr ')' | predicate
//! predicate := MATCH(col, 'text')
//!            | ATTR('name') = 'value'        -- also: attributes.name = 'v'
//!            | col (= | != | <> | < | <= | > | >=) literal
//!            | col BETWEEN literal AND literal
//!            | col IN (literal, ...)
//! literal   := integer | float | 'string' | TRUE | FALSE
//! ```
//!
//! String literals that parse as `YYYY-MM-DD[ HH:MM:SS]` become
//! [`FieldValue::Timestamp`]s (the Xdriver4ES type-conversion mapping).

use crate::aggregate::AggFunc;
use crate::ast::{Bound, Expr, OrderBy, Query};
use crate::datetime::parse_datetime;
use esdb_common::{EsdbError, Result};
use esdb_doc::FieldValue;

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Ident(String),
    Number(String),
    Str(String),
    Symbol(String),
}

fn tokenize(input: &str) -> Result<Vec<Token>> {
    let mut tokens = Vec::new();
    let chars: Vec<char> = input.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c.is_whitespace() {
            i += 1;
        } else if c.is_alphabetic() || c == '_' {
            let start = i;
            while i < chars.len()
                && (chars[i].is_alphanumeric() || chars[i] == '_' || chars[i] == '.')
            {
                i += 1;
            }
            tokens.push(Token::Ident(chars[start..i].iter().collect()));
        } else if c.is_ascii_digit() {
            let start = i;
            while i < chars.len() && (chars[i].is_ascii_digit() || chars[i] == '.') {
                i += 1;
            }
            tokens.push(Token::Number(chars[start..i].iter().collect()));
        } else if c == '\'' {
            i += 1;
            let mut s = String::new();
            loop {
                if i >= chars.len() {
                    return Err(EsdbError::Parse("unterminated string literal".into()));
                }
                if chars[i] == '\'' {
                    if i + 1 < chars.len() && chars[i + 1] == '\'' {
                        s.push('\'');
                        i += 2;
                    } else {
                        i += 1;
                        break;
                    }
                } else {
                    s.push(chars[i]);
                    i += 1;
                }
            }
            tokens.push(Token::Str(s));
        } else {
            // Multi-char operators first.
            let two: String = chars[i..(i + 2).min(chars.len())].iter().collect();
            if two == "<=" || two == ">=" || two == "!=" || two == "<>" {
                tokens.push(Token::Symbol(two));
                i += 2;
            } else if "=<>(),*".contains(c) {
                tokens.push(Token::Symbol(c.to_string()));
                i += 1;
            } else {
                return Err(EsdbError::Parse(format!("unexpected character '{c}'")));
            }
        }
    }
    Ok(tokens)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Result<Token> {
        let t = self
            .tokens
            .get(self.pos)
            .cloned()
            .ok_or_else(|| EsdbError::Parse("unexpected end of query".into()))?;
        self.pos += 1;
        Ok(t)
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if let Some(Token::Ident(s)) = self.peek() {
            if s.eq_ignore_ascii_case(kw) {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<()> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(EsdbError::Parse(format!("expected keyword {kw}")))
        }
    }

    fn eat_symbol(&mut self, sym: &str) -> bool {
        if let Some(Token::Symbol(s)) = self.peek() {
            if s == sym {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn expect_symbol(&mut self, sym: &str) -> Result<()> {
        if self.eat_symbol(sym) {
            Ok(())
        } else {
            Err(EsdbError::Parse(format!("expected '{sym}'")))
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.next()? {
            Token::Ident(s) => Ok(s),
            t => Err(EsdbError::Parse(format!("expected identifier, got {t:?}"))),
        }
    }

    fn literal(&mut self) -> Result<FieldValue> {
        match self.next()? {
            Token::Number(n) => {
                if n.contains('.') {
                    let f: f64 = n
                        .parse()
                        .map_err(|_| EsdbError::Parse(format!("bad number {n}")))?;
                    FieldValue::float(f).ok_or_else(|| EsdbError::Parse("NaN literal".into()))
                } else {
                    let i: i64 = n
                        .parse()
                        .map_err(|_| EsdbError::Parse(format!("bad number {n}")))?;
                    Ok(FieldValue::Int(i))
                }
            }
            Token::Str(s) => {
                if let Some(ms) = parse_datetime(&s) {
                    Ok(FieldValue::Timestamp(ms))
                } else {
                    Ok(FieldValue::Str(s))
                }
            }
            Token::Ident(s) if s.eq_ignore_ascii_case("true") => Ok(FieldValue::Bool(true)),
            Token::Ident(s) if s.eq_ignore_ascii_case("false") => Ok(FieldValue::Bool(false)),
            Token::Ident(s) if s.eq_ignore_ascii_case("null") => Ok(FieldValue::Null),
            t => Err(EsdbError::Parse(format!("expected literal, got {t:?}"))),
        }
    }

    /// Parses one aggregate select item if the cursor sits on `FUNC(`;
    /// leaves the cursor untouched otherwise (a plain column may share the
    /// function's name).
    fn agg_item(&mut self) -> Result<Option<AggFunc>> {
        let Some(Token::Ident(name)) = self.peek() else {
            return Ok(None);
        };
        let func = name.to_ascii_uppercase();
        if !matches!(func.as_str(), "COUNT" | "SUM" | "AVG" | "MIN" | "MAX") {
            return Ok(None);
        }
        if !matches!(self.tokens.get(self.pos + 1), Some(Token::Symbol(s)) if s == "(") {
            return Ok(None);
        }
        self.pos += 2; // FUNC (
        let agg = if func == "COUNT" && self.eat_symbol("*") {
            AggFunc::Count
        } else {
            let col = self.ident()?;
            match func.as_str() {
                "COUNT" => AggFunc::CountField(col),
                "SUM" => AggFunc::Sum(col),
                "AVG" => AggFunc::Avg(col),
                "MIN" => AggFunc::Min(col),
                _ => AggFunc::Max(col),
            }
        };
        self.expect_symbol(")")?;
        Ok(Some(agg))
    }

    fn expr(&mut self) -> Result<Expr> {
        let mut terms = vec![self.and_expr()?];
        while self.eat_keyword("OR") {
            terms.push(self.and_expr()?);
        }
        Ok(if terms.len() == 1 {
            terms.pop().expect("one term")
        } else {
            Expr::Or(terms)
        })
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut terms = vec![self.primary()?];
        while self.eat_keyword("AND") {
            terms.push(self.primary()?);
        }
        Ok(if terms.len() == 1 {
            terms.pop().expect("one term")
        } else {
            Expr::And(terms)
        })
    }

    fn primary(&mut self) -> Result<Expr> {
        if self.eat_symbol("(") {
            let e = self.expr()?;
            self.expect_symbol(")")?;
            return Ok(e);
        }
        // MATCH(col, 'text')
        if self.eat_keyword("MATCH") {
            self.expect_symbol("(")?;
            let col = self.ident()?;
            self.expect_symbol(",")?;
            let text = match self.next()? {
                Token::Str(s) => s,
                t => {
                    return Err(EsdbError::Parse(format!(
                        "expected string in MATCH, got {t:?}"
                    )))
                }
            };
            self.expect_symbol(")")?;
            return Ok(Expr::Match(col, text));
        }
        // ATTR('name') = 'value'
        if self.eat_keyword("ATTR") {
            self.expect_symbol("(")?;
            let name = match self.next()? {
                Token::Str(s) => s,
                t => {
                    return Err(EsdbError::Parse(format!(
                        "expected string in ATTR, got {t:?}"
                    )))
                }
            };
            self.expect_symbol(")")?;
            self.expect_symbol("=")?;
            let value = match self.next()? {
                Token::Str(s) => s,
                t => {
                    return Err(EsdbError::Parse(format!(
                        "ATTR value must be a string, got {t:?}"
                    )))
                }
            };
            return Ok(Expr::AttrEq(name, value));
        }
        let col = self.ident()?;
        // attributes.name = 'value' sugar.
        if let Some(attr) = col.strip_prefix("attributes.") {
            self.expect_symbol("=")?;
            let value = match self.next()? {
                Token::Str(s) => s,
                t => {
                    return Err(EsdbError::Parse(format!(
                        "attribute value must be a string, got {t:?}"
                    )))
                }
            };
            return Ok(Expr::AttrEq(attr.to_string(), value));
        }
        if self.eat_keyword("BETWEEN") {
            let lo = self.literal()?;
            self.expect_keyword("AND")?;
            let hi = self.literal()?;
            return Ok(Expr::Range(col, Bound::Included(lo), Bound::Included(hi)));
        }
        if self.eat_keyword("IN") {
            self.expect_symbol("(")?;
            let mut vals = vec![self.literal()?];
            while self.eat_symbol(",") {
                vals.push(self.literal()?);
            }
            self.expect_symbol(")")?;
            return Ok(Expr::In(col, vals));
        }
        let op = match self.next()? {
            Token::Symbol(s) => s,
            t => return Err(EsdbError::Parse(format!("expected operator, got {t:?}"))),
        };
        let lit = self.literal()?;
        Ok(match op.as_str() {
            "=" => Expr::Eq(col, lit),
            "!=" | "<>" => Expr::Ne(col, lit),
            "<" => Expr::Range(col, Bound::Unbounded, Bound::Excluded(lit)),
            "<=" => Expr::Range(col, Bound::Unbounded, Bound::Included(lit)),
            ">" => Expr::Range(col, Bound::Excluded(lit), Bound::Unbounded),
            ">=" => Expr::Range(col, Bound::Included(lit), Bound::Unbounded),
            other => return Err(EsdbError::Parse(format!("unknown operator '{other}'"))),
        })
    }
}

/// Parses a SQL query string into a [`Query`].
///
/// ```
/// use esdb_query::parse_sql;
///
/// let q = parse_sql(
///     "SELECT * FROM transaction_logs \
///      WHERE tenant_id = 10086 AND status = 1 \
///      ORDER BY created_time DESC LIMIT 100",
/// ).unwrap();
/// assert_eq!(q.table, "transaction_logs");
/// assert_eq!(q.limit, Some(100));
/// ```
pub fn parse_sql(input: &str) -> Result<Query> {
    let mut p = Parser {
        tokens: tokenize(input)?,
        pos: 0,
    };
    p.expect_keyword("SELECT")?;
    let mut projection = Vec::new();
    let mut aggregates = Vec::new();
    if !p.eat_symbol("*") {
        loop {
            match p.agg_item()? {
                Some(a) => aggregates.push(a),
                None => projection.push(p.ident()?),
            }
            if !p.eat_symbol(",") {
                break;
            }
        }
        if !aggregates.is_empty() && !projection.is_empty() {
            return Err(EsdbError::Parse(
                "cannot mix aggregates and plain columns in the select list".into(),
            ));
        }
    }
    p.expect_keyword("FROM")?;
    let table = p.ident()?;
    let filter = if p.eat_keyword("WHERE") {
        p.expr()?
    } else {
        Expr::True
    };
    let group_by = if p.eat_keyword("GROUP") {
        p.expect_keyword("BY")?;
        Some(p.ident()?)
    } else {
        None
    };
    if group_by.is_some() && aggregates.is_empty() {
        return Err(EsdbError::Parse(
            "GROUP BY requires an aggregate select list".into(),
        ));
    }
    let order_by = if p.eat_keyword("ORDER") {
        p.expect_keyword("BY")?;
        let column = p.ident()?;
        let descending = if p.eat_keyword("DESC") {
            true
        } else {
            p.eat_keyword("ASC");
            false
        };
        Some(OrderBy { column, descending })
    } else {
        None
    };
    let limit = if p.eat_keyword("LIMIT") {
        match p.next()? {
            Token::Number(n) => Some(
                n.parse::<usize>()
                    .map_err(|_| EsdbError::Parse(format!("bad LIMIT {n}")))?,
            ),
            t => return Err(EsdbError::Parse(format!("expected LIMIT count, got {t:?}"))),
        }
    } else {
        None
    };
    if p.peek().is_some() {
        return Err(EsdbError::Parse(format!(
            "trailing tokens after query: {:?}",
            p.peek()
        )));
    }
    Ok(Query {
        table,
        projection,
        aggregates,
        group_by,
        filter,
        order_by,
        limit,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_example_query() {
        // Figure 6 of the paper (log column renamed to *).
        let q = parse_sql(
            "SELECT * FROM transaction_logs \
             WHERE tenant_id = 10086 \
             AND created_time >= '2021-09-16 00:00:00' \
             AND created_time <= '2021-09-17 00:00:00' \
             AND status = 1 OR group_id = 666",
        )
        .unwrap();
        assert_eq!(q.table, "transaction_logs");
        assert!(q.projection.is_empty());
        // SQL precedence: (A AND B AND C AND D) OR E.
        match &q.filter {
            Expr::Or(branches) => {
                assert_eq!(branches.len(), 2);
                match &branches[0] {
                    Expr::And(cs) => assert_eq!(cs.len(), 4),
                    other => panic!("expected And, got {other:?}"),
                }
                assert_eq!(
                    branches[1],
                    Expr::Eq("group_id".into(), FieldValue::Int(666))
                );
            }
            other => panic!("expected Or at top, got {other:?}"),
        }
    }

    #[test]
    fn datetime_literals_become_timestamps() {
        let q = parse_sql("SELECT * FROM t WHERE created_time >= '2021-09-16 00:00:00'").unwrap();
        match q.filter {
            Expr::Range(_, Bound::Included(FieldValue::Timestamp(ms)), _) => {
                assert_eq!(ms, 1_631_750_400_000);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn between_in_match_attr() {
        let q = parse_sql(
            "SELECT a, b FROM t WHERE x BETWEEN 1 AND 5 AND y IN (1, 2, 3) \
             AND MATCH(title, 'rust book') AND ATTR('size') = 'XL' \
             AND attributes.color = 'red' \
             ORDER BY created_time DESC LIMIT 100",
        )
        .unwrap();
        assert_eq!(q.projection, vec!["a", "b"]);
        assert_eq!(q.limit, Some(100));
        let ob = q.order_by.unwrap();
        assert_eq!(ob.column, "created_time");
        assert!(ob.descending);
        match &q.filter {
            Expr::And(cs) => {
                assert_eq!(cs.len(), 5);
                assert!(
                    matches!(&cs[0], Expr::Range(c, Bound::Included(FieldValue::Int(1)), Bound::Included(FieldValue::Int(5))) if c == "x")
                );
                assert!(matches!(&cs[1], Expr::In(c, v) if c == "y" && v.len() == 3));
                assert!(matches!(&cs[2], Expr::Match(c, t) if c == "title" && t == "rust book"));
                assert!(matches!(&cs[3], Expr::AttrEq(n, v) if n == "size" && v == "XL"));
                assert!(matches!(&cs[4], Expr::AttrEq(n, v) if n == "color" && v == "red"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parentheses_override_precedence() {
        let q = parse_sql("SELECT * FROM t WHERE a = 1 AND (b = 2 OR c = 3)").unwrap();
        match &q.filter {
            Expr::And(cs) => {
                assert!(matches!(&cs[1], Expr::Or(_)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn string_escapes_and_floats() {
        let q = parse_sql("SELECT * FROM t WHERE name = 'O''Reilly' AND price >= 9.5").unwrap();
        match &q.filter {
            Expr::And(cs) => {
                assert_eq!(
                    cs[0],
                    Expr::Eq("name".into(), FieldValue::Str("O'Reilly".into()))
                );
                assert!(
                    matches!(&cs[1], Expr::Range(_, Bound::Included(FieldValue::Float(f)), _) if *f == 9.5)
                );
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_errors_are_reported() {
        for bad in [
            "SELECT",
            "SELECT * FROM",
            "SELECT * FROM t WHERE",
            "SELECT * FROM t WHERE a =",
            "SELECT * FROM t WHERE a = 'unterminated",
            "SELECT * FROM t LIMIT x",
            "SELECT * FROM t WHERE a ~ 1",
            "SELECT * FROM t trailing",
        ] {
            assert!(parse_sql(bad).is_err(), "{bad} should fail");
        }
    }

    #[test]
    fn aggregate_select_list_and_group_by() {
        let q = parse_sql(
            "SELECT COUNT(*), COUNT(amount), SUM(amount), AVG(amount), MIN(amount), MAX(created_time) \
             FROM t WHERE tenant_id = 10086 GROUP BY status",
        )
        .unwrap();
        assert!(q.is_aggregate());
        assert!(q.projection.is_empty());
        assert_eq!(q.group_by.as_deref(), Some("status"));
        assert_eq!(
            q.aggregates,
            vec![
                AggFunc::Count,
                AggFunc::CountField("amount".into()),
                AggFunc::Sum("amount".into()),
                AggFunc::Avg("amount".into()),
                AggFunc::Min("amount".into()),
                AggFunc::Max("created_time".into()),
            ]
        );
    }

    #[test]
    fn aggregate_without_group_by_and_column_named_like_func() {
        let q = parse_sql("SELECT COUNT(*) FROM t WHERE status = 1").unwrap();
        assert_eq!(q.aggregates, vec![AggFunc::Count]);
        assert!(q.group_by.is_none());
        // `min` without parens is a plain projected column.
        let q = parse_sql("SELECT min, max FROM t").unwrap();
        assert!(q.aggregates.is_empty());
        assert_eq!(q.projection, vec!["min", "max"]);
    }

    #[test]
    fn bad_aggregate_queries_fail() {
        for bad in [
            "SELECT COUNT(*), status FROM t",
            "SELECT status FROM t GROUP BY status",
            "SELECT * FROM t GROUP BY status",
            "SELECT SUM() FROM t",
            "SELECT SUM(*) FROM t",
            "SELECT COUNT(amount FROM t",
        ] {
            assert!(parse_sql(bad).is_err(), "{bad} should fail");
        }
    }

    #[test]
    fn no_where_is_true_filter() {
        let q = parse_sql("SELECT * FROM t LIMIT 5").unwrap();
        assert_eq!(q.filter, Expr::True);
        assert_eq!(q.limit, Some(5));
    }
}
