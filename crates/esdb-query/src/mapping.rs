//! Xdriver4ES's mapping module (paper §3.1): "converts the query results
//! into a format that a SQL engine understands. For example, we implement
//! in this module built-in functions of SQL, such as data type conversion
//! and IFNULL."
//!
//! [`SqlRow`] renders a result document as SQL-typed cells: timestamps
//! become `YYYY-MM-DD HH:MM:SS` strings, NULLs are explicit, and the
//! `IFNULL`/`DATE_FORMAT` helpers cover the conversions the paper names.

use crate::datetime::format_datetime;
use esdb_doc::{Document, FieldValue};

/// A result row rendered for a SQL client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SqlRow {
    /// `(column, rendered value)` pairs; `None` = SQL NULL.
    pub cells: Vec<(String, Option<String>)>,
}

/// Renders one value the way a SQL driver would print it.
pub fn render_value(v: &FieldValue) -> Option<String> {
    match v {
        FieldValue::Null => None,
        FieldValue::Bool(b) => Some(if *b { "1".into() } else { "0".into() }),
        FieldValue::Int(i) => Some(i.to_string()),
        FieldValue::Float(x) => Some(format!("{x}")),
        FieldValue::Timestamp(t) => Some(format_datetime(*t)),
        FieldValue::Str(s) => Some(s.clone()),
    }
}

/// `IFNULL(value, fallback)` — SQL's null-coalescing builtin.
pub fn ifnull(v: Option<&FieldValue>, fallback: &FieldValue) -> FieldValue {
    match v {
        None | Some(FieldValue::Null) => fallback.clone(),
        Some(other) => other.clone(),
    }
}

/// `DATE_FORMAT(ts, pattern)` with the MySQL specifiers the transaction-log
/// tooling uses: `%Y %m %d %H %i %s`.
pub fn date_format(ts_ms: u64, pattern: &str) -> String {
    let full = format_datetime(ts_ms); // "YYYY-MM-DD HH:MM:SS"
    let (date, time) = full.split_at(10);
    let time = &time[1..];
    let mut out = String::with_capacity(pattern.len());
    let mut chars = pattern.chars();
    while let Some(c) = chars.next() {
        if c != '%' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('Y') => out.push_str(&date[0..4]),
            Some('m') => out.push_str(&date[5..7]),
            Some('d') => out.push_str(&date[8..10]),
            Some('H') => out.push_str(&time[0..2]),
            Some('i') => out.push_str(&time[3..5]),
            Some('s') => out.push_str(&time[6..8]),
            Some('%') => out.push('%'),
            Some(other) => {
                out.push('%');
                out.push(other);
            }
            None => out.push('%'),
        }
    }
    out
}

/// Renders a document under a projection (empty projection = all
/// structured fields plus the routing columns, in a stable order).
pub fn to_sql_row(doc: &Document, projection: &[String]) -> SqlRow {
    let mut cells = Vec::new();
    if projection.is_empty() {
        cells.push((
            "tenant_id".to_string(),
            Some(doc.tenant_id.raw().to_string()),
        ));
        cells.push((
            "record_id".to_string(),
            Some(doc.record_id.raw().to_string()),
        ));
        cells.push((
            "created_time".to_string(),
            Some(format_datetime(doc.created_at)),
        ));
        for (name, value) in doc.fields() {
            cells.push((name.to_string(), render_value(value)));
        }
    } else {
        for col in projection {
            let rendered = doc.get(col).as_ref().and_then(render_value);
            cells.push((col.clone(), rendered));
        }
    }
    SqlRow { cells }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esdb_common::{RecordId, TenantId};

    fn doc() -> Document {
        Document::builder(TenantId(7), RecordId(9), 1_631_750_400_000)
            .field("status", 1i64)
            .field("amount", FieldValue::Float(9.5))
            .field("note", FieldValue::Null)
            .field("title", "rust book")
            .build()
    }

    #[test]
    fn full_row_rendering() {
        let row = to_sql_row(&doc(), &[]);
        let get = |name: &str| {
            row.cells
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| v.clone())
                .expect("column present")
        };
        assert_eq!(get("tenant_id"), Some("7".into()));
        assert_eq!(get("created_time"), Some("2021-09-16 00:00:00".into()));
        assert_eq!(get("status"), Some("1".into()));
        assert_eq!(get("amount"), Some("9.5".into()));
        assert_eq!(get("note"), None, "NULL stays NULL");
    }

    #[test]
    fn projection_selects_and_orders() {
        let row = to_sql_row(&doc(), &["title".into(), "missing".into()]);
        assert_eq!(row.cells.len(), 2);
        assert_eq!(row.cells[0], ("title".into(), Some("rust book".into())));
        assert_eq!(row.cells[1], ("missing".into(), None));
    }

    #[test]
    fn ifnull_semantics() {
        let fb = FieldValue::Int(0);
        assert_eq!(ifnull(None, &fb), FieldValue::Int(0));
        assert_eq!(ifnull(Some(&FieldValue::Null), &fb), FieldValue::Int(0));
        assert_eq!(ifnull(Some(&FieldValue::Int(5)), &fb), FieldValue::Int(5));
    }

    #[test]
    fn date_format_specifiers() {
        let ts = 1_631_793_045_000; // 2021-09-16 11:50:45
        assert_eq!(date_format(ts, "%Y-%m-%d"), "2021-09-16");
        assert_eq!(date_format(ts, "%H:%i:%s"), "11:50:45");
        assert_eq!(date_format(ts, "day %d of %m, %Y"), "day 16 of 09, 2021");
        assert_eq!(date_format(ts, "100%%"), "100%");
        assert_eq!(
            date_format(ts, "%q"),
            "%q",
            "unknown specifiers pass through"
        );
    }

    #[test]
    fn bool_and_float_rendering() {
        assert_eq!(render_value(&FieldValue::Bool(true)), Some("1".into()));
        assert_eq!(render_value(&FieldValue::Bool(false)), Some("0".into()));
        assert_eq!(render_value(&FieldValue::Float(2.0)), Some("2".into()));
    }
}
