//! The coordinator-side query result aggregator (paper §3.2: coordinators
//! "contain a query result aggregator that is in charge of row ID
//! collection and perform aggregation operations (e.g. global sort, sum,
//! avg)").
//!
//! Subquery results from the shards of a tenant's span are merged here:
//! global ORDER BY + LIMIT via k-way merge, plus COUNT/SUM/AVG/MIN/MAX.

use crate::ast::{cmp_values, OrderBy};
use crate::executor::QueryRows;
use esdb_doc::{Document, FieldValue};
use esdb_index::BlockStats;
use std::cmp::Ordering;
use std::collections::BTreeMap;

/// Merges per-shard result sets into the final rows, applying a global
/// sort and limit. Work counters are summed.
pub fn merge_results(
    shard_results: Vec<QueryRows>,
    order_by: Option<&OrderBy>,
    limit: Option<usize>,
) -> QueryRows {
    let mut postings = 0u64;
    let mut scanned = 0u64;
    let mut blocks = BlockStats::default();
    let mut prune_ns = 0u64;
    let mut docs: Vec<Document> = Vec::new();
    for r in shard_results {
        postings += r.postings_scanned;
        scanned += r.docs_scanned;
        blocks.merge(&r.blocks);
        prune_ns += r.block_prune_ns;
        docs.extend(r.docs);
    }
    if let Some(ob) = order_by {
        docs.sort_by(|a, b| doc_cmp(a, b, ob));
    }
    if let Some(l) = limit {
        docs.truncate(l);
    }
    QueryRows {
        docs,
        postings_scanned: postings,
        docs_scanned: scanned,
        blocks,
        block_prune_ns: prune_ns,
    }
}

fn doc_cmp(a: &Document, b: &Document, ob: &OrderBy) -> Ordering {
    let va = a.get(&ob.column);
    let vb = b.get(&ob.column);
    let ord = match (va, vb) {
        (Some(x), Some(y)) => cmp_values(&x, &y).unwrap_or(Ordering::Equal),
        (Some(_), None) => Ordering::Greater,
        (None, Some(_)) => Ordering::Less,
        (None, None) => Ordering::Equal,
    };
    if ob.descending {
        ord.reverse()
    } else {
        ord
    }
}

/// Aggregate functions supported by the aggregator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AggFunc {
    /// `COUNT(*)`.
    Count,
    /// `COUNT(col)` — rows where `col` is present.
    CountField(String),
    /// `SUM(col)`.
    Sum(String),
    /// `AVG(col)`.
    Avg(String),
    /// `MIN(col)`.
    Min(String),
    /// `MAX(col)`.
    Max(String),
}

impl AggFunc {
    /// The column the function reads, if any.
    pub fn column(&self) -> Option<&str> {
        match self {
            AggFunc::Count => None,
            AggFunc::CountField(c)
            | AggFunc::Sum(c)
            | AggFunc::Avg(c)
            | AggFunc::Min(c)
            | AggFunc::Max(c) => Some(c),
        }
    }
}

fn numeric(v: &FieldValue) -> Option<f64> {
    match v {
        FieldValue::Int(i) => Some(*i as f64),
        FieldValue::Float(f) => Some(*f),
        FieldValue::Timestamp(t) => Some(*t as f64),
        _ => None,
    }
}

/// Computes an aggregate over merged rows. Non-numeric / missing values are
/// skipped for SUM/AVG (SQL NULL semantics).
pub fn aggregate(rows: &[Document], func: &AggFunc) -> FieldValue {
    match func {
        AggFunc::Count => FieldValue::Int(rows.len() as i64),
        AggFunc::CountField(col) => {
            FieldValue::Int(rows.iter().filter(|d| d.get(col).is_some()).count() as i64)
        }
        AggFunc::Sum(col) => {
            let s: f64 = rows
                .iter()
                .filter_map(|d| d.get(col))
                .filter_map(|v| numeric(&v))
                .sum();
            FieldValue::Float(s)
        }
        AggFunc::Avg(col) => {
            let vals: Vec<f64> = rows
                .iter()
                .filter_map(|d| d.get(col))
                .filter_map(|v| numeric(&v))
                .collect();
            if vals.is_empty() {
                FieldValue::Null
            } else {
                FieldValue::Float(vals.iter().sum::<f64>() / vals.len() as f64)
            }
        }
        AggFunc::Min(col) => rows
            .iter()
            .filter_map(|d| d.get(col))
            .min_by(|a, b| cmp_values(a, b).unwrap_or(Ordering::Equal))
            .unwrap_or(FieldValue::Null),
        AggFunc::Max(col) => rows
            .iter()
            .filter_map(|d| d.get(col))
            .max_by(|a, b| cmp_values(a, b).unwrap_or(Ordering::Equal))
            .unwrap_or(FieldValue::Null),
    }
}

/// A mergeable partial state for one aggregate function — what the block
/// execution path accumulates per segment straight from columnar doc
/// values, and what shards ship to the coordinator so AVG merges without
/// loss.
#[derive(Debug, Clone, PartialEq)]
pub enum AggPartial {
    /// Row / present-value counter (COUNT and COUNT(col)).
    Count(u64),
    /// Running sum of numeric values.
    Sum(f64),
    /// Running sum + count of numeric values.
    Avg {
        /// Sum of numeric values seen.
        sum: f64,
        /// Number of numeric values seen.
        count: u64,
    },
    /// Current minimum (first wins on ties/incomparables, like
    /// `Iterator::min_by`).
    Min(Option<FieldValue>),
    /// Current maximum (last wins on ties/incomparables, like
    /// `Iterator::max_by`).
    Max(Option<FieldValue>),
}

impl AggPartial {
    /// The empty partial for `func`.
    pub fn new(func: &AggFunc) -> AggPartial {
        match func {
            AggFunc::Count | AggFunc::CountField(_) => AggPartial::Count(0),
            AggFunc::Sum(_) => AggPartial::Sum(0.0),
            AggFunc::Avg(_) => AggPartial::Avg { sum: 0.0, count: 0 },
            AggFunc::Min(_) => AggPartial::Min(None),
            AggFunc::Max(_) => AggPartial::Max(None),
        }
    }

    /// Folds one row's column value into the partial (`None` = column
    /// missing on that row). For `AggFunc::Count` the value is ignored and
    /// every row counts.
    pub fn accumulate(&mut self, func: &AggFunc, v: Option<FieldValue>) {
        match self {
            AggPartial::Count(c) => {
                if matches!(func, AggFunc::Count) || v.is_some() {
                    *c += 1;
                }
            }
            AggPartial::Sum(s) => {
                if let Some(x) = v.as_ref().and_then(numeric) {
                    *s += x;
                }
            }
            AggPartial::Avg { sum, count } => {
                if let Some(x) = v.as_ref().and_then(numeric) {
                    *sum += x;
                    *count += 1;
                }
            }
            AggPartial::Min(m) => {
                if let Some(x) = v {
                    let replace = match m {
                        None => true,
                        Some(cur) => {
                            cmp_values(&x, cur).unwrap_or(Ordering::Equal) == Ordering::Less
                        }
                    };
                    if replace {
                        *m = Some(x);
                    }
                }
            }
            AggPartial::Max(m) => {
                if let Some(x) = v {
                    let replace = match m {
                        None => true,
                        Some(cur) => {
                            cmp_values(&x, cur).unwrap_or(Ordering::Equal) != Ordering::Less
                        }
                    };
                    if replace {
                        *m = Some(x);
                    }
                }
            }
        }
    }

    /// Merges another partial of the same shape into `self`. Callers merge
    /// in segment/shard order, so the tie-breaking rules of
    /// [`accumulate`](AggPartial::accumulate) carry over to the merged
    /// result.
    pub fn merge(&mut self, other: AggPartial) {
        match (self, other) {
            (AggPartial::Count(a), AggPartial::Count(b)) => *a += b,
            (AggPartial::Sum(a), AggPartial::Sum(b)) => *a += b,
            (AggPartial::Avg { sum, count }, AggPartial::Avg { sum: s2, count: c2 }) => {
                *sum += s2;
                *count += c2;
            }
            (AggPartial::Min(a), AggPartial::Min(Some(x))) => {
                let replace = match a {
                    None => true,
                    Some(cur) => cmp_values(&x, cur).unwrap_or(Ordering::Equal) == Ordering::Less,
                };
                if replace {
                    *a = Some(x);
                }
            }
            (AggPartial::Max(a), AggPartial::Max(Some(x))) => {
                let replace = match a {
                    None => true,
                    Some(cur) => cmp_values(&x, cur).unwrap_or(Ordering::Equal) != Ordering::Less,
                };
                if replace {
                    *a = Some(x);
                }
            }
            (AggPartial::Min(_), AggPartial::Min(None))
            | (AggPartial::Max(_), AggPartial::Max(None)) => {}
            (a, b) => debug_assert!(false, "mismatched partials {a:?} / {b:?}"),
        }
    }

    /// Finishes the partial into the final [`FieldValue`], with the exact
    /// semantics of [`aggregate`] (SUM of nothing = 0.0, AVG of nothing =
    /// NULL, MIN/MAX of nothing = NULL).
    pub fn finish(&self) -> FieldValue {
        match self {
            AggPartial::Count(c) => FieldValue::Int(*c as i64),
            AggPartial::Sum(s) => FieldValue::Float(*s),
            AggPartial::Avg { sum, count } => {
                if *count == 0 {
                    FieldValue::Null
                } else {
                    FieldValue::Float(*sum / *count as f64)
                }
            }
            AggPartial::Min(m) | AggPartial::Max(m) => m.clone().unwrap_or(FieldValue::Null),
        }
    }
}

/// One output row of an aggregate query.
#[derive(Debug, Clone, PartialEq)]
pub struct AggRow {
    /// GROUP BY key (`None` when there is no GROUP BY, or for the rows
    /// whose group column is missing — SQL's NULL group).
    pub group: Option<FieldValue>,
    /// One finished value per aggregate, in select-list order.
    pub values: Vec<FieldValue>,
}

/// Finished aggregate result plus the work counters of the execution that
/// produced it.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AggResult {
    /// Aggregate rows, ordered by group key (missing group first).
    pub rows: Vec<AggRow>,
    /// Posting entries materialized while filtering.
    pub postings_scanned: u64,
    /// Documents touched by scan filters.
    pub docs_scanned: u64,
    /// Stored payloads materialized to compute the aggregates. The block
    /// path computes from columnar doc values, so this stays 0 unless a
    /// column has no doc values in some segment.
    pub payload_reads: u64,
    /// Posting-block counters from block-at-a-time set operations.
    pub blocks: BlockStats,
    /// Wall time spent in block set operations (the `block_prune` stage).
    pub block_prune_ns: u64,
}

/// Per-shard aggregate partials: grouped, unfinished, mergeable. Group
/// keys use [`FieldValue`]'s total order so output rows are deterministic.
#[derive(Debug, Clone, Default)]
pub struct AggPartials {
    /// Partial states per group key (`None` key = no GROUP BY / missing
    /// group column).
    pub groups: BTreeMap<Option<FieldValue>, Vec<AggPartial>>,
    /// Posting entries materialized while filtering.
    pub postings_scanned: u64,
    /// Documents touched by scan filters.
    pub docs_scanned: u64,
    /// Stored payloads materialized to compute the aggregates.
    pub payload_reads: u64,
    /// Posting-block counters from block-at-a-time set operations.
    pub blocks: BlockStats,
    /// Wall time spent in block set operations.
    pub block_prune_ns: u64,
}

impl AggPartials {
    /// The partial row for `key`, created from `funcs` on first touch.
    pub fn entry(&mut self, key: Option<FieldValue>, funcs: &[AggFunc]) -> &mut Vec<AggPartial> {
        self.groups
            .entry(key)
            .or_insert_with(|| funcs.iter().map(AggPartial::new).collect())
    }

    /// Merges another shard's partials into `self` (shards are merged in
    /// span order, keeping tie-breaking deterministic).
    pub fn merge(&mut self, other: AggPartials) {
        for (key, parts) in other.groups {
            match self.groups.entry(key) {
                std::collections::btree_map::Entry::Vacant(e) => {
                    e.insert(parts);
                }
                std::collections::btree_map::Entry::Occupied(mut e) => {
                    for (a, b) in e.get_mut().iter_mut().zip(parts) {
                        a.merge(b);
                    }
                }
            }
        }
        self.postings_scanned += other.postings_scanned;
        self.docs_scanned += other.docs_scanned;
        self.payload_reads += other.payload_reads;
        self.blocks.merge(&other.blocks);
        self.block_prune_ns += other.block_prune_ns;
    }

    /// Finishes the partials into the final [`AggResult`]. A query with no
    /// GROUP BY always yields exactly one row, even over zero matches
    /// (COUNT = 0, SUM = 0.0, AVG/MIN/MAX = NULL).
    pub fn finish(mut self, funcs: &[AggFunc], grouped: bool) -> AggResult {
        if !grouped && self.groups.is_empty() {
            self.groups
                .insert(None, funcs.iter().map(AggPartial::new).collect());
        }
        let rows = self
            .groups
            .into_iter()
            .map(|(group, parts)| AggRow {
                group,
                values: parts.iter().map(AggPartial::finish).collect(),
            })
            .collect();
        AggResult {
            rows,
            postings_scanned: self.postings_scanned,
            docs_scanned: self.docs_scanned,
            payload_reads: self.payload_reads,
            blocks: self.blocks,
            block_prune_ns: self.block_prune_ns,
        }
    }
}

/// Reference aggregation over materialized rows — the scalar oracle the
/// block path is gated against. Grouping uses the same total order on
/// group keys as [`AggPartials`], and each group's values come from
/// [`aggregate`]'s reference semantics.
pub fn aggregate_rows(rows: &[Document], funcs: &[AggFunc], group_by: Option<&str>) -> Vec<AggRow> {
    match group_by {
        None => vec![AggRow {
            group: None,
            values: funcs.iter().map(|f| aggregate(rows, f)).collect(),
        }],
        Some(col) => {
            let mut groups: BTreeMap<Option<FieldValue>, Vec<Document>> = BTreeMap::new();
            for d in rows {
                groups.entry(d.get(col)).or_default().push(d.clone());
            }
            groups
                .into_iter()
                .map(|(group, docs)| AggRow {
                    group,
                    values: funcs.iter().map(|f| aggregate(&docs, f)).collect(),
                })
                .collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esdb_common::{RecordId, TenantId};

    fn rows(n: u64, base_time: u64) -> QueryRows {
        QueryRows {
            docs: (0..n)
                .map(|i| {
                    Document::builder(TenantId(1), RecordId(base_time + i), base_time + i)
                        .field("amount", FieldValue::Float((base_time + i) as f64))
                        .build()
                })
                .collect(),
            postings_scanned: n,
            ..QueryRows::default()
        }
    }

    #[test]
    fn global_sort_and_limit() {
        let merged = merge_results(
            vec![rows(5, 100), rows(5, 50), rows(5, 200)],
            Some(&OrderBy {
                column: "created_time".into(),
                descending: true,
            }),
            Some(4),
        );
        let times: Vec<u64> = merged.docs.iter().map(|d| d.created_at).collect();
        assert_eq!(times, vec![204, 203, 202, 201]);
        assert_eq!(merged.postings_scanned, 15, "work counters summed");
    }

    #[test]
    fn merge_without_order_preserves_all() {
        let merged = merge_results(vec![rows(3, 0), rows(2, 10)], None, None);
        assert_eq!(merged.docs.len(), 5);
    }

    #[test]
    fn ascending_order_across_shards() {
        let merged = merge_results(
            vec![rows(4, 300), rows(4, 100), rows(4, 200)],
            Some(&OrderBy {
                column: "created_time".into(),
                descending: false,
            }),
            Some(6),
        );
        let times: Vec<u64> = merged.docs.iter().map(|d| d.created_at).collect();
        assert_eq!(times, vec![100, 101, 102, 103, 200, 201]);
    }

    #[test]
    fn limit_larger_than_result_is_harmless() {
        let merged = merge_results(
            vec![rows(2, 10), rows(2, 20)],
            Some(&OrderBy {
                column: "created_time".into(),
                descending: true,
            }),
            Some(100),
        );
        assert_eq!(merged.docs.len(), 4);
    }

    #[test]
    fn ties_keep_shard_input_order() {
        // Two shards produce rows with the SAME sort key; the stable
        // merge must keep shard-A rows before shard-B rows. The parallel
        // scatter-gather path relies on this: as long as per-shard
        // results are gathered in span order, output is deterministic
        // for any parallelism degree.
        let mk = |shard: u64| QueryRows {
            docs: (0..3)
                .map(|i| {
                    Document::builder(TenantId(1), RecordId(shard * 10 + i), 5_000)
                        .field("status", 1i64)
                        .build()
                })
                .collect(),
            ..QueryRows::default()
        };
        let merged = merge_results(
            vec![mk(1), mk(2)],
            Some(&OrderBy {
                column: "created_time".into(),
                descending: true,
            }),
            None,
        );
        let ids: Vec<u64> = merged.docs.iter().map(|d| d.record_id.raw()).collect();
        assert_eq!(ids, vec![10, 11, 12, 20, 21, 22]);
    }

    #[test]
    fn aggregates() {
        let docs = rows(4, 10).docs; // amounts 10,11,12,13
        assert_eq!(aggregate(&docs, &AggFunc::Count), FieldValue::Int(4));
        assert_eq!(
            aggregate(&docs, &AggFunc::Sum("amount".into())),
            FieldValue::Float(46.0)
        );
        assert_eq!(
            aggregate(&docs, &AggFunc::Avg("amount".into())),
            FieldValue::Float(11.5)
        );
        assert_eq!(
            aggregate(&docs, &AggFunc::Min("amount".into())),
            FieldValue::Float(10.0)
        );
        assert_eq!(
            aggregate(&docs, &AggFunc::Max("amount".into())),
            FieldValue::Float(13.0)
        );
    }

    #[test]
    fn partials_match_reference_aggregation() {
        let docs = rows(7, 10).docs;
        let funcs = vec![
            AggFunc::Count,
            AggFunc::CountField("amount".into()),
            AggFunc::Sum("amount".into()),
            AggFunc::Avg("amount".into()),
            AggFunc::Min("amount".into()),
            AggFunc::Max("created_time".into()),
        ];
        // Accumulate row-at-a-time, split across two "shards", then merge.
        let mut shard_a = AggPartials::default();
        let mut shard_b = AggPartials::default();
        for (i, d) in docs.iter().enumerate() {
            let tgt = if i < 3 { &mut shard_a } else { &mut shard_b };
            let parts = tgt.entry(None, &funcs);
            for (p, f) in parts.iter_mut().zip(&funcs) {
                let v = f.column().and_then(|c| d.get(c));
                p.accumulate(f, v);
            }
        }
        shard_a.merge(shard_b);
        let got = shard_a.finish(&funcs, false);
        assert_eq!(got.rows, aggregate_rows(&docs, &funcs, None));
    }

    #[test]
    fn grouped_partials_match_reference_and_empty_groups_vanish() {
        let docs: Vec<Document> = (0..20u64)
            .map(|i| {
                Document::builder(TenantId(1), RecordId(i), 1_000 + i)
                    .field("g", (i % 3) as i64)
                    .field("v", i as i64)
                    .build()
            })
            .collect();
        let funcs = vec![AggFunc::Count, AggFunc::Sum("v".into())];
        let mut parts = AggPartials::default();
        for d in &docs {
            let key = d.get("g");
            let row = parts.entry(key, &funcs);
            for (p, f) in row.iter_mut().zip(&funcs) {
                p.accumulate(f, f.column().and_then(|c| d.get(c)));
            }
        }
        let got = parts.finish(&funcs, true);
        assert_eq!(got.rows, aggregate_rows(&docs, &funcs, Some("g")));
        assert_eq!(got.rows.len(), 3);
        // Grouped query over zero matches yields zero rows, not one.
        let empty = AggPartials::default().finish(&funcs, true);
        assert!(empty.rows.is_empty());
        // Ungrouped query over zero matches yields the SQL identity row.
        let idrow = AggPartials::default().finish(&funcs, false);
        assert_eq!(
            idrow.rows,
            vec![AggRow {
                group: None,
                values: vec![FieldValue::Int(0), FieldValue::Float(0.0)],
            }]
        );
    }

    #[test]
    fn count_field_skips_missing() {
        let mut docs = rows(3, 10).docs;
        docs.push(Document::builder(TenantId(1), RecordId(99), 99).build());
        assert_eq!(
            aggregate(&docs, &AggFunc::CountField("amount".into())),
            FieldValue::Int(3)
        );
        assert_eq!(aggregate(&docs, &AggFunc::Count), FieldValue::Int(4));
    }

    #[test]
    fn aggregates_over_empty_and_missing() {
        assert_eq!(aggregate(&[], &AggFunc::Count), FieldValue::Int(0));
        assert_eq!(aggregate(&[], &AggFunc::Avg("x".into())), FieldValue::Null);
        let d = vec![Document::builder(TenantId(1), RecordId(1), 1).build()];
        assert_eq!(
            aggregate(&d, &AggFunc::Sum("missing".into())),
            FieldValue::Float(0.0)
        );
        assert_eq!(
            aggregate(&d, &AggFunc::Min("missing".into())),
            FieldValue::Null
        );
    }
}
