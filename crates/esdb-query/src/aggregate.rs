//! The coordinator-side query result aggregator (paper §3.2: coordinators
//! "contain a query result aggregator that is in charge of row ID
//! collection and perform aggregation operations (e.g. global sort, sum,
//! avg)").
//!
//! Subquery results from the shards of a tenant's span are merged here:
//! global ORDER BY + LIMIT via k-way merge, plus COUNT/SUM/AVG/MIN/MAX.

use crate::ast::{cmp_values, OrderBy};
use crate::executor::QueryRows;
use esdb_doc::{Document, FieldValue};
use std::cmp::Ordering;

/// Merges per-shard result sets into the final rows, applying a global
/// sort and limit. Work counters are summed.
pub fn merge_results(
    shard_results: Vec<QueryRows>,
    order_by: Option<&OrderBy>,
    limit: Option<usize>,
) -> QueryRows {
    let mut postings = 0u64;
    let mut scanned = 0u64;
    let mut docs: Vec<Document> = Vec::new();
    for r in shard_results {
        postings += r.postings_scanned;
        scanned += r.docs_scanned;
        docs.extend(r.docs);
    }
    if let Some(ob) = order_by {
        docs.sort_by(|a, b| doc_cmp(a, b, ob));
    }
    if let Some(l) = limit {
        docs.truncate(l);
    }
    QueryRows {
        docs,
        postings_scanned: postings,
        docs_scanned: scanned,
    }
}

fn doc_cmp(a: &Document, b: &Document, ob: &OrderBy) -> Ordering {
    let va = a.get(&ob.column);
    let vb = b.get(&ob.column);
    let ord = match (va, vb) {
        (Some(x), Some(y)) => cmp_values(&x, &y).unwrap_or(Ordering::Equal),
        (Some(_), None) => Ordering::Greater,
        (None, Some(_)) => Ordering::Less,
        (None, None) => Ordering::Equal,
    };
    if ob.descending {
        ord.reverse()
    } else {
        ord
    }
}

/// Aggregate functions supported by the aggregator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AggFunc {
    /// `COUNT(*)`.
    Count,
    /// `SUM(col)`.
    Sum(String),
    /// `AVG(col)`.
    Avg(String),
    /// `MIN(col)`.
    Min(String),
    /// `MAX(col)`.
    Max(String),
}

/// Computes an aggregate over merged rows. Non-numeric / missing values are
/// skipped for SUM/AVG (SQL NULL semantics).
pub fn aggregate(rows: &[Document], func: &AggFunc) -> FieldValue {
    fn numeric(v: &FieldValue) -> Option<f64> {
        match v {
            FieldValue::Int(i) => Some(*i as f64),
            FieldValue::Float(f) => Some(*f),
            FieldValue::Timestamp(t) => Some(*t as f64),
            _ => None,
        }
    }
    match func {
        AggFunc::Count => FieldValue::Int(rows.len() as i64),
        AggFunc::Sum(col) => {
            let s: f64 = rows
                .iter()
                .filter_map(|d| d.get(col))
                .filter_map(|v| numeric(&v))
                .sum();
            FieldValue::Float(s)
        }
        AggFunc::Avg(col) => {
            let vals: Vec<f64> = rows
                .iter()
                .filter_map(|d| d.get(col))
                .filter_map(|v| numeric(&v))
                .collect();
            if vals.is_empty() {
                FieldValue::Null
            } else {
                FieldValue::Float(vals.iter().sum::<f64>() / vals.len() as f64)
            }
        }
        AggFunc::Min(col) => rows
            .iter()
            .filter_map(|d| d.get(col))
            .min_by(|a, b| cmp_values(a, b).unwrap_or(Ordering::Equal))
            .unwrap_or(FieldValue::Null),
        AggFunc::Max(col) => rows
            .iter()
            .filter_map(|d| d.get(col))
            .max_by(|a, b| cmp_values(a, b).unwrap_or(Ordering::Equal))
            .unwrap_or(FieldValue::Null),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esdb_common::{RecordId, TenantId};

    fn rows(n: u64, base_time: u64) -> QueryRows {
        QueryRows {
            docs: (0..n)
                .map(|i| {
                    Document::builder(TenantId(1), RecordId(base_time + i), base_time + i)
                        .field("amount", FieldValue::Float((base_time + i) as f64))
                        .build()
                })
                .collect(),
            postings_scanned: n,
            docs_scanned: 0,
        }
    }

    #[test]
    fn global_sort_and_limit() {
        let merged = merge_results(
            vec![rows(5, 100), rows(5, 50), rows(5, 200)],
            Some(&OrderBy {
                column: "created_time".into(),
                descending: true,
            }),
            Some(4),
        );
        let times: Vec<u64> = merged.docs.iter().map(|d| d.created_at).collect();
        assert_eq!(times, vec![204, 203, 202, 201]);
        assert_eq!(merged.postings_scanned, 15, "work counters summed");
    }

    #[test]
    fn merge_without_order_preserves_all() {
        let merged = merge_results(vec![rows(3, 0), rows(2, 10)], None, None);
        assert_eq!(merged.docs.len(), 5);
    }

    #[test]
    fn ascending_order_across_shards() {
        let merged = merge_results(
            vec![rows(4, 300), rows(4, 100), rows(4, 200)],
            Some(&OrderBy {
                column: "created_time".into(),
                descending: false,
            }),
            Some(6),
        );
        let times: Vec<u64> = merged.docs.iter().map(|d| d.created_at).collect();
        assert_eq!(times, vec![100, 101, 102, 103, 200, 201]);
    }

    #[test]
    fn limit_larger_than_result_is_harmless() {
        let merged = merge_results(
            vec![rows(2, 10), rows(2, 20)],
            Some(&OrderBy {
                column: "created_time".into(),
                descending: true,
            }),
            Some(100),
        );
        assert_eq!(merged.docs.len(), 4);
    }

    #[test]
    fn ties_keep_shard_input_order() {
        // Two shards produce rows with the SAME sort key; the stable
        // merge must keep shard-A rows before shard-B rows. The parallel
        // scatter-gather path relies on this: as long as per-shard
        // results are gathered in span order, output is deterministic
        // for any parallelism degree.
        let mk = |shard: u64| QueryRows {
            docs: (0..3)
                .map(|i| {
                    Document::builder(TenantId(1), RecordId(shard * 10 + i), 5_000)
                        .field("status", 1i64)
                        .build()
                })
                .collect(),
            postings_scanned: 0,
            docs_scanned: 0,
        };
        let merged = merge_results(
            vec![mk(1), mk(2)],
            Some(&OrderBy {
                column: "created_time".into(),
                descending: true,
            }),
            None,
        );
        let ids: Vec<u64> = merged.docs.iter().map(|d| d.record_id.raw()).collect();
        assert_eq!(ids, vec![10, 11, 12, 20, 21, 22]);
    }

    #[test]
    fn aggregates() {
        let docs = rows(4, 10).docs; // amounts 10,11,12,13
        assert_eq!(aggregate(&docs, &AggFunc::Count), FieldValue::Int(4));
        assert_eq!(
            aggregate(&docs, &AggFunc::Sum("amount".into())),
            FieldValue::Float(46.0)
        );
        assert_eq!(
            aggregate(&docs, &AggFunc::Avg("amount".into())),
            FieldValue::Float(11.5)
        );
        assert_eq!(
            aggregate(&docs, &AggFunc::Min("amount".into())),
            FieldValue::Float(10.0)
        );
        assert_eq!(
            aggregate(&docs, &AggFunc::Max("amount".into())),
            FieldValue::Float(13.0)
        );
    }

    #[test]
    fn aggregates_over_empty_and_missing() {
        assert_eq!(aggregate(&[], &AggFunc::Count), FieldValue::Int(0));
        assert_eq!(aggregate(&[], &AggFunc::Avg("x".into())), FieldValue::Null);
        let d = vec![Document::builder(TenantId(1), RecordId(1), 1).build()];
        assert_eq!(
            aggregate(&d, &AggFunc::Sum("missing".into())),
            FieldValue::Float(0.0)
        );
        assert_eq!(
            aggregate(&d, &AggFunc::Min("missing".into())),
            FieldValue::Null
        );
    }
}
