//! ESDB-RS network front-end: a threaded TCP server with multi-tenant
//! admission control and hot-tenant load shedding.
//!
//! The paper's setting is a multi-tenant cloud database facing
//! extremely skewed workloads — a single hot tenant (Singles' Day
//! merchants, §1) can dominate traffic by orders of magnitude. Inside
//! the engine, dynamic secondary hashing spreads that tenant over more
//! shards; at the front door, this crate applies the *same* skew
//! signal to protect every other tenant's latency:
//!
//! * [`auth`] — bearer-token authentication to a tenant identity,
//! * [`confine`] — tenant confinement for wire SQL: non-admin tokens
//!   may only run queries whose filter provably pins `tenant_id` to
//!   their own tenant,
//! * [`admission`] — per-tenant token buckets, in-flight quotas, a
//!   global connection cap, and overload shedding that targets the
//!   hottest tenants first (driven by the engine's
//!   [`esdb_balancer::WorkloadMonitor`], the balancer's
//!   `r = T(k)/ΣT` proportion from Algorithm 1),
//! * [`wire`]/[`json`] — a lossless JSON wire protocol (hand-rolled:
//!   the workspace's serde shim has no real serialization),
//! * [`http`] — minimal resumable HTTP/1.1 framing,
//! * [`transport`] — the listener abstraction ([`TcpTransport`]
//!   today; the trait keeps a future gRPC listener from touching the
//!   engine-facing code),
//! * [`server`] — accept loop, worker threads, dispatch, graceful
//!   drain with a zero-lost-acknowledged-writes guarantee,
//! * [`client`] — a small blocking client for tests, benches, and
//!   examples.
//!
//! ```no_run
//! use esdb_common::TenantId;
//! use esdb_server::{
//!     start, AdmissionConfig, EsdbClient, ServerConfig, TcpTransport, TokenTable, Transport,
//! };
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! # let db: esdb_core::Esdb = unimplemented!();
//! let config = ServerConfig {
//!     tokens: TokenTable::new()
//!         .tenant("tok-7", TenantId(7))
//!         .admin("root", TenantId(0)),
//!     admission: AdmissionConfig::default(),
//! };
//! let transport = TcpTransport::bind("127.0.0.1:0")?;
//! let addr = transport.local_addr();
//! let handle = start(db, config, Box::new(transport));
//!
//! let mut client = EsdbClient::connect(&addr, "tok-7")?;
//! // Non-admin tokens must confine queries to their own tenant_id.
//! let rows = client.query("SELECT * FROM transaction_logs WHERE tenant_id = 7")?;
//! println!("{} rows", rows.docs.len());
//!
//! let (db, report) = handle.shutdown();
//! println!("drained {} refused {}", report.drained, report.refused);
//! # drop(db); Ok(())
//! # }
//! ```

pub mod admission;
pub mod auth;
pub mod client;
pub mod confine;
pub mod http;
pub mod json;
pub mod server;
pub mod transport;
pub mod wire;

pub use admission::{
    AdmissionConfig, AdmissionController, AdmissionCounts, Decision, RateLimit, RejectReason,
};
pub use auth::{Identity, TokenTable};
pub use client::{ClientError, EsdbClient};
pub use server::{start, DrainReport, ServerConfig, ServerHandle};
pub use transport::{Conn, TcpTransport, Transport};
pub use wire::{WireAgg, WireError, WireOp, WireRows, WriteAck, WriteRequest};
