//! Transport abstraction: how bytes reach the server.
//!
//! [`EsdbServer`](crate::server::EsdbServer) is written against
//! [`Transport`]/[`Conn`], not `std::net` directly, so the HTTP/JSON
//! front-end over TCP shipped here can later coexist with a gRPC or
//! unix-socket listener without touching admission control or the
//! request handlers. The only transport bundled today is
//! [`TcpTransport`].

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::time::Duration;

/// One accepted connection: a blocking, bidirectional byte stream.
pub trait Conn: Read + Write + Send {
    /// Peer address, for logs.
    fn peer(&self) -> String;
    /// Bounds how long a blocking read may park a worker thread, so
    /// drain can interrupt idle keep-alive connections.
    fn set_read_timeout(&mut self, timeout: Option<Duration>) -> std::io::Result<()>;
}

/// A listener producing [`Conn`]s.
pub trait Transport: Send {
    /// Polls for one new connection. `Ok(None)` = nothing pending right
    /// now (the accept loop sleeps briefly and re-polls, interleaving
    /// shutdown checks).
    fn poll_accept(&mut self) -> std::io::Result<Option<Box<dyn Conn>>>;
    /// Where the transport listens (e.g. `127.0.0.1:39143`).
    fn local_addr(&self) -> String;
}

/// TCP transport on a non-blocking listener.
pub struct TcpTransport {
    listener: TcpListener,
    addr: SocketAddr,
}

impl TcpTransport {
    /// Binds `addr` (use port 0 for an ephemeral port; the bound
    /// address is reported by [`Transport::local_addr`]).
    pub fn bind(addr: &str) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        Ok(TcpTransport { listener, addr })
    }

    /// The bound socket address.
    pub fn socket_addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Transport for TcpTransport {
    fn poll_accept(&mut self) -> std::io::Result<Option<Box<dyn Conn>>> {
        match self.listener.accept() {
            Ok((stream, peer)) => {
                stream.set_nonblocking(false)?;
                stream.set_nodelay(true)?;
                Ok(Some(Box::new(TcpConn { stream, peer })))
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => Ok(None),
            Err(e) => Err(e),
        }
    }

    fn local_addr(&self) -> String {
        self.addr.to_string()
    }
}

struct TcpConn {
    stream: TcpStream,
    peer: SocketAddr,
}

impl Read for TcpConn {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        self.stream.read(buf)
    }
}

impl Write for TcpConn {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.stream.write(buf)
    }
    fn flush(&mut self) -> std::io::Result<()> {
        self.stream.flush()
    }
}

impl Conn for TcpConn {
    fn peer(&self) -> String {
        self.peer.to_string()
    }
    fn set_read_timeout(&mut self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ephemeral_bind_and_poll() {
        let mut t = TcpTransport::bind("127.0.0.1:0").unwrap();
        assert!(t.local_addr().starts_with("127.0.0.1:"));
        // Nothing connected yet.
        assert!(t.poll_accept().unwrap().is_none());
        let client = TcpStream::connect(t.socket_addr()).unwrap();
        // Accept may need a beat for the handshake to land.
        let mut accepted = None;
        for _ in 0..100 {
            if let Some(c) = t.poll_accept().unwrap() {
                accepted = Some(c);
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        let conn = accepted.expect("connection should be accepted");
        assert_eq!(conn.peer().split(':').next(), Some("127.0.0.1"));
        drop(client);
    }
}
