//! A small self-contained JSON value type with a recursive-descent
//! parser and a writer, used by the wire protocol.
//!
//! The build environment has no real `serde`, so the codec is
//! hand-rolled — and deliberately *lossless for the wire types*: the
//! parser keeps unsigned and signed integers apart from floats (a bare
//! `u64` round-trips bit-exactly, never through `f64`), and the wire
//! layer encodes floats as shortest-round-trip *strings* so a
//! `FieldValue::Float` survives serialize → parse → deserialize
//! byte-identically (see [`crate::wire`]).

use esdb_telemetry::json_escape;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A negative integer (no `.`/exponent, leading `-`).
    Int(i64),
    /// A non-negative integer (no `.`/exponent).
    UInt(u64),
    /// Any number written with a fraction or exponent.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on an object (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `u64` (accepts `UInt` and non-negative `Int`).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(v) => Some(*v),
            Json::Int(v) if *v >= 0 => Some(*v as u64),
            _ => None,
        }
    }

    /// The value as `i64` (accepts `Int` and in-range `UInt`).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(v) => Some(*v),
            Json::UInt(v) => i64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Renders the value as compact JSON text.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Int(v) => {
                let _ = write!(out, "{v}");
            }
            Json::UInt(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Float(v) => {
                // `{}` on f64 is Rust's shortest round-trip rendering;
                // integral values print without a fraction, which is why
                // the *wire* layer never writes floats as bare numbers.
                if v.is_finite() {
                    let _ = write!(out, "{v}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => {
                out.push('"');
                out.push_str(&json_escape(s));
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    out.push_str(&json_escape(k));
                    out.push_str("\":");
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Convenience constructor for an object literal.
pub fn obj(members: Vec<(&str, Json)>) -> Json {
    Json::Obj(
        members
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// Parses one JSON document; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

/// Deepest accepted array/object nesting. The parser recurses per
/// level, so without a cap a request body of nothing but `[`s (up to
/// [`crate::http::MAX_BODY`] of them) would overflow the worker
/// thread's stack and abort the process. Wire messages nest a handful
/// of levels; 128 is far above any legitimate body.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.nested(Parser::array),
            Some(b'{') => self.nested(Parser::object),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn nested(
        &mut self,
        f: impl FnOnce(&mut Self) -> Result<Json, String>,
    ) -> Result<Json, String> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(format!(
                "nesting deeper than {MAX_DEPTH} at byte {}",
                self.pos
            ));
        }
        let v = f(self);
        self.depth -= 1;
        v
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pair handling for non-BMP chars.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.peek() != Some(b'\\') {
                                    return Err("lone high surrogate".to_string());
                                }
                                self.pos += 1;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err("bad low surrogate".to_string());
                                }
                                let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(c).ok_or("bad surrogate pair")?
                            } else {
                                char::from_u32(cp).ok_or("bad \\u escape")?
                            };
                            out.push(c);
                            // hex4 leaves pos past the 4 digits; skip the
                            // shared `pos += 1` below.
                            continue;
                        }
                        other => return Err(format!("bad escape {:?}", other.map(|c| c as char))),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so bytes
                    // form valid UTF-8; copy the full sequence).
                    let start = self.pos;
                    self.pos += 1;
                    while self
                        .bytes
                        .get(self.pos)
                        .is_some_and(|b| b & 0b1100_0000 == 0b1000_0000)
                    {
                        self.pos += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err("truncated \\u escape".to_string());
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| "bad \\u escape".to_string())?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape".to_string())?;
        self.pos = end;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if float {
            text.parse::<f64>()
                .map(Json::Float)
                .map_err(|_| format!("bad number {text:?}"))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Json::Int)
                .map_err(|_| format!("bad number {text:?}"))
        } else {
            text.parse::<u64>()
                .map(Json::UInt)
                .map_err(|_| format!("bad number {text:?}"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_nesting() {
        let v =
            parse(r#"{"a": [1, -2, 3.5, "x\n", true, null], "b": {"c": 18446744073709551615}}"#)
                .unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[0], Json::UInt(1));
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[1], Json::Int(-2));
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[2], Json::Float(3.5));
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[3],
            Json::Str("x\n".to_string())
        );
        assert_eq!(
            v.get("b").unwrap().get("c").unwrap().as_u64(),
            Some(u64::MAX)
        );
    }

    #[test]
    fn round_trips_text() {
        let text = r#"{"a":[1,-2,"x",""],"b":true,"c":null}"#;
        let v = parse(text).unwrap();
        assert_eq!(parse(&v.to_text()).unwrap(), v);
    }

    #[test]
    fn u64_never_goes_through_f64() {
        let v = parse("9007199254740993").unwrap(); // 2^53 + 1
        assert_eq!(v.as_u64(), Some(9007199254740993));
        assert_eq!(v.to_text(), "9007199254740993");
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("\"abc").is_err());
    }

    #[test]
    fn depth_is_bounded() {
        // Within the limit: fine.
        let shallow = format!("{}1{}", "[".repeat(64), "]".repeat(64));
        assert!(parse(&shallow).is_ok());
        // A body of nothing but open brackets must error cleanly
        // instead of overflowing the parser's stack.
        assert!(parse(&"[".repeat(200_000)).is_err());
        assert!(parse(&"{\"a\":".repeat(200_000)).is_err());
    }

    #[test]
    fn unicode_escapes() {
        let v = parse(r#""é😀""#).unwrap();
        assert_eq!(v.as_str(), Some("é😀"));
    }
}
