//! Tenant confinement for SQL arriving over the wire.
//!
//! `/v1/write` and `/v1/get` carry the tenant id as an explicit field,
//! so the server can compare it against the authenticated identity
//! directly. `/v1/query` and `/v1/aggregate` carry free-form SQL, so
//! confinement is decided on the parsed filter: a non-admin token may
//! only run queries whose `WHERE` clause provably restricts
//! `tenant_id` to the token's own tenant. Anything else — no tenant
//! predicate, another tenant's id, or an `OR` branch that escapes the
//! predicate — is rejected with 403 before the engine sees it.
//!
//! The check is *conservative*: it never admits a filter that could
//! match another tenant's row, and it may reject exotic-but-safe
//! filters (e.g. float-typed tenant literals). Rejection is loud
//! (403 + `forbidden`), so a false negative is an inconvenience, never
//! a leak.

use crate::wire::WireError;
use esdb_common::TenantId;
use esdb_doc::FieldValue;
use esdb_query::{parse_sql, Bound, Expr};

/// The virtual routing column queries filter tenants by (see
/// `Document::get`).
const TENANT_COL: &str = "tenant_id";

/// Parses `sql` and checks its filter is confined to `tenant`.
///
/// Returns the engine's parse error (as a 400) when the SQL does not
/// parse, and a 403 `forbidden` error when it parses but is not
/// provably confined.
pub fn ensure_confined(sql: &str, tenant: TenantId) -> Result<(), WireError> {
    let query = parse_sql(sql).map_err(|e| WireError::from_engine(&e))?;
    if filter_confined_to(&query.filter, tenant) {
        Ok(())
    } else {
        Err(WireError::new(
            "forbidden",
            format!(
                "query must be confined to tenant_id = {} for this token",
                tenant.0
            ),
        ))
    }
}

/// `true` iff no document with a different tenant id can satisfy
/// `filter` (under [`Expr::matches`] semantics).
///
/// * `tenant_id = t` / `tenant_id IN (t)` / `tenant_id BETWEEN t AND t`
///   confine directly.
/// * `AND` confines when *any* conjunct does.
/// * `OR` confines only when *every* branch does.
/// * Everything else (including `Ne`, open ranges, and filters that
///   never mention `tenant_id`) does not confine.
pub fn filter_confined_to(filter: &Expr, tenant: TenantId) -> bool {
    match filter {
        Expr::Eq(col, v) => col == TENANT_COL && value_is_tenant(v, tenant),
        Expr::In(col, vs) => {
            col == TENANT_COL && !vs.is_empty() && vs.iter().all(|v| value_is_tenant(v, tenant))
        }
        Expr::Range(col, lo, hi) => {
            col == TENANT_COL
                && matches!(lo, Bound::Included(v) if value_is_tenant(v, tenant))
                && matches!(hi, Bound::Included(v) if value_is_tenant(v, tenant))
        }
        Expr::And(cs) => cs.iter().any(|c| filter_confined_to(c, tenant)),
        Expr::Or(cs) => !cs.is_empty() && cs.iter().all(|c| filter_confined_to(c, tenant)),
        _ => false,
    }
}

/// Exact-integer equality with the tenant id. Floats are deliberately
/// rejected: `values_eq` compares them through `f64`, which is not
/// injective over the full id range, so they cannot prove confinement.
fn value_is_tenant(v: &FieldValue, tenant: TenantId) -> bool {
    match v {
        FieldValue::Int(i) => u64::try_from(*i) == Ok(tenant.0),
        FieldValue::Timestamp(t) => *t == tenant.0 && i64::try_from(tenant.0).is_ok(),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn confined(sql: &str, tenant: u64) -> bool {
        ensure_confined(sql, TenantId(tenant)).is_ok()
    }

    #[test]
    fn accepts_own_tenant_predicates() {
        assert!(confined(
            "SELECT * FROM transaction_logs WHERE tenant_id = 7",
            7
        ));
        assert!(confined(
            "SELECT * FROM transaction_logs WHERE tenant_id = 7 AND status = 1",
            7
        ));
        assert!(confined(
            "SELECT * FROM transaction_logs WHERE status = 1 AND tenant_id IN (7)",
            7
        ));
        assert!(confined(
            "SELECT * FROM transaction_logs WHERE tenant_id BETWEEN 7 AND 7",
            7
        ));
        // Both OR branches pin the tenant.
        assert!(confined(
            "SELECT * FROM transaction_logs \
             WHERE (tenant_id = 7 AND status = 1) OR (tenant_id = 7 AND status = 2)",
            7
        ));
        assert!(confined(
            "SELECT COUNT(*) FROM transaction_logs WHERE tenant_id = 7 GROUP BY status",
            7
        ));
    }

    #[test]
    fn rejects_escapes() {
        // Another tenant.
        assert!(!confined(
            "SELECT * FROM transaction_logs WHERE tenant_id = 8",
            7
        ));
        // No tenant predicate at all.
        assert!(!confined("SELECT * FROM transaction_logs", 7));
        assert!(!confined(
            "SELECT * FROM transaction_logs WHERE status = 1",
            7
        ));
        // IN widens past the token's tenant.
        assert!(!confined(
            "SELECT * FROM transaction_logs WHERE tenant_id IN (7, 8)",
            7
        ));
        // One OR branch escapes.
        assert!(!confined(
            "SELECT * FROM transaction_logs WHERE tenant_id = 7 OR status = 1",
            7
        ));
        // Ne and open ranges are not confinement.
        assert!(!confined(
            "SELECT * FROM transaction_logs WHERE tenant_id != 8",
            7
        ));
        assert!(!confined(
            "SELECT * FROM transaction_logs WHERE tenant_id >= 7",
            7
        ));
        assert!(!confined(
            "SELECT * FROM transaction_logs WHERE tenant_id BETWEEN 7 AND 8",
            7
        ));
    }

    #[test]
    fn parse_errors_surface_as_parse_not_forbidden() {
        let err = ensure_confined("SELEC nonsense", TenantId(7)).unwrap_err();
        assert_eq!(err.status(), 400);
    }

    #[test]
    fn float_literals_never_confine() {
        let t = TenantId(1);
        assert!(!value_is_tenant(&FieldValue::Float(1.0), t));
        assert!(value_is_tenant(&FieldValue::Int(1), t));
        assert!(value_is_tenant(&FieldValue::Timestamp(1), t));
        assert!(!value_is_tenant(&FieldValue::Int(-1), t));
    }
}
