//! Token authentication: bearer token → tenant identity.
//!
//! Deliberately minimal — a static table configured at server start
//! (the multi-tenant isolation the paper cares about happens *after*
//! identification: tenant confinement on writes, gets, and queries
//! ([`crate::confine`]), then admission control and shard routing).
//! Tokens are opaque strings; an identity is a tenant id plus an
//! `admin` bit that unlocks the `/admin/*` endpoints and cross-tenant
//! reads and writes.

use esdb_common::TenantId;
use std::collections::HashMap;

/// The authenticated principal attached to a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Identity {
    /// Tenant this token writes and queries as.
    pub tenant: TenantId,
    /// Admin tokens may hit `/admin/*` and read/write any tenant.
    pub admin: bool,
}

/// Immutable token → identity table.
#[derive(Debug, Default, Clone)]
pub struct TokenTable {
    tokens: HashMap<String, Identity>,
}

impl TokenTable {
    /// An empty table (every request is rejected).
    pub fn new() -> Self {
        TokenTable::default()
    }

    /// Registers a tenant token.
    pub fn tenant(mut self, token: impl Into<String>, tenant: TenantId) -> Self {
        self.tokens.insert(
            token.into(),
            Identity {
                tenant,
                admin: false,
            },
        );
        self
    }

    /// Registers an admin token. Admin identities bypass tenant
    /// confinement (cross-tenant reads and writes) and the `/admin/*`
    /// auth check only; their data-plane requests still pass through
    /// admission control like any other tenant's.
    pub fn admin(mut self, token: impl Into<String>, tenant: TenantId) -> Self {
        self.tokens.insert(
            token.into(),
            Identity {
                tenant,
                admin: true,
            },
        );
        self
    }

    /// Resolves a bearer token.
    pub fn resolve(&self, token: &str) -> Option<Identity> {
        self.tokens.get(token).copied()
    }

    /// Number of registered tokens.
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// Whether no token is registered.
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolves_and_rejects() {
        let t = TokenTable::new()
            .tenant("tok-7", TenantId(7))
            .admin("root", TenantId(0));
        assert_eq!(
            t.resolve("tok-7"),
            Some(Identity {
                tenant: TenantId(7),
                admin: false
            })
        );
        assert!(t.resolve("root").unwrap().admin);
        assert_eq!(t.resolve("nope"), None);
        assert_eq!(t.len(), 2);
    }
}
