//! Multi-tenant admission control: token-bucket rate limits, in-flight
//! quotas, and hot-tenant load shedding.
//!
//! Every data-plane request passes through [`AdmissionController::admit`]
//! after authentication. Decisions are taken in severity order:
//!
//! 1. **Shed** — when the server is overloaded (global in-flight at or
//!    above `overload_inflight`), requests from tenants whose
//!    throughput proportion exceeds `shed_proportion` are rejected with
//!    503. The proportion is the *max* of the server's own request
//!    window and the engine's [`WorkloadMonitor`] signal — the same
//!    `r = T(k)/ΣT` the balancer uses to grow shard spans (paper
//!    Algorithm 1), so the front-end sheds exactly the tenants the
//!    balancer identifies as hot. Victim (cold) tenants are *never*
//!    shed: overload caused by a Zipf hot key degrades the hot tenant
//!    first, which is the paper's isolation goal.
//! 2. **Quota** — per-tenant in-flight cap (429, no retry hint beyond
//!    "when one completes").
//! 3. **Rate** — per-tenant token bucket (429 + `retry_after_ms`
//!    computed from the deficit). Buckets refill in millitokens per
//!    millisecond of [`SharedClock`] time, so with a
//!    [`esdb_common::ManualClock`] refill is exactly deterministic —
//!    property-tested in this module.
//! 4. **Admit** — an RAII [`Permit`] tracks the request in-flight.
//!
//! Counters obey the conservation law checked by the concurrency tests:
//! for every tenant, `issued == admitted + rate + quota + shed` —
//! rate and quota rejections are tracked separately so operational
//! stats can tell them apart (`throttled()` is their sum; auth
//! failures are counted separately by the server — they never reach
//! admission).

use esdb_balancer::WorkloadMonitor;
use esdb_common::{Clock, SharedClock, TenantId};
use esdb_telemetry::{EventKind, Labels, Telemetry, NO_PARENT};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

/// Token-bucket parameters: bursts up to `capacity`, sustained
/// `per_sec` requests per second.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RateLimit {
    /// Bucket capacity in whole requests (burst size), ≥ 1.
    pub capacity: u64,
    /// Refill rate in requests per second.
    pub per_sec: u64,
}

impl RateLimit {
    /// A limit of `per_sec` requests/second with an equal burst.
    pub fn per_sec(per_sec: u64) -> Self {
        RateLimit {
            capacity: per_sec.max(1),
            per_sec,
        }
    }
}

/// Admission-control configuration.
#[derive(Debug, Clone)]
pub struct AdmissionConfig {
    /// Master switch; `false` admits everything (still counts).
    pub enabled: bool,
    /// Rate limit applied to tenants without an explicit override.
    pub default_rate: RateLimit,
    /// Per-tenant overrides.
    pub tenant_rates: Vec<(TenantId, RateLimit)>,
    /// Max concurrently executing requests per tenant.
    pub per_tenant_inflight: u32,
    /// Max concurrently executing requests server-wide before the shed
    /// path arms.
    pub overload_inflight: u32,
    /// Max open connections (enforced at accept time).
    pub max_connections: u32,
    /// A tenant above this throughput proportion is sheddable while the
    /// server is overloaded.
    pub shed_proportion: f64,
    /// Hot-tenant shedding switch (the `server_admission` bench A/Bs
    /// this).
    pub shedding: bool,
    /// Width of the server-side proportion window, in clock ms.
    pub window_ms: u64,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            enabled: true,
            default_rate: RateLimit {
                capacity: 1024,
                per_sec: 4096,
            },
            tenant_rates: Vec::new(),
            per_tenant_inflight: 64,
            overload_inflight: 256,
            max_connections: 1024,
            shed_proportion: 0.5,
            shedding: true,
            window_ms: 1_000,
        }
    }
}

/// Why a request was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// Per-tenant in-flight quota exhausted.
    Quota,
    /// Token bucket empty.
    Rate,
    /// Hot tenant shed under overload.
    Shed,
}

impl RejectReason {
    /// Wire error code.
    pub fn code(&self) -> &'static str {
        match self {
            RejectReason::Quota => "quota_exceeded",
            RejectReason::Rate => "rate_limited",
            RejectReason::Shed => "shed",
        }
    }

    /// Label value for `esdb_server_rejected_total{stage=...}`.
    pub fn stage(&self) -> &'static str {
        match self {
            RejectReason::Quota => "quota",
            RejectReason::Rate => "rate",
            RejectReason::Shed => "shed",
        }
    }
}

/// Outcome of [`AdmissionController::admit`].
pub enum Decision {
    /// Admitted; drop the permit when the request completes.
    Admitted(Permit),
    /// Rejected with a reason and optional client back-off hint.
    Rejected {
        /// Why.
        reason: RejectReason,
        /// Back-off hint (rate rejections only).
        retry_after_ms: Option<u64>,
    },
}

/// Monotone per-tenant decision counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdmissionCounts {
    /// Requests that reached admission.
    pub issued: u64,
    /// ... and were admitted.
    pub admitted: u64,
    /// ... rejected by the token-bucket rate limit (429).
    pub rate: u64,
    /// ... rejected by the in-flight quota (429).
    pub quota: u64,
    /// ... shed as a hot tenant under overload (503).
    pub shed: u64,
}

impl AdmissionCounts {
    /// The 429 family: rate + quota rejections.
    pub fn throttled(&self) -> u64 {
        self.rate + self.quota
    }

    /// The conservation invariant the tests assert.
    pub fn conserved(&self) -> bool {
        self.issued == self.admitted + self.rate + self.quota + self.shed
    }
}

/// Per-tenant decision state for transition-edge journaling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TenantMode {
    Admitting,
    Throttled,
    Shedding,
}

struct TenantState {
    /// Token bucket level in millitokens (1 request = 1000).
    bucket_mt: u64,
    /// Clock ms of the last refill.
    bucket_last_ms: u64,
    /// Requests currently executing.
    inflight: u32,
    /// Requests seen in the current proportion window.
    window: u64,
    /// ... and the previous (closed) window.
    prev_window: u64,
    /// Last journaled mode — events fire on edges, not per request.
    mode: TenantMode,
    counts: AdmissionCounts,
    rate: RateLimit,
}

struct WindowState {
    /// Start of the current proportion window, clock ms.
    start_ms: u64,
    /// Total requests in the current window (all tenants).
    total: u64,
    /// ... and the previous window.
    prev_total: u64,
}

struct Inner {
    config: AdmissionConfig,
    clock: SharedClock,
    telemetry: Arc<Telemetry>,
    monitor: Option<Arc<WorkloadMonitor>>,
    tenants: Mutex<HashMap<u64, TenantState>>,
    window: Mutex<WindowState>,
    global_inflight: AtomicU32,
    connections: AtomicU32,
}

/// The admission controller. Clone-cheap (`Arc` inside); one per
/// server.
#[derive(Clone)]
pub struct AdmissionController {
    inner: Arc<Inner>,
}

/// RAII in-flight tracking: dropping the permit releases the tenant's
/// quota slot and the global in-flight count.
pub struct Permit {
    inner: Arc<Inner>,
    tenant: u64,
}

impl Drop for Permit {
    fn drop(&mut self) {
        self.inner.global_inflight.fetch_sub(1, Ordering::AcqRel);
        let mut tenants = self.inner.tenants.lock();
        if let Some(t) = tenants.get_mut(&self.tenant) {
            t.inflight = t.inflight.saturating_sub(1);
        }
    }
}

impl AdmissionController {
    /// Builds a controller over the given clock and telemetry. Pass the
    /// engine's [`WorkloadMonitor`] to share the balancer's skew
    /// signal; without it only the server-side window drives shedding.
    pub fn new(
        config: AdmissionConfig,
        clock: SharedClock,
        telemetry: Arc<Telemetry>,
        monitor: Option<Arc<WorkloadMonitor>>,
    ) -> Self {
        let start_ms = clock.now();
        AdmissionController {
            inner: Arc::new(Inner {
                config,
                clock,
                telemetry,
                monitor,
                tenants: Mutex::new(HashMap::new()),
                window: Mutex::new(WindowState {
                    start_ms,
                    total: 0,
                    prev_total: 0,
                }),
                global_inflight: AtomicU32::new(0),
                connections: AtomicU32::new(0),
            }),
        }
    }

    /// The configuration this controller runs with.
    pub fn config(&self) -> &AdmissionConfig {
        &self.inner.config
    }

    /// Current globally in-flight request count.
    pub fn global_inflight(&self) -> u32 {
        self.inner.global_inflight.load(Ordering::Acquire)
    }

    /// Tries to open a connection slot; `false` = at `max_connections`.
    pub fn try_open_connection(&self) -> bool {
        let max = self.inner.config.max_connections;
        self.inner
            .connections
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |c| {
                (c < max).then_some(c + 1)
            })
            .is_ok()
    }

    /// Releases a connection slot.
    pub fn close_connection(&self) {
        self.inner.connections.fetch_sub(1, Ordering::AcqRel);
    }

    /// Currently open connections.
    pub fn connections(&self) -> u32 {
        self.inner.connections.load(Ordering::Acquire)
    }

    /// Decides one request for `tenant`.
    pub fn admit(&self, tenant: TenantId) -> Decision {
        let inner = &self.inner;
        let now = inner.clock.now();
        let cfg = &inner.config;

        // Pre-read the global in-flight level and (outside the tenant
        // lock) the monitor proportion, so the lock below stays short.
        let global = inner.global_inflight.load(Ordering::Acquire);
        let overloaded = cfg.shedding && cfg.enabled && global >= cfg.overload_inflight;
        let monitor_prop = if overloaded {
            inner
                .monitor
                .as_ref()
                .map_or(0.0, |m| m.current().tenant_proportion(tenant))
        } else {
            0.0
        };

        // Roll the proportion window if it expired.
        let (window_total, prev_total) = {
            let mut w = inner.window.lock();
            if now.saturating_sub(w.start_ms) >= cfg.window_ms {
                w.prev_total = w.total;
                w.total = 0;
                w.start_ms = now;
                let mut tenants = inner.tenants.lock();
                for t in tenants.values_mut() {
                    t.prev_window = t.window;
                    t.window = 0;
                }
            }
            w.total += 1;
            (w.total, w.prev_total)
        };

        let mut tenants = inner.tenants.lock();
        let t = tenants.entry(tenant.0).or_insert_with(|| {
            let rate = cfg
                .tenant_rates
                .iter()
                .find(|(k, _)| *k == tenant)
                .map(|(_, r)| *r)
                .unwrap_or(cfg.default_rate);
            TenantState {
                bucket_mt: rate.capacity * 1000,
                bucket_last_ms: now,
                inflight: 0,
                window: 0,
                prev_window: 0,
                mode: TenantMode::Admitting,
                counts: AdmissionCounts::default(),
                rate,
            }
        });
        t.counts.issued += 1;
        t.window += 1;

        if !cfg.enabled {
            t.counts.admitted += 1;
            return self.admitted(tenant, t);
        }

        // 1. Shed hot tenants under overload. The proportion blends the
        //    fast server-side window (requests seen at the front door)
        //    with the engine's write-throughput monitor; either signal
        //    alone marks the tenant hot.
        if overloaded {
            let server_prop = {
                let num = (t.window + t.prev_window) as f64;
                let den = (window_total + prev_total) as f64;
                if den > 0.0 {
                    num / den
                } else {
                    0.0
                }
            };
            let prop = server_prop.max(monitor_prop);
            if prop > cfg.shed_proportion {
                t.counts.shed += 1;
                if t.mode != TenantMode::Shedding {
                    t.mode = TenantMode::Shedding;
                    inner.telemetry.emit(
                        EventKind::ServerShed {
                            tenant: tenant.0,
                            proportion_ppm: (prop * 1e6) as u64,
                        },
                        Labels::tenant(tenant.0),
                        NO_PARENT,
                    );
                }
                return Decision::Rejected {
                    reason: RejectReason::Shed,
                    retry_after_ms: Some(cfg.window_ms),
                };
            }
        }

        // 2. Per-tenant in-flight quota.
        if t.inflight >= cfg.per_tenant_inflight {
            t.counts.quota += 1;
            if t.mode != TenantMode::Throttled {
                t.mode = TenantMode::Throttled;
                inner.telemetry.emit(
                    EventKind::ServerThrottle {
                        tenant: tenant.0,
                        reason: "quota",
                        retry_after_ms: 0,
                    },
                    Labels::tenant(tenant.0),
                    NO_PARENT,
                );
            }
            return Decision::Rejected {
                reason: RejectReason::Quota,
                retry_after_ms: None,
            };
        }

        // 3. Token bucket. Refill is integral millitokens per elapsed
        //    clock ms, so identical clock sequences give identical
        //    decisions.
        let elapsed = now.saturating_sub(t.bucket_last_ms);
        t.bucket_mt = (t.bucket_mt + elapsed * t.rate.per_sec).min(t.rate.capacity * 1000);
        t.bucket_last_ms = now;
        if t.bucket_mt < 1000 {
            let deficit = 1000 - t.bucket_mt;
            let retry_ms = if t.rate.per_sec == 0 {
                cfg.window_ms
            } else {
                deficit.div_ceil(t.rate.per_sec)
            };
            t.counts.rate += 1;
            if t.mode != TenantMode::Throttled {
                t.mode = TenantMode::Throttled;
                inner.telemetry.emit(
                    EventKind::ServerThrottle {
                        tenant: tenant.0,
                        reason: "rate",
                        retry_after_ms: retry_ms,
                    },
                    Labels::tenant(tenant.0),
                    NO_PARENT,
                );
            }
            return Decision::Rejected {
                reason: RejectReason::Rate,
                retry_after_ms: Some(retry_ms),
            };
        }
        t.bucket_mt -= 1000;

        // 4. Admit.
        t.counts.admitted += 1;
        self.admitted(tenant, t)
    }

    fn admitted(&self, tenant: TenantId, t: &mut TenantState) -> Decision {
        if t.mode != TenantMode::Admitting {
            t.mode = TenantMode::Admitting;
            self.inner.telemetry.emit(
                EventKind::ServerAdmit { tenant: tenant.0 },
                Labels::tenant(tenant.0),
                NO_PARENT,
            );
        }
        t.inflight += 1;
        self.inner.global_inflight.fetch_add(1, Ordering::AcqRel);
        Decision::Admitted(Permit {
            inner: Arc::clone(&self.inner),
            tenant: tenant.0,
        })
    }

    /// Decision counters for one tenant (zero if never seen).
    pub fn tenant_counts(&self, tenant: TenantId) -> AdmissionCounts {
        self.inner
            .tenants
            .lock()
            .get(&tenant.0)
            .map(|t| t.counts)
            .unwrap_or_default()
    }

    /// Decision counters summed over every tenant.
    pub fn total_counts(&self) -> AdmissionCounts {
        let tenants = self.inner.tenants.lock();
        let mut out = AdmissionCounts::default();
        for t in tenants.values() {
            out.issued += t.counts.issued;
            out.admitted += t.counts.admitted;
            out.rate += t.counts.rate;
            out.quota += t.counts.quota;
            out.shed += t.counts.shed;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esdb_common::ManualClock;

    fn controller(cfg: AdmissionConfig) -> (AdmissionController, Arc<ManualClock>) {
        let (clock, manual) = SharedClock::manual(0);
        let c = AdmissionController::new(cfg, clock, Arc::new(Telemetry::disabled()), None);
        (c, manual)
    }

    #[test]
    fn token_bucket_refill_is_deterministic() {
        let cfg = AdmissionConfig {
            default_rate: RateLimit {
                capacity: 2,
                per_sec: 10, // 10 millitokens per ms
            },
            per_tenant_inflight: 1000,
            ..AdmissionConfig::default()
        };
        let run = || {
            let (c, clock) = controller(cfg.clone());
            let mut decisions = Vec::new();
            for step in 0..200u64 {
                clock.advance(17);
                let d = c.admit(TenantId(1));
                decisions.push(matches!(d, Decision::Admitted(_)));
                let _ = step;
            }
            (decisions, c.tenant_counts(TenantId(1)))
        };
        let (a, ca) = run();
        let (b, cb) = run();
        assert_eq!(a, b, "same clock sequence must give same decisions");
        assert_eq!(ca, cb);
        assert!(ca.conserved());
        // 17 ms * 10/s = 170 mt per step; 1000 mt per request → roughly
        // 17% admitted after the initial burst of 2.
        assert!(ca.admitted >= 2 && ca.admitted < ca.issued);
    }

    #[test]
    fn burst_then_throttle_then_recover() {
        let cfg = AdmissionConfig {
            default_rate: RateLimit {
                capacity: 3,
                per_sec: 1000,
            },
            per_tenant_inflight: 1000,
            ..AdmissionConfig::default()
        };
        let (c, clock) = controller(cfg);
        // Burst drains the bucket.
        for _ in 0..3 {
            assert!(matches!(c.admit(TenantId(9)), Decision::Admitted(_)));
        }
        match c.admit(TenantId(9)) {
            Decision::Rejected {
                reason: RejectReason::Rate,
                retry_after_ms: Some(ms),
            } => assert_eq!(ms, 1, "1000/s refill → 1 ms per token"),
            _ => panic!("expected rate rejection"),
        }
        clock.advance(1);
        assert!(matches!(c.admit(TenantId(9)), Decision::Admitted(_)));
    }

    #[test]
    fn quota_blocks_until_permit_drops() {
        let cfg = AdmissionConfig {
            per_tenant_inflight: 2,
            default_rate: RateLimit::per_sec(1_000_000),
            ..AdmissionConfig::default()
        };
        let (c, _clock) = controller(cfg);
        let p1 = match c.admit(TenantId(4)) {
            Decision::Admitted(p) => p,
            _ => panic!(),
        };
        let _p2 = match c.admit(TenantId(4)) {
            Decision::Admitted(p) => p,
            _ => panic!(),
        };
        assert!(matches!(
            c.admit(TenantId(4)),
            Decision::Rejected {
                reason: RejectReason::Quota,
                ..
            }
        ));
        drop(p1);
        assert!(matches!(c.admit(TenantId(4)), Decision::Admitted(_)));
        let counts = c.tenant_counts(TenantId(4));
        assert!(counts.conserved());
        assert_eq!(counts.quota, 1, "the rejection was a quota, not rate");
        assert_eq!(counts.rate, 0);
        assert_eq!(counts.throttled(), 1);
    }

    #[test]
    fn sheds_only_hot_tenant_under_overload() {
        let cfg = AdmissionConfig {
            overload_inflight: 2,
            shed_proportion: 0.5,
            per_tenant_inflight: 1000,
            default_rate: RateLimit::per_sec(1_000_000),
            ..AdmissionConfig::default()
        };
        let (c, _clock) = controller(cfg);
        // Make tenant 1 dominate the window while holding permits so the
        // server counts as overloaded.
        let mut permits = Vec::new();
        for _ in 0..8 {
            if let Decision::Admitted(p) = c.admit(TenantId(1)) {
                permits.push(p);
            }
        }
        assert!(c.global_inflight() >= 2);
        // Hot tenant now gets shed...
        assert!(matches!(
            c.admit(TenantId(1)),
            Decision::Rejected {
                reason: RejectReason::Shed,
                ..
            }
        ));
        // ...while the cold tenant still gets through.
        assert!(matches!(c.admit(TenantId(2)), Decision::Admitted(_)));
        assert!(c.tenant_counts(TenantId(1)).shed >= 1);
        assert_eq!(c.tenant_counts(TenantId(2)).shed, 0);
    }

    #[test]
    fn shedding_off_never_sheds() {
        let cfg = AdmissionConfig {
            overload_inflight: 1,
            shed_proportion: 0.0,
            shedding: false,
            per_tenant_inflight: 1000,
            default_rate: RateLimit::per_sec(1_000_000),
            ..AdmissionConfig::default()
        };
        let (c, _clock) = controller(cfg);
        let mut permits = Vec::new();
        for _ in 0..16 {
            if let Decision::Admitted(p) = c.admit(TenantId(1)) {
                permits.push(p);
            }
        }
        assert_eq!(c.tenant_counts(TenantId(1)).shed, 0);
    }

    #[test]
    fn connection_cap_enforced() {
        let cfg = AdmissionConfig {
            max_connections: 2,
            ..AdmissionConfig::default()
        };
        let (c, _clock) = controller(cfg);
        assert!(c.try_open_connection());
        assert!(c.try_open_connection());
        assert!(!c.try_open_connection());
        c.close_connection();
        assert!(c.try_open_connection());
        assert_eq!(c.connections(), 2);
    }
}
