//! Minimal HTTP/1.1 framing over a blocking byte stream.
//!
//! The server speaks just enough HTTP for `curl` and the bundled
//! [`crate::client::EsdbClient`]: request line + headers +
//! `Content-Length` body, persistent connections (`keep-alive` is the
//! 1.1 default), `Connection: close` honored. No chunked encoding, no
//! TLS — the transport trait exists so a richer stack can replace this
//! without touching the engine-facing code.
//!
//! Reads are **resumable**: all bytes accumulate in the caller's
//! buffer and a message is only consumed once it is complete, so a
//! read timeout ([`ReadError::TimedOut`]) can be retried without
//! losing a partially received request. The server relies on this to
//! poll its drain flag from idle keep-alive connections.

use std::io::{Read, Write};
use std::time::Instant;

/// Longest accepted head (request line + headers) in bytes.
const MAX_HEAD: usize = 16 * 1024;
/// Longest accepted body in bytes (defense against a hostile client
/// holding a worker thread on an unbounded read).
pub const MAX_BODY: usize = 8 * 1024 * 1024;

/// A parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// `GET`, `POST`, ...
    pub method: String,
    /// Path component, e.g. `/v1/query` (query strings are not split).
    pub path: String,
    /// `(lower-cased name, value)` in arrival order.
    pub headers: Vec<(String, String)>,
    /// Raw body bytes (`Content-Length`-framed).
    pub body: Vec<u8>,
}

impl Request {
    /// First header with the given lower-case name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// The bearer token from `Authorization`, if present.
    pub fn bearer_token(&self) -> Option<&str> {
        let auth = self.header("authorization")?;
        let (scheme, token) = auth.split_once(' ')?;
        if scheme.eq_ignore_ascii_case("bearer") {
            Some(token.trim())
        } else {
            None
        }
    }

    /// Whether the client asked to drop the connection after this
    /// exchange.
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// Why reading a message failed.
#[derive(Debug, PartialEq, Eq)]
pub enum ReadError {
    /// Clean EOF before any byte of a new message — normal connection
    /// teardown.
    Eof,
    /// The read timed out with the message still incomplete; the
    /// buffer is intact, call again to resume.
    TimedOut,
    /// The peer went away mid-message or sent garbage.
    Malformed(String),
    /// The caller's deadline passed with the message still incomplete
    /// while bytes kept arriving. Unlike [`ReadError::TimedOut`] this
    /// is terminal: the connection should be dropped, or a trickling
    /// client could hold a worker thread forever.
    DeadlineExceeded,
    /// Underlying socket error.
    Io(String),
}

/// Pulls more bytes into `buf`, classifying timeout vs hard error.
fn fill(stream: &mut dyn Read, buf: &mut Vec<u8>) -> Result<usize, ReadError> {
    let mut chunk = [0u8; 8192];
    match stream.read(&mut chunk) {
        Ok(0) => Ok(0),
        Ok(n) => {
            buf.extend_from_slice(&chunk[..n]);
            Ok(n)
        }
        Err(e)
            if e.kind() == std::io::ErrorKind::WouldBlock
                || e.kind() == std::io::ErrorKind::TimedOut =>
        {
            Err(ReadError::TimedOut)
        }
        Err(e) if e.kind() == std::io::ErrorKind::Interrupted => Err(ReadError::TimedOut),
        Err(e) => Err(ReadError::Io(e.to_string())),
    }
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Parsed head: status/request line plus headers, and the framed body
/// length.
struct Head {
    first_line: String,
    headers: Vec<(String, String)>,
    content_length: usize,
    body_start: usize,
}

/// Parses the head if `buf` holds a complete one (does not consume).
fn parse_head(buf: &[u8]) -> Result<Option<Head>, ReadError> {
    let Some(head_end) = find_head_end(buf) else {
        if buf.len() > MAX_HEAD {
            return Err(ReadError::Malformed("message head too large".into()));
        }
        return Ok(None);
    };
    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| ReadError::Malformed("non-utf8 head".into()))?;
    let mut lines = head.split("\r\n");
    let first_line = lines.next().unwrap_or("").to_string();
    let mut headers = Vec::new();
    let mut content_length = 0usize;
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| ReadError::Malformed(format!("bad header line {line:?}")))?;
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim().to_string();
        if name == "content-length" {
            content_length = value
                .parse()
                .map_err(|_| ReadError::Malformed("bad content-length".into()))?;
        }
        headers.push((name, value));
    }
    if content_length > MAX_BODY {
        return Err(ReadError::Malformed("body too large".into()));
    }
    Ok(Some(Head {
        first_line,
        headers,
        content_length,
        body_start: head_end + 4, // past "\r\n\r\n"
    }))
}

/// Accumulates until `buf` holds one complete message, then consumes
/// and returns its head and body.
///
/// `deadline` bounds the time spent *inside this call* on a message
/// that keeps receiving bytes: a complete message is always returned,
/// but once the deadline passes with the message still incomplete the
/// call fails with [`ReadError::DeadlineExceeded`] instead of looping
/// on a client that trickles bytes forever. (A *stalled* client
/// surfaces as [`ReadError::TimedOut`] via the socket read timeout
/// and is the caller's responsibility to bound across calls.)
fn read_message(
    stream: &mut dyn Read,
    buf: &mut Vec<u8>,
    deadline: Option<Instant>,
) -> Result<(Head, Vec<u8>), ReadError> {
    loop {
        if let Some(head) = parse_head(buf)? {
            let total = head.body_start + head.content_length;
            if buf.len() >= total {
                let body = buf[head.body_start..total].to_vec();
                buf.drain(..total);
                return Ok((head, body));
            }
        }
        if deadline.is_some_and(|d| Instant::now() >= d) {
            return Err(ReadError::DeadlineExceeded);
        }
        match fill(stream, buf)? {
            0 => {
                return if buf.is_empty() {
                    Err(ReadError::Eof)
                } else {
                    Err(ReadError::Malformed("eof mid-message".into()))
                };
            }
            _ => continue,
        }
    }
}

/// Reads one request from `stream`. `buf` carries unconsumed and
/// partially received bytes between calls. See [`read_message`] for
/// `deadline` semantics.
pub fn read_request(
    stream: &mut dyn Read,
    buf: &mut Vec<u8>,
    deadline: Option<Instant>,
) -> Result<Request, ReadError> {
    let (head, body) = read_message(stream, buf, deadline)?;
    let mut parts = head.first_line.split_whitespace();
    let method = parts
        .next()
        .filter(|m| !m.is_empty())
        .ok_or_else(|| ReadError::Malformed("empty request line".into()))?
        .to_string();
    let path = parts
        .next()
        .ok_or_else(|| ReadError::Malformed("missing path".into()))?
        .to_string();
    Ok(Request {
        method,
        path,
        headers: head.headers,
        body,
    })
}

/// Writes one response. `content_type` is `application/json` for API
/// bodies and `text/plain; version=0.0.4` for Prometheus text.
pub fn write_response(
    stream: &mut dyn Write,
    status: u16,
    content_type: &str,
    body: &str,
    retry_after_ms: Option<u64>,
) -> std::io::Result<()> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        401 => "Unauthorized",
        403 => "Forbidden",
        404 => "Not Found",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    };
    let mut head = format!(
        "HTTP/1.1 {status} {reason}\r\ncontent-type: {content_type}\r\ncontent-length: {}\r\n",
        body.len()
    );
    if let Some(ms) = retry_after_ms {
        // HTTP Retry-After is whole seconds; round up so clients never
        // retry early.
        head.push_str(&format!("retry-after: {}\r\n", ms.div_ceil(1000)));
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// A parsed response (client side).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Value of `retry-after`, in seconds, if present.
    pub retry_after_secs: Option<u64>,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// Body as UTF-8 (API responses are always JSON or Prometheus
    /// text).
    pub fn text(&self) -> Result<&str, String> {
        std::str::from_utf8(&self.body).map_err(|e| e.to_string())
    }
}

/// Reads one response from `stream` (client side; same framing and
/// resumability rules as [`read_request`]).
pub fn read_response(stream: &mut dyn Read, buf: &mut Vec<u8>) -> Result<Response, ReadError> {
    let (head, body) = read_message(stream, buf, None)?;
    let status: u16 = head
        .first_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| ReadError::Malformed("bad status line".into()))?;
    let retry_after_secs = head
        .headers
        .iter()
        .find(|(n, _)| n == "retry-after")
        .and_then(|(_, v)| v.parse().ok());
    Ok(Response {
        status,
        retry_after_secs,
        body,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn parses_request_with_body() {
        let raw = b"POST /v1/query HTTP/1.1\r\nAuthorization: Bearer tok-1\r\nContent-Length: 5\r\n\r\nhello";
        let mut buf = Vec::new();
        let req = read_request(&mut Cursor::new(&raw[..]), &mut buf, None).unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/query");
        assert_eq!(req.bearer_token(), Some("tok-1"));
        assert_eq!(req.body, b"hello");
        assert!(buf.is_empty());
    }

    #[test]
    fn pipelined_requests_share_buffer() {
        let raw = b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n";
        let mut cur = Cursor::new(&raw[..]);
        let mut buf = Vec::new();
        let a = read_request(&mut cur, &mut buf, None).unwrap();
        let b = read_request(&mut cur, &mut buf, None).unwrap();
        assert_eq!(a.path, "/a");
        assert_eq!(b.path, "/b");
        assert_eq!(
            read_request(&mut cur, &mut buf, None).unwrap_err(),
            ReadError::Eof
        );
    }

    /// A reader that yields its script one slice per call, with
    /// `WouldBlock` gaps — models SO_RCVTIMEO expiry mid-request.
    struct Stutter<'a> {
        parts: Vec<&'a [u8]>,
        next: usize,
        timeout_between: bool,
        gap: bool,
    }

    impl Read for Stutter<'_> {
        fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
            if self.timeout_between && self.gap {
                self.gap = false;
                return Err(std::io::Error::new(std::io::ErrorKind::WouldBlock, "t/o"));
            }
            self.gap = true;
            if self.next >= self.parts.len() {
                return Ok(0);
            }
            let part = self.parts[self.next];
            self.next += 1;
            let n = part.len().min(out.len());
            out[..n].copy_from_slice(&part[..n]);
            Ok(n)
        }
    }

    #[test]
    fn timeout_mid_request_is_resumable() {
        let raw: &[u8] = b"POST /v1/write HTTP/1.1\r\nContent-Length: 4\r\n\r\nabcd";
        let mut stream = Stutter {
            parts: raw.chunks(7).collect(),
            next: 0,
            timeout_between: true,
            gap: false,
        };
        let mut buf = Vec::new();
        let mut timeouts = 0;
        let req = loop {
            match read_request(&mut stream, &mut buf, None) {
                Ok(r) => break r,
                Err(ReadError::TimedOut) => timeouts += 1,
                Err(e) => panic!("unexpected error {e:?}"),
            }
        };
        assert!(timeouts > 0, "the stutter reader must have timed out");
        assert_eq!(req.path, "/v1/write");
        assert_eq!(req.body, b"abcd");
    }

    #[test]
    fn response_round_trips() {
        let mut wire = Vec::new();
        write_response(&mut wire, 429, "application/json", "{\"x\":1}", Some(1500)).unwrap();
        let text = String::from_utf8(wire.clone()).unwrap();
        assert!(text.contains("429 Too Many Requests"));
        assert!(text.contains("retry-after: 2"));
        let mut buf = Vec::new();
        let resp = read_response(&mut Cursor::new(&wire[..]), &mut buf).unwrap();
        assert_eq!(resp.status, 429);
        assert_eq!(resp.retry_after_secs, Some(2));
        assert_eq!(resp.text().unwrap(), "{\"x\":1}");
    }

    #[test]
    fn rejects_oversized_body() {
        let raw = format!(
            "POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY + 1
        );
        let mut buf = Vec::new();
        assert!(matches!(
            read_request(&mut Cursor::new(raw.as_bytes()), &mut buf, None),
            Err(ReadError::Malformed(_))
        ));
    }
}
