//! The server: accept loop, per-connection workers, request dispatch,
//! and graceful drain.
//!
//! Threading model: one accept thread polls the [`Transport`]; each
//! accepted connection gets a worker thread (connections are bounded
//! by `AdmissionConfig::max_connections`, so the thread count is too).
//! Workers block on resumable HTTP reads with a short timeout so they
//! observe the drain flag even on idle keep-alive connections.
//!
//! Graceful shutdown ([`ServerHandle::shutdown`]) follows the paper's
//! "no acknowledged write is ever lost" discipline: the accept loop
//! stops, requests already executing complete and are acknowledged,
//! requests arriving after the drain flag flips are *refused* with 503
//! before touching the engine (so they are never acknowledged), and
//! the engine is handed back to the caller only after every worker has
//! exited.

use crate::admission::{AdmissionConfig, AdmissionController, Decision};
use crate::auth::{Identity, TokenTable};
use crate::http::{self, ReadError, Request};
use crate::json::{obj, Json};
use crate::transport::{Conn, Transport};
use crate::wire::{self, WireAgg, WireError, WireOp, WireRows, WriteAck};
use esdb_common::RejectedCounts;
use esdb_core::Esdb;
use esdb_query::QueryOptions;
use esdb_telemetry::{EventKind, Labels, Telemetry};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const RUNNING: u8 = 0;
const DRAINING: u8 = 1;

/// How long a worker blocks on a socket read before re-checking the
/// drain flag.
const READ_POLL: Duration = Duration::from_millis(25);

/// Longest wall-clock time a worker waits for one request to finish
/// arriving once its first byte is in. Bounds both a client that
/// trickles bytes forever and one that stalls mid-request, so a
/// hostile sender cannot pin a worker thread (or a later drain)
/// indefinitely.
const REQUEST_DEADLINE: Duration = Duration::from_secs(10);

/// Once the drain flag flips, how long a worker keeps waiting for the
/// rest of a partially received request before abandoning it. Keeps
/// [`ServerHandle::shutdown`] from blocking on a stalled client; the
/// abandoned request was never acknowledged.
const DRAIN_GRACE: Duration = Duration::from_millis(500);

/// Server configuration: identity plus admission policy.
#[derive(Clone, Default)]
pub struct ServerConfig {
    /// Token → tenant table.
    pub tokens: TokenTable,
    /// Admission-control policy.
    pub admission: AdmissionConfig,
}

/// What happened during a graceful drain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DrainReport {
    /// Requests in flight when the drain began; all completed and were
    /// acknowledged.
    pub drained: u32,
    /// Requests refused with 503 after the drain began; none were
    /// acknowledged.
    pub refused: u64,
}

struct Shared {
    db: Mutex<Esdb>,
    reader: esdb_core::EsdbReader,
    writer: esdb_core::EsdbWriter,
    tokens: TokenTable,
    admission: AdmissionController,
    telemetry: Arc<Telemetry>,
    state: AtomicU8,
    /// 401/403 rejections (admission never sees these).
    rejected_auth: AtomicU64,
    /// Data-plane requests refused because the server was draining.
    refused_draining: AtomicU64,
}

impl Shared {
    fn draining(&self) -> bool {
        self.state.load(Ordering::Acquire) != RUNNING
    }

    /// Requests rejected before reaching the engine, by reason — the
    /// server-side extension of [`esdb_core::EsdbStats`]'s
    /// `requests_rejected`.
    fn rejected_counts(&self) -> RejectedCounts {
        let totals = self.admission.total_counts();
        RejectedCounts {
            auth: self.rejected_auth.load(Ordering::Relaxed),
            quota: totals.quota,
            rate: totals.rate,
            shed: totals.shed,
        }
    }
}

/// A running server. Dropping the handle aborts without draining;
/// call [`ServerHandle::shutdown`] for the graceful path.
pub struct ServerHandle {
    shared: Arc<Shared>,
    accept: Option<std::thread::JoinHandle<()>>,
    workers: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
    addr: String,
}

/// Starts serving `db` over `transport`.
pub fn start(db: Esdb, config: ServerConfig, transport: Box<dyn Transport>) -> ServerHandle {
    let telemetry = Arc::clone(db.telemetry());
    let admission = AdmissionController::new(
        config.admission,
        db.clock(),
        Arc::clone(&telemetry),
        Some(db.workload_monitor()),
    );
    let reader = db.reader();
    let writer = db.writer();
    let shared = Arc::new(Shared {
        db: Mutex::new(db),
        reader,
        writer,
        tokens: config.tokens,
        admission,
        telemetry,
        state: AtomicU8::new(RUNNING),
        rejected_auth: AtomicU64::new(0),
        refused_draining: AtomicU64::new(0),
    });
    let addr = transport.local_addr();
    let workers: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
    let accept = {
        let shared = Arc::clone(&shared);
        let workers = Arc::clone(&workers);
        std::thread::Builder::new()
            .name("esdb-server-accept".into())
            .spawn(move || accept_loop(shared, transport, workers))
            .expect("spawn accept thread")
    };
    ServerHandle {
        shared,
        accept: Some(accept),
        workers,
        addr,
    }
}

impl ServerHandle {
    /// The bound address, e.g. `127.0.0.1:39143`.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// The admission controller (tests read its counters).
    pub fn admission(&self) -> &AdmissionController {
        &self.shared.admission
    }

    /// Requests rejected before reaching the engine, by reason.
    pub fn rejected_counts(&self) -> RejectedCounts {
        self.shared.rejected_counts()
    }

    /// Drains gracefully and returns the engine plus a report.
    ///
    /// Ordering guarantee: every response acknowledged before this
    /// call returns reflects a write durably applied to the returned
    /// [`Esdb`]; every request refused during the drain got a 503 and
    /// was never applied.
    pub fn shutdown(mut self) -> (Esdb, DrainReport) {
        let in_flight = self.shared.admission.global_inflight();
        self.shared.telemetry.emit(
            EventKind::ServerDrainStarted { in_flight },
            Labels::none(),
            esdb_telemetry::NO_PARENT,
        );
        self.shared.state.store(DRAINING, Ordering::Release);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        // The accept thread has exited, so no new workers appear.
        let handles: Vec<_> = self.workers.lock().drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
        let refused = self.shared.refused_draining.load(Ordering::Relaxed);
        self.shared.telemetry.emit(
            EventKind::ServerDrainCompleted {
                drained: in_flight,
                refused,
            },
            Labels::none(),
            esdb_telemetry::NO_PARENT,
        );
        let shared = Arc::try_unwrap(self.shared)
            .ok()
            .expect("all worker threads joined, no Shared refs remain");
        (
            shared.db.into_inner(),
            DrainReport {
                drained: in_flight,
                refused,
            },
        )
    }
}

fn accept_loop(
    shared: Arc<Shared>,
    mut transport: Box<dyn Transport>,
    workers: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
) {
    let registry = Arc::clone(shared.telemetry.registry());
    while !shared.draining() {
        match transport.poll_accept() {
            Ok(Some(mut conn)) => {
                if !shared.admission.try_open_connection() {
                    let err = WireError::new("shed", "connection limit reached");
                    let mut w = WriteHalf(conn.as_mut());
                    let _ = http::write_response(
                        &mut w,
                        503,
                        "application/json",
                        &wire::encode_error(&err),
                        None,
                    );
                    continue;
                }
                registry
                    .gauge("esdb_server_connections", Labels::none())
                    .set(shared.admission.connections() as i64);
                let shared = Arc::clone(&shared);
                let handle = std::thread::Builder::new()
                    .name("esdb-server-conn".into())
                    .spawn(move || serve_conn(shared, conn))
                    .expect("spawn connection thread");
                workers.lock().push(handle);
            }
            Ok(None) => std::thread::sleep(Duration::from_millis(1)),
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

/// Borrowed `Read` view of a [`Conn`] (trait-object upcasting shim).
struct ReadHalf<'a>(&'a mut dyn Conn);
impl Read for ReadHalf<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        self.0.read(buf)
    }
}
/// Borrowed `Write` view of a [`Conn`].
struct WriteHalf<'a>(&'a mut dyn Conn);
impl Write for WriteHalf<'_> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.write(buf)
    }
    fn flush(&mut self) -> std::io::Result<()> {
        self.0.flush()
    }
}

fn serve_conn(shared: Arc<Shared>, mut conn: Box<dyn Conn>) {
    let _ = conn.set_read_timeout(Some(READ_POLL));
    let mut buf = Vec::new();
    // When the partially received request in `buf` started stalling
    // (first `TimedOut` with bytes pending). Bounds a client that
    // sends part of a request and then goes quiet.
    let mut partial_since: Option<Instant> = None;
    loop {
        let limit = if shared.draining() {
            DRAIN_GRACE
        } else {
            REQUEST_DEADLINE
        };
        let req = match http::read_request(
            &mut ReadHalf(conn.as_mut()),
            &mut buf,
            Some(Instant::now() + limit),
        ) {
            Ok(req) => {
                partial_since = None;
                req
            }
            Err(ReadError::TimedOut) => {
                if buf.is_empty() {
                    // Idle keep-alive connection: wait indefinitely,
                    // bail as soon as the drain flag flips.
                    partial_since = None;
                    if shared.draining() {
                        break;
                    }
                } else {
                    // Mid-request stall: resume reading, but not
                    // forever — and only briefly once draining.
                    let since = *partial_since.get_or_insert_with(Instant::now);
                    if since.elapsed() >= limit {
                        break;
                    }
                }
                continue;
            }
            // DeadlineExceeded (trickling sender), Eof, Malformed, Io.
            Err(_) => break,
        };
        let close = req.wants_close();
        let resp = handle_request(&shared, &req);
        let mut w = WriteHalf(conn.as_mut());
        if http::write_response(
            &mut w,
            resp.status,
            resp.content_type,
            &resp.body,
            resp.retry_after_ms,
        )
        .is_err()
        {
            break;
        }
        if close || (shared.draining() && buf.is_empty()) {
            break;
        }
    }
    shared.admission.close_connection();
    shared
        .telemetry
        .registry()
        .gauge("esdb_server_connections", Labels::none())
        .set(shared.admission.connections() as i64);
}

struct Resp {
    status: u16,
    content_type: &'static str,
    body: String,
    retry_after_ms: Option<u64>,
}

impl Resp {
    fn json(status: u16, body: String) -> Resp {
        Resp {
            status,
            content_type: "application/json",
            body,
            retry_after_ms: None,
        }
    }

    fn error(e: WireError) -> Resp {
        Resp {
            status: e.status(),
            content_type: "application/json",
            body: wire::encode_error(&e),
            retry_after_ms: e.retry_after_ms,
        }
    }
}

fn handle_request(shared: &Shared, req: &Request) -> Resp {
    let registry = shared.telemetry.registry();

    // Authenticate.
    let identity = match req.bearer_token().and_then(|t| shared.tokens.resolve(t)) {
        Some(id) => id,
        None => {
            shared.rejected_auth.fetch_add(1, Ordering::Relaxed);
            registry.add("esdb_server_rejected_total", Labels::stage("auth"), 1);
            return Resp::error(WireError::new("auth", "missing or unknown bearer token"));
        }
    };

    if let Some(admin_path) = req.path.strip_prefix("/admin") {
        if !identity.admin {
            shared.rejected_auth.fetch_add(1, Ordering::Relaxed);
            registry.add("esdb_server_rejected_total", Labels::stage("auth"), 1);
            return Resp::error(WireError::new("forbidden", "admin token required"));
        }
        return handle_admin(shared, req, admin_path);
    }

    let tenant = identity.tenant;
    registry.add("esdb_server_requests_total", Labels::tenant(tenant.0), 1);

    // Refuse data-plane work once draining — before admission, so a
    // refused request is never acknowledged and never counted admitted.
    if shared.draining() {
        shared.refused_draining.fetch_add(1, Ordering::Relaxed);
        return Resp::error(WireError::new("draining", "server is draining"));
    }

    // Admission control (admin identities still pass through it for
    // data-plane requests — admin bypass covers /admin only).
    let queued_at = Instant::now();
    let permit = match shared.admission.admit(tenant) {
        Decision::Admitted(p) => p,
        Decision::Rejected {
            reason,
            retry_after_ms,
        } => {
            registry.add(
                "esdb_server_rejected_total",
                Labels::stage(reason.stage()),
                1,
            );
            match reason {
                crate::admission::RejectReason::Shed => {
                    registry.add("esdb_server_shed_total", Labels::tenant(tenant.0), 1)
                }
                _ => registry.add("esdb_server_throttled_total", Labels::tenant(tenant.0), 1),
            }
            let mut e = WireError::new(
                reason.code(),
                format!("tenant {} {}", tenant.0, reason.stage()),
            );
            e.retry_after_ms = retry_after_ms;
            return Resp::error(e);
        }
    };
    registry.add("esdb_server_admitted_total", Labels::tenant(tenant.0), 1);
    registry.observe(
        "esdb_server_queue_wait_ns",
        Labels::tenant(tenant.0),
        queued_at.elapsed().as_nanos() as u64,
    );
    registry
        .gauge("esdb_server_inflight", Labels::none())
        .set(shared.admission.global_inflight() as i64);

    let started = Instant::now();
    let resp = dispatch(shared, req, identity);
    registry.observe(
        "esdb_server_request_ns",
        Labels::tenant(tenant.0),
        started.elapsed().as_nanos() as u64,
    );
    drop(permit);
    registry
        .gauge("esdb_server_inflight", Labels::none())
        .set(shared.admission.global_inflight() as i64);
    resp
}

fn dispatch(shared: &Shared, req: &Request, identity: Identity) -> Resp {
    let body = match std::str::from_utf8(&req.body) {
        Ok(b) => b,
        Err(_) => return Resp::error(WireError::new("bad_request", "non-utf8 body")),
    };
    match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/v1/write") => handle_write(shared, body, identity),
        ("POST", "/v1/query") => handle_query(shared, body, identity, false),
        ("POST", "/v1/aggregate") => handle_query(shared, body, identity, true),
        ("POST", "/v1/get") => match wire::decode_get_request(body) {
            Ok((tenant, record, created_at)) => {
                if tenant != identity.tenant && !identity.admin {
                    shared.rejected_auth.fetch_add(1, Ordering::Relaxed);
                    return Resp::error(WireError::new(
                        "forbidden",
                        format!("token is not tenant {}", tenant.0),
                    ));
                }
                let doc = shared.reader.get(tenant, record, created_at);
                Resp::json(200, wire::encode_get_response(doc.as_ref()))
            }
            Err(m) => Resp::error(WireError::new("bad_request", m)),
        },
        _ => Resp::error(WireError::new(
            "not_found",
            format!("no route {} {}", req.method, req.path),
        )),
    }
}

/// `/v1/query` and `/v1/aggregate`: decode, confine the SQL to the
/// token's tenant (admin tokens cross tenants), execute.
fn handle_query(shared: &Shared, body: &str, identity: Identity, aggregate: bool) -> Resp {
    let q = match wire::decode_query_request(body) {
        Ok(q) => q,
        Err(m) => return Resp::error(WireError::new("bad_request", m)),
    };
    if !identity.admin {
        if let Err(e) = crate::confine::ensure_confined(&q.sql, identity.tenant) {
            if e.code == "forbidden" {
                shared.rejected_auth.fetch_add(1, Ordering::Relaxed);
                shared.telemetry.registry().add(
                    "esdb_server_rejected_total",
                    Labels::stage("auth"),
                    1,
                );
            }
            return Resp::error(e);
        }
    }
    let opts = query_options(&q);
    if aggregate {
        match shared.reader.aggregate_opts(&q.sql, opts) {
            Ok(agg) => Resp::json(200, wire::encode_agg(&WireAgg::from_agg(&agg))),
            Err(e) => Resp::error(WireError::from_engine(&e)),
        }
    } else {
        match shared.reader.query_opts(&q.sql, opts) {
            Ok(rows) => Resp::json(200, wire::encode_rows(&WireRows::from_rows(&rows))),
            Err(e) => Resp::error(WireError::from_engine(&e)),
        }
    }
}

fn query_options(q: &wire::QueryRequest) -> QueryOptions {
    let mut opts = QueryOptions::default();
    if let Some(block) = q.block_execution {
        opts.block_execution = block;
    }
    opts
}

fn handle_write(shared: &Shared, body: &str, identity: Identity) -> Resp {
    let request = match wire::decode_write_request(body) {
        Ok(r) => r,
        Err(m) => return Resp::error(WireError::new("bad_request", m)),
    };
    if !identity.admin {
        if let Some(op) = request.ops.iter().find(|op| op.tenant() != identity.tenant) {
            shared.rejected_auth.fetch_add(1, Ordering::Relaxed);
            shared
                .telemetry
                .registry()
                .add("esdb_server_rejected_total", Labels::stage("auth"), 1);
            return Resp::error(WireError::new(
                "forbidden",
                format!("token is not tenant {}", op.tenant().0),
            ));
        }
    }
    let mut per_shard: BTreeMap<u32, u64> = BTreeMap::new();
    let mut applied = 0u64;
    for op in request.ops {
        match apply_op(shared, op) {
            Ok(shard) => {
                applied += 1;
                *per_shard.entry(shard).or_insert(0) += 1;
            }
            // Ops already applied stay applied; the error response is
            // not an acknowledgment of the remainder.
            Err(e) => return Resp::error(WireError::from_engine(&e)),
        }
    }
    let ack = WriteAck {
        applied,
        per_shard: per_shard.into_iter().collect(),
    };
    Resp::json(200, wire::encode_write_ack(&ack))
}

fn apply_op(shared: &Shared, op: WireOp) -> esdb_common::Result<u32> {
    shared.writer.write(op.into_write_op()).map(|s| s.0)
}

fn handle_admin(shared: &Shared, req: &Request, admin_path: &str) -> Resp {
    match (req.method.as_str(), admin_path) {
        ("GET", "/metrics") => {
            let snap = shared.telemetry.snapshot();
            Resp {
                status: 200,
                content_type: "text/plain; version=0.0.4",
                body: snap.to_prometheus(),
                retry_after_ms: None,
            }
        }
        ("GET", "/telemetry") => Resp::json(200, shared.telemetry.snapshot().to_json()),
        ("GET", "/bundle") => {
            let db = shared.db.lock();
            Resp::json(200, db.debug_bundle().to_json())
        }
        ("GET", "/rules") => {
            let db = shared.db.lock();
            let rules: Vec<Json> = db
                .rules_snapshot()
                .iter()
                .map(|r| {
                    obj(vec![
                        ("effective_time", Json::UInt(r.effective_time)),
                        ("offset", Json::UInt(r.offset as u64)),
                        (
                            "tenants",
                            Json::Arr(r.tenants.iter().map(|t| Json::UInt(t.0)).collect()),
                        ),
                    ])
                })
                .collect();
            Resp::json(
                200,
                obj(vec![
                    ("rule_count", Json::UInt(db.rule_count() as u64)),
                    ("rules", Json::Arr(rules)),
                ])
                .to_text(),
            )
        }
        ("GET", "/migrations") => {
            // Live migration lifecycle state, one entry per tenant whose
            // shard span ever grew under this instance; the raw fragment
            // is the same deterministic rendering the debug bundle uses.
            let db = shared.db.lock();
            let statuses = db.migrations_snapshot();
            drop(db);
            let active = statuses.iter().filter(|s| s.phase.is_active()).count();
            Resp::json(
                200,
                format!(
                    "{{\"active\": {}, \"migrations\": {}}}",
                    active,
                    esdb_core::migration_statuses_to_json(&statuses)
                ),
            )
        }
        ("GET", "/stats") => {
            let db = shared.db.lock();
            let mut stats = db.stats();
            drop(db);
            stats.requests_rejected = shared.rejected_counts();
            let admission = shared.admission.total_counts();
            Resp::json(
                200,
                obj(vec![
                    ("rules", Json::UInt(stats.rules as u64)),
                    ("writes", Json::UInt(stats.writes)),
                    ("write_errors", Json::UInt(stats.write_errors)),
                    ("queries", Json::UInt(stats.queries)),
                    ("live_docs", Json::UInt(stats.live_docs as u64)),
                    ("segments", Json::UInt(stats.segments as u64)),
                    ("size_bytes", Json::UInt(stats.size_bytes as u64)),
                    (
                        "requests_rejected",
                        obj(vec![
                            ("auth", Json::UInt(stats.requests_rejected.auth)),
                            ("quota", Json::UInt(stats.requests_rejected.quota)),
                            ("rate", Json::UInt(stats.requests_rejected.rate)),
                            ("shed", Json::UInt(stats.requests_rejected.shed)),
                        ]),
                    ),
                    (
                        "admission",
                        obj(vec![
                            ("issued", Json::UInt(admission.issued)),
                            ("admitted", Json::UInt(admission.admitted)),
                            ("rate", Json::UInt(admission.rate)),
                            ("quota", Json::UInt(admission.quota)),
                            ("shed", Json::UInt(admission.shed)),
                        ]),
                    ),
                    (
                        "connections",
                        Json::UInt(shared.admission.connections() as u64),
                    ),
                ])
                .to_text(),
            )
        }
        ("POST", "/refresh") => {
            let mut db = shared.db.lock();
            db.refresh();
            Resp::json(200, obj(vec![("refreshed", Json::Bool(true))]).to_text())
        }
        _ => Resp::error(WireError::new(
            "not_found",
            format!("no admin route {} {}", req.method, admin_path),
        )),
    }
}
