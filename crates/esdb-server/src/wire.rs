//! The wire protocol: JSON encodings of writes, queries, aggregates,
//! rows, and errors.
//!
//! Design rules:
//!
//! * **Lossless round-trip.** Every message satisfies
//!   `decode(encode(m)) == m`. Field values are *tagged* —
//!   `{"t": "int", "v": -3}` — so `Int`, `Timestamp`, and `Float` never
//!   collapse into one JSON number type, and floats travel as their
//!   shortest-round-trip *string* (`{"t": "float", "v": "1"}`) so an
//!   integral float can't be re-parsed as an integer. The proptests in
//!   `tests/tests/server_front.rs` pin this down for arbitrary
//!   documents, queries, acks, aggregates, and errors.
//! * **Version-prefixed paths.** Messages are bodies of `/v1/...`
//!   endpoints; adding fields is backward-compatible (decoders ignore
//!   unknown members), breaking changes bump the prefix.

use crate::json::{obj, parse, Json};
use esdb_common::{EsdbError, RecordId, TenantId, TimestampMs};
use esdb_doc::{Document, FieldValue, WriteKind, WriteOp};
use esdb_query::{AggResult, AggRow, QueryRows};

/// One write operation as it travels over the wire.
#[derive(Debug, Clone, PartialEq)]
pub enum WireOp {
    /// Insert a new document.
    Insert(Document),
    /// Replace an existing record (same routing triple).
    Update(Document),
    /// Tombstone a record by routing triple.
    Delete {
        /// Routing `k1`.
        tenant: TenantId,
        /// Routing `k2`.
        record: RecordId,
        /// Routing `tc`.
        created_at: TimestampMs,
    },
}

impl WireOp {
    /// The tenant this operation touches (enforced against the
    /// authenticated tenant by the server).
    pub fn tenant(&self) -> TenantId {
        match self {
            WireOp::Insert(d) | WireOp::Update(d) => d.tenant_id,
            WireOp::Delete { tenant, .. } => *tenant,
        }
    }

    /// Converts into the engine's write operation.
    pub fn into_write_op(self) -> WriteOp {
        match self {
            WireOp::Insert(d) => WriteOp::insert(d),
            WireOp::Update(d) => WriteOp::update(d),
            WireOp::Delete {
                tenant,
                record,
                created_at,
            } => WriteOp::delete(tenant, record, created_at),
        }
    }
}

/// Body of `POST /v1/write`.
#[derive(Debug, Clone, PartialEq)]
pub struct WriteRequest {
    /// Operations, applied in order.
    pub ops: Vec<WireOp>,
}

/// Success body of `POST /v1/write`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WriteAck {
    /// Operations applied (== acknowledged as durable in the translog).
    pub applied: u64,
    /// `(shard, ops applied to it)`, ascending by shard.
    pub per_shard: Vec<(u32, u64)>,
}

/// Body of `POST /v1/query` and `POST /v1/aggregate`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryRequest {
    /// The SQL text.
    pub sql: String,
    /// Executor override; `None` = server default (block execution on).
    pub block_execution: Option<bool>,
}

/// Success body of `POST /v1/query`: rows plus the work counters the
/// embedded API reports.
#[derive(Debug, Clone, PartialEq)]
pub struct WireRows {
    /// Matching documents, in result order.
    pub docs: Vec<Document>,
    /// Posting entries materialized while executing.
    pub postings_scanned: u64,
    /// Documents touched by scan filters.
    pub docs_scanned: u64,
}

impl WireRows {
    /// Projects the wire-visible part of an engine result.
    pub fn from_rows(rows: &QueryRows) -> Self {
        WireRows {
            docs: rows.docs.clone(),
            postings_scanned: rows.postings_scanned,
            docs_scanned: rows.docs_scanned,
        }
    }
}

/// Success body of `POST /v1/aggregate`.
#[derive(Debug, Clone, PartialEq)]
pub struct WireAgg {
    /// `(group key, values)` rows in group order.
    pub rows: Vec<(Option<FieldValue>, Vec<FieldValue>)>,
    /// Stored payloads the execution materialized (0 = pure pushdown).
    pub payload_reads: u64,
}

impl WireAgg {
    /// Projects the wire-visible part of an engine aggregate result.
    pub fn from_agg(agg: &AggResult) -> Self {
        WireAgg {
            rows: agg
                .rows
                .iter()
                .map(|r| (r.group.clone(), r.values.clone()))
                .collect(),
            payload_reads: agg.payload_reads,
        }
    }

    /// Rebuilds engine-shaped aggregate rows (for equivalence checks).
    pub fn to_rows(&self) -> Vec<AggRow> {
        self.rows
            .iter()
            .map(|(group, values)| AggRow {
                group: group.clone(),
                values: values.clone(),
            })
            .collect()
    }
}

/// An error response body (any non-2xx status).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// Stable machine-readable code (`"rate_limited"`, `"parse"`, ...).
    pub code: String,
    /// Human-readable detail.
    pub message: String,
    /// Suggested client back-off for `rate_limited`/`quota_exceeded`.
    pub retry_after_ms: Option<u64>,
}

impl WireError {
    /// An error with just a code and message.
    pub fn new(code: &str, message: impl Into<String>) -> Self {
        WireError {
            code: code.to_string(),
            message: message.into(),
            retry_after_ms: None,
        }
    }

    /// Maps an engine error onto a wire code.
    pub fn from_engine(e: &EsdbError) -> Self {
        let code = match e {
            EsdbError::Parse(_) => "parse",
            EsdbError::Plan(_) => "plan",
            EsdbError::Execution(_) => "execution",
            EsdbError::InvalidDocument(_) => "invalid_document",
            EsdbError::UnknownCollection(_) => "unknown_collection",
            EsdbError::Io(_) => "io",
            EsdbError::Corruption(_) => "corruption",
            EsdbError::WorkloadBlocked { .. } => "workload_blocked",
            EsdbError::Retry(_) => "retry",
            _ => "internal",
        };
        WireError::new(code, e.to_string())
    }

    /// The HTTP status the server pairs with this code.
    pub fn status(&self) -> u16 {
        match self.code.as_str() {
            "auth" => 401,
            "forbidden" => 403,
            "not_found" => 404,
            "parse" | "plan" | "invalid_document" | "unknown_collection" | "bad_request" => 400,
            "too_large" => 413,
            "rate_limited" | "quota_exceeded" => 429,
            "shed" | "draining" => 503,
            _ => 500,
        }
    }
}

// ---------------------------------------------------------------------
// Field values
// ---------------------------------------------------------------------

/// Encodes a field value as a tagged object.
pub fn encode_value(v: &FieldValue) -> Json {
    match v {
        FieldValue::Null => obj(vec![("t", Json::Str("null".into()))]),
        FieldValue::Bool(b) => obj(vec![("t", Json::Str("bool".into())), ("v", Json::Bool(*b))]),
        FieldValue::Int(i) => obj(vec![("t", Json::Str("int".into())), ("v", Json::Int(*i))]),
        FieldValue::Float(f) => obj(vec![
            ("t", Json::Str("float".into())),
            // Shortest round-trip decimal, carried as a string so the
            // JSON layer can never re-type it.
            ("v", Json::Str(format!("{f}"))),
        ]),
        FieldValue::Timestamp(t) => obj(vec![("t", Json::Str("ts".into())), ("v", Json::UInt(*t))]),
        FieldValue::Str(s) => obj(vec![
            ("t", Json::Str("str".into())),
            ("v", Json::Str(s.clone())),
        ]),
    }
}

/// Decodes a tagged field value.
pub fn decode_value(j: &Json) -> Result<FieldValue, String> {
    let tag = j
        .get("t")
        .and_then(Json::as_str)
        .ok_or("field value missing tag")?;
    let v = j.get("v");
    match tag {
        "null" => Ok(FieldValue::Null),
        "bool" => v
            .and_then(Json::as_bool)
            .map(FieldValue::Bool)
            .ok_or_else(|| "bad bool value".to_string()),
        "int" => v
            .and_then(Json::as_i64)
            .map(FieldValue::Int)
            .ok_or_else(|| "bad int value".to_string()),
        "float" => v
            .and_then(Json::as_str)
            .and_then(|s| s.parse::<f64>().ok())
            .map(FieldValue::Float)
            .ok_or_else(|| "bad float value".to_string()),
        "ts" => v
            .and_then(Json::as_u64)
            .map(FieldValue::Timestamp)
            .ok_or_else(|| "bad timestamp value".to_string()),
        "str" => v
            .and_then(Json::as_str)
            .map(|s| FieldValue::Str(s.to_string()))
            .ok_or_else(|| "bad str value".to_string()),
        other => Err(format!("unknown field value tag {other:?}")),
    }
}

/// `Some(v)` → tagged object, `None` → JSON null (GROUP BY's missing
/// group).
fn encode_opt_value(v: &Option<FieldValue>) -> Json {
    match v {
        Some(v) => encode_value(v),
        None => Json::Null,
    }
}

fn decode_opt_value(j: &Json) -> Result<Option<FieldValue>, String> {
    match j {
        Json::Null => Ok(None),
        other => decode_value(other).map(Some),
    }
}

// ---------------------------------------------------------------------
// Documents
// ---------------------------------------------------------------------

/// Encodes a document (routing triple + ordered fields + attrs).
pub fn encode_doc(d: &Document) -> Json {
    obj(vec![
        ("tenant", Json::UInt(d.tenant_id.0)),
        ("record", Json::UInt(d.record_id.0)),
        ("created_at", Json::UInt(d.created_at)),
        (
            "fields",
            Json::Arr(
                d.fields()
                    .map(|(n, v)| Json::Arr(vec![Json::Str(n.to_string()), encode_value(v)]))
                    .collect(),
            ),
        ),
        (
            "attrs",
            Json::Arr(
                d.attrs()
                    .iter()
                    .map(|(k, v)| Json::Arr(vec![Json::Str(k.clone()), Json::Str(v.clone())]))
                    .collect(),
            ),
        ),
    ])
}

/// Decodes a document (builder re-sorts fields, so decode ∘ encode is
/// the identity — fields are emitted sorted).
pub fn decode_doc(j: &Json) -> Result<Document, String> {
    let tenant = j
        .get("tenant")
        .and_then(Json::as_u64)
        .ok_or("doc missing tenant")?;
    let record = j
        .get("record")
        .and_then(Json::as_u64)
        .ok_or("doc missing record")?;
    let created_at = j
        .get("created_at")
        .and_then(Json::as_u64)
        .ok_or("doc missing created_at")?;
    let mut b = Document::builder(TenantId(tenant), RecordId(record), created_at);
    if let Some(fields) = j.get("fields").and_then(Json::as_arr) {
        for f in fields {
            let pair = f.as_arr().ok_or("bad field pair")?;
            let [name, value] = pair else {
                return Err("bad field pair arity".to_string());
            };
            let name = name.as_str().ok_or("bad field name")?;
            b = b.field(name, decode_value(value)?);
        }
    }
    if let Some(attrs) = j.get("attrs").and_then(Json::as_arr) {
        for a in attrs {
            let pair = a.as_arr().ok_or("bad attr pair")?;
            let [k, v] = pair else {
                return Err("bad attr pair arity".to_string());
            };
            b = b.attr(
                k.as_str().ok_or("bad attr key")?,
                v.as_str().ok_or("bad attr value")?,
            );
        }
    }
    Ok(b.build())
}

// ---------------------------------------------------------------------
// Requests / responses
// ---------------------------------------------------------------------

/// Encodes a write request body.
pub fn encode_write_request(r: &WriteRequest) -> String {
    let ops: Vec<Json> = r
        .ops
        .iter()
        .map(|op| match op {
            WireOp::Insert(d) => obj(vec![
                ("op", Json::Str("insert".into())),
                ("doc", encode_doc(d)),
            ]),
            WireOp::Update(d) => obj(vec![
                ("op", Json::Str("update".into())),
                ("doc", encode_doc(d)),
            ]),
            WireOp::Delete {
                tenant,
                record,
                created_at,
            } => obj(vec![
                ("op", Json::Str("delete".into())),
                ("tenant", Json::UInt(tenant.0)),
                ("record", Json::UInt(record.0)),
                ("created_at", Json::UInt(*created_at)),
            ]),
        })
        .collect();
    obj(vec![("ops", Json::Arr(ops))]).to_text()
}

/// Decodes a write request body.
pub fn decode_write_request(body: &str) -> Result<WriteRequest, String> {
    let j = parse(body)?;
    let ops = j.get("ops").and_then(Json::as_arr).ok_or("missing ops")?;
    let mut out = Vec::with_capacity(ops.len());
    for op in ops {
        let kind = op
            .get("op")
            .and_then(Json::as_str)
            .ok_or("op missing kind")?;
        out.push(match kind {
            "insert" => WireOp::Insert(decode_doc(op.get("doc").ok_or("insert missing doc")?)?),
            "update" => WireOp::Update(decode_doc(op.get("doc").ok_or("update missing doc")?)?),
            "delete" => WireOp::Delete {
                tenant: TenantId(
                    op.get("tenant")
                        .and_then(Json::as_u64)
                        .ok_or("delete missing tenant")?,
                ),
                record: RecordId(
                    op.get("record")
                        .and_then(Json::as_u64)
                        .ok_or("delete missing record")?,
                ),
                created_at: op
                    .get("created_at")
                    .and_then(Json::as_u64)
                    .ok_or("delete missing created_at")?,
            },
            other => return Err(format!("unknown op kind {other:?}")),
        });
    }
    Ok(WriteRequest { ops: out })
}

/// Encodes a write acknowledgment body.
pub fn encode_write_ack(a: &WriteAck) -> String {
    obj(vec![
        ("applied", Json::UInt(a.applied)),
        (
            "per_shard",
            Json::Arr(
                a.per_shard
                    .iter()
                    .map(|(s, n)| Json::Arr(vec![Json::UInt(*s as u64), Json::UInt(*n)]))
                    .collect(),
            ),
        ),
    ])
    .to_text()
}

/// Decodes a write acknowledgment body.
pub fn decode_write_ack(body: &str) -> Result<WriteAck, String> {
    let j = parse(body)?;
    let applied = j
        .get("applied")
        .and_then(Json::as_u64)
        .ok_or("ack missing applied")?;
    let mut per_shard = Vec::new();
    for pair in j
        .get("per_shard")
        .and_then(Json::as_arr)
        .ok_or("ack missing per_shard")?
    {
        let [s, n] = pair.as_arr().ok_or("bad per_shard pair")? else {
            return Err("bad per_shard arity".to_string());
        };
        per_shard.push((
            s.as_u64().ok_or("bad shard")? as u32,
            n.as_u64().ok_or("bad count")?,
        ));
    }
    Ok(WriteAck { applied, per_shard })
}

/// Encodes a query/aggregate request body.
pub fn encode_query_request(q: &QueryRequest) -> String {
    let mut members = vec![("sql", Json::Str(q.sql.clone()))];
    if let Some(b) = q.block_execution {
        members.push(("block_execution", Json::Bool(b)));
    }
    obj(members).to_text()
}

/// Decodes a query/aggregate request body.
pub fn decode_query_request(body: &str) -> Result<QueryRequest, String> {
    let j = parse(body)?;
    Ok(QueryRequest {
        sql: j
            .get("sql")
            .and_then(Json::as_str)
            .ok_or("missing sql")?
            .to_string(),
        block_execution: j.get("block_execution").and_then(Json::as_bool),
    })
}

/// Encodes a query result body.
pub fn encode_rows(r: &WireRows) -> String {
    obj(vec![
        ("rows", Json::Arr(r.docs.iter().map(encode_doc).collect())),
        ("postings_scanned", Json::UInt(r.postings_scanned)),
        ("docs_scanned", Json::UInt(r.docs_scanned)),
    ])
    .to_text()
}

/// Decodes a query result body.
pub fn decode_rows(body: &str) -> Result<WireRows, String> {
    let j = parse(body)?;
    let rows = j.get("rows").and_then(Json::as_arr).ok_or("missing rows")?;
    Ok(WireRows {
        docs: rows.iter().map(decode_doc).collect::<Result<_, _>>()?,
        postings_scanned: j
            .get("postings_scanned")
            .and_then(Json::as_u64)
            .ok_or("missing postings_scanned")?,
        docs_scanned: j
            .get("docs_scanned")
            .and_then(Json::as_u64)
            .ok_or("missing docs_scanned")?,
    })
}

/// Encodes an aggregate result body.
pub fn encode_agg(a: &WireAgg) -> String {
    obj(vec![
        (
            "rows",
            Json::Arr(
                a.rows
                    .iter()
                    .map(|(group, values)| {
                        obj(vec![
                            ("group", encode_opt_value(group)),
                            (
                                "values",
                                Json::Arr(values.iter().map(encode_value).collect()),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("payload_reads", Json::UInt(a.payload_reads)),
    ])
    .to_text()
}

/// Decodes an aggregate result body.
pub fn decode_agg(body: &str) -> Result<WireAgg, String> {
    let j = parse(body)?;
    let mut rows = Vec::new();
    for r in j.get("rows").and_then(Json::as_arr).ok_or("missing rows")? {
        let group = decode_opt_value(r.get("group").ok_or("agg row missing group")?)?;
        let values = r
            .get("values")
            .and_then(Json::as_arr)
            .ok_or("agg row missing values")?
            .iter()
            .map(decode_value)
            .collect::<Result<_, _>>()?;
        rows.push((group, values));
    }
    Ok(WireAgg {
        rows,
        payload_reads: j
            .get("payload_reads")
            .and_then(Json::as_u64)
            .ok_or("missing payload_reads")?,
    })
}

/// Encodes an error body.
pub fn encode_error(e: &WireError) -> String {
    let mut members = vec![
        ("code", Json::Str(e.code.clone())),
        ("message", Json::Str(e.message.clone())),
    ];
    if let Some(ms) = e.retry_after_ms {
        members.push(("retry_after_ms", Json::UInt(ms)));
    }
    obj(vec![("error", obj(members))]).to_text()
}

/// Decodes an error body.
pub fn decode_error(body: &str) -> Result<WireError, String> {
    let j = parse(body)?;
    let e = j.get("error").ok_or("missing error object")?;
    Ok(WireError {
        code: e
            .get("code")
            .and_then(Json::as_str)
            .ok_or("error missing code")?
            .to_string(),
        message: e
            .get("message")
            .and_then(Json::as_str)
            .ok_or("error missing message")?
            .to_string(),
        retry_after_ms: e.get("retry_after_ms").and_then(Json::as_u64),
    })
}

/// Encodes a point-lookup request (`POST /v1/get`).
pub fn encode_get_request(tenant: TenantId, record: RecordId, created_at: TimestampMs) -> String {
    obj(vec![
        ("tenant", Json::UInt(tenant.0)),
        ("record", Json::UInt(record.0)),
        ("created_at", Json::UInt(created_at)),
    ])
    .to_text()
}

/// Decodes a point-lookup request.
pub fn decode_get_request(body: &str) -> Result<(TenantId, RecordId, TimestampMs), String> {
    let j = parse(body)?;
    Ok((
        TenantId(
            j.get("tenant")
                .and_then(Json::as_u64)
                .ok_or("missing tenant")?,
        ),
        RecordId(
            j.get("record")
                .and_then(Json::as_u64)
                .ok_or("missing record")?,
        ),
        j.get("created_at")
            .and_then(Json::as_u64)
            .ok_or("missing created_at")?,
    ))
}

/// Encodes a point-lookup response (`doc: null` = not found).
pub fn encode_get_response(doc: Option<&Document>) -> String {
    obj(vec![("doc", doc.map_or(Json::Null, encode_doc))]).to_text()
}

/// Decodes a point-lookup response.
pub fn decode_get_response(body: &str) -> Result<Option<Document>, String> {
    let j = parse(body)?;
    match j.get("doc").ok_or("missing doc")? {
        Json::Null => Ok(None),
        d => decode_doc(d).map(Some),
    }
}

/// `WriteKind` as its wire tag (used by logs).
pub fn write_kind_name(kind: WriteKind) -> &'static str {
    match kind {
        WriteKind::Insert => "insert",
        WriteKind::Update => "update",
        WriteKind::Delete => "delete",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_doc() -> Document {
        Document::builder(TenantId(10086), RecordId(7), 1_000)
            .field("status", 1i64)
            .field("amount", FieldValue::Float(3.25))
            .field("flag", FieldValue::Bool(true))
            .field("none", FieldValue::Null)
            .field("when", FieldValue::Timestamp(123_456))
            .field("title", "rust \"quoted\" \n book")
            .attr("color", "red")
            .attr("size", "xl")
            .build()
    }

    #[test]
    fn doc_round_trips() {
        let d = sample_doc();
        assert_eq!(
            decode_doc(&parse(&encode_doc(&d).to_text()).unwrap()).unwrap(),
            d
        );
    }

    #[test]
    fn integral_float_stays_float() {
        let d = Document::builder(TenantId(1), RecordId(1), 1)
            .field("amount", FieldValue::Float(1.0))
            .build();
        let back = decode_doc(&parse(&encode_doc(&d).to_text()).unwrap()).unwrap();
        assert_eq!(back.get("amount"), Some(FieldValue::Float(1.0)));
        assert_eq!(back, d);
    }

    #[test]
    fn write_request_round_trips() {
        let r = WriteRequest {
            ops: vec![
                WireOp::Insert(sample_doc()),
                WireOp::Update(sample_doc()),
                WireOp::Delete {
                    tenant: TenantId(3),
                    record: RecordId(9),
                    created_at: 77,
                },
            ],
        };
        assert_eq!(decode_write_request(&encode_write_request(&r)).unwrap(), r);
    }

    #[test]
    fn ack_rows_agg_error_round_trip() {
        let a = WriteAck {
            applied: 3,
            per_shard: vec![(0, 1), (5, 2)],
        };
        assert_eq!(decode_write_ack(&encode_write_ack(&a)).unwrap(), a);

        let rows = WireRows {
            docs: vec![sample_doc()],
            postings_scanned: 10,
            docs_scanned: 4,
        };
        assert_eq!(decode_rows(&encode_rows(&rows)).unwrap(), rows);

        let agg = WireAgg {
            rows: vec![
                (None, vec![FieldValue::Int(3)]),
                (
                    Some(FieldValue::Str("zj".into())),
                    vec![FieldValue::Float(2.5), FieldValue::Int(1)],
                ),
            ],
            payload_reads: 0,
        };
        assert_eq!(decode_agg(&encode_agg(&agg)).unwrap(), agg);

        let e = WireError {
            code: "rate_limited".into(),
            message: "tenant 5 over budget".into(),
            retry_after_ms: Some(40),
        };
        assert_eq!(decode_error(&encode_error(&e)).unwrap(), e);
        assert_eq!(e.status(), 429);
    }
}
