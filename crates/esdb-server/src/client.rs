//! A small blocking client for the wire protocol, used by the
//! integration tests, the `server_admission` bench, and the README's
//! example session.

use crate::http::{self, ReadError, Response};
use crate::wire::{
    self, QueryRequest, WireAgg, WireError, WireOp, WireRows, WriteAck, WriteRequest,
};
use esdb_common::{RecordId, TenantId, TimestampMs};
use esdb_doc::Document;
use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;

/// Client-side failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientError {
    /// The server answered with an error body (status + decoded error).
    Server {
        /// HTTP status.
        status: u16,
        /// Decoded error body.
        error: WireError,
    },
    /// Socket-level failure.
    Io(String),
    /// The response could not be decoded.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Server { status, error } => {
                write!(f, "server error {status} {}: {}", error.code, error.message)
            }
            ClientError::Io(m) => write!(f, "io error: {m}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl ClientError {
    /// Whether this is a 429/503 worth retrying after a back-off.
    pub fn is_throttle(&self) -> bool {
        matches!(
            self,
            ClientError::Server { status, .. } if *status == 429 || *status == 503
        )
    }

    /// Server-suggested back-off, if any.
    pub fn retry_after_ms(&self) -> Option<u64> {
        match self {
            ClientError::Server { error, .. } => error.retry_after_ms,
            _ => None,
        }
    }
}

/// A persistent connection speaking the `/v1` protocol.
pub struct EsdbClient {
    stream: TcpStream,
    token: String,
    buf: Vec<u8>,
}

impl EsdbClient {
    /// Connects to `addr` (e.g. `"127.0.0.1:39143"`) with a bearer
    /// token.
    pub fn connect(addr: &str, token: &str) -> Result<EsdbClient, ClientError> {
        let stream = TcpStream::connect(addr).map_err(|e| ClientError::Io(e.to_string()))?;
        stream
            .set_nodelay(true)
            .map_err(|e| ClientError::Io(e.to_string()))?;
        Ok(EsdbClient {
            stream,
            token: token.to_string(),
            buf: Vec::new(),
        })
    }

    /// Sets the socket read timeout (None = block forever).
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> Result<(), ClientError> {
        self.stream
            .set_read_timeout(timeout)
            .map_err(|e| ClientError::Io(e.to_string()))
    }

    fn request(&mut self, method: &str, path: &str, body: &str) -> Result<Response, ClientError> {
        let head = format!(
            "{method} {path} HTTP/1.1\r\nauthorization: Bearer {}\r\ncontent-length: {}\r\n\r\n",
            self.token,
            body.len()
        );
        self.stream
            .write_all(head.as_bytes())
            .and_then(|_| self.stream.write_all(body.as_bytes()))
            .and_then(|_| self.stream.flush())
            .map_err(|e| ClientError::Io(e.to_string()))?;
        loop {
            match http::read_response(&mut self.stream, &mut self.buf) {
                Ok(resp) => return Ok(resp),
                Err(ReadError::TimedOut) => continue,
                Err(e) => return Err(ClientError::Io(format!("{e:?}"))),
            }
        }
    }

    /// Sends a request and decodes a 2xx body with `decode`, or the
    /// error body otherwise.
    fn call<T>(
        &mut self,
        method: &str,
        path: &str,
        body: &str,
        decode: impl FnOnce(&str) -> Result<T, String>,
    ) -> Result<T, ClientError> {
        let resp = self.request(method, path, body)?;
        let text = resp.text().map_err(ClientError::Protocol)?;
        if resp.status / 100 == 2 {
            decode(text).map_err(ClientError::Protocol)
        } else {
            let error = wire::decode_error(text)
                .unwrap_or_else(|_| WireError::new("internal", text.to_string()));
            Err(ClientError::Server {
                status: resp.status,
                error,
            })
        }
    }

    /// Applies a batch of write operations.
    pub fn write(&mut self, ops: Vec<WireOp>) -> Result<WriteAck, ClientError> {
        let body = wire::encode_write_request(&WriteRequest { ops });
        self.call("POST", "/v1/write", &body, wire::decode_write_ack)
    }

    /// Inserts one document.
    pub fn insert(&mut self, doc: Document) -> Result<WriteAck, ClientError> {
        self.write(vec![WireOp::Insert(doc)])
    }

    /// Inserts one document, retrying 429/503 responses with the
    /// server-suggested back-off until acknowledged or `attempts` runs
    /// out. Returns the number of throttled attempts alongside the ack.
    pub fn insert_with_retry(
        &mut self,
        doc: Document,
        attempts: u32,
    ) -> Result<(WriteAck, u32), ClientError> {
        let mut throttled = 0u32;
        for _ in 0..attempts.max(1) {
            match self.insert(doc.clone()) {
                Ok(ack) => return Ok((ack, throttled)),
                Err(e) if e.is_throttle() => {
                    throttled += 1;
                    let ms = e.retry_after_ms().unwrap_or(5).clamp(1, 100);
                    std::thread::sleep(Duration::from_millis(ms));
                }
                Err(e) => return Err(e),
            }
        }
        Err(ClientError::Protocol(format!(
            "write still throttled after {attempts} attempts"
        )))
    }

    /// Runs a SQL query.
    pub fn query(&mut self, sql: &str) -> Result<WireRows, ClientError> {
        let body = wire::encode_query_request(&QueryRequest {
            sql: sql.to_string(),
            block_execution: None,
        });
        self.call("POST", "/v1/query", &body, wire::decode_rows)
    }

    /// Runs an aggregate SQL query.
    pub fn aggregate(&mut self, sql: &str) -> Result<WireAgg, ClientError> {
        let body = wire::encode_query_request(&QueryRequest {
            sql: sql.to_string(),
            block_execution: None,
        });
        self.call("POST", "/v1/aggregate", &body, wire::decode_agg)
    }

    /// Point lookup by routing triple.
    pub fn get(
        &mut self,
        tenant: TenantId,
        record: RecordId,
        created_at: TimestampMs,
    ) -> Result<Option<Document>, ClientError> {
        let body = wire::encode_get_request(tenant, record, created_at);
        self.call("POST", "/v1/get", &body, wire::decode_get_response)
    }

    /// Fetches the Prometheus metrics text (admin token required).
    pub fn admin_metrics(&mut self) -> Result<String, ClientError> {
        self.call("GET", "/admin/metrics", "", |t| Ok(t.to_string()))
    }

    /// Fetches the telemetry snapshot JSON (admin token required).
    pub fn admin_telemetry(&mut self) -> Result<String, ClientError> {
        self.call("GET", "/admin/telemetry", "", |t| Ok(t.to_string()))
    }

    /// Fetches the debug bundle JSON (admin token required).
    pub fn admin_bundle(&mut self) -> Result<String, ClientError> {
        self.call("GET", "/admin/bundle", "", |t| Ok(t.to_string()))
    }

    /// Fetches the rule-list JSON (admin token required).
    pub fn admin_rules(&mut self) -> Result<String, ClientError> {
        self.call("GET", "/admin/rules", "", |t| Ok(t.to_string()))
    }

    /// Fetches the live-migration state JSON (admin token required).
    pub fn admin_migrations(&mut self) -> Result<String, ClientError> {
        self.call("GET", "/admin/migrations", "", |t| Ok(t.to_string()))
    }

    /// Fetches the server stats JSON (admin token required).
    pub fn admin_stats(&mut self) -> Result<String, ClientError> {
        self.call("GET", "/admin/stats", "", |t| Ok(t.to_string()))
    }

    /// Publishes buffered writes to the read snapshots (admin token
    /// required).
    pub fn admin_refresh(&mut self) -> Result<(), ClientError> {
        self.call("POST", "/admin/refresh", "", |_| Ok(()))
    }
}
