//! Flash sale on the simulated cluster: the Fig. 14 scenario. A steady
//! base workload runs for a minute, then two *groups of hotspots* arrive
//! (fresh sellers suddenly going viral at 60 s and 150 s). Dynamic
//! secondary hashing dips and recovers within one monitor period plus the
//! commit wait; hashing never recovers; double hashing is unaffected.
//!
//! ```sh
//! cargo run -p esdb-examples --release --bin flash_sale
//! ```

use esdb_cluster::{ClusterConfig, PolicySpec, SimCluster};
use esdb_examples::bar;
use esdb_workload::{RateSchedule, TraceGenerator};

const DURATION_S: u64 = 240;
/// Steady background traffic (below every policy's saturation point).
const BASE_RATE: f64 = 105_000.0;
/// Each hotspot group adds this much traffic over 3 fresh sellers.
const HOTSPOT_RATE: f64 = 35_000.0;
const WAVES: [u64; 2] = [60_000, 150_000];

fn run(policy: PolicySpec) -> Vec<(u64, f64)> {
    let mut cfg = ClusterConfig::paper(policy);
    cfg.monitor_period_ms = 10_000;
    cfg.consensus_t_ms = 5_000;
    let tick = cfg.tick_ms;
    let mut cluster = SimCluster::new(cfg);
    let mut base = TraceGenerator::new(100_000, 0.8, RateSchedule::constant(BASE_RATE), 21);
    let mut overlay: Option<TraceGenerator> = None;

    let mut series = Vec::new();
    let mut window_completed = 0u64;
    for t in 0..(DURATION_S * 1_000 / tick) {
        let now = cluster.now();
        if let Some(i) = WAVES.iter().position(|&w| w == now) {
            // A new group of 3 hotspot sellers replaces the previous group.
            overlay = Some(
                TraceGenerator::new(3, 0.0, RateSchedule::constant(HOTSPOT_RATE), 100 + i as u64)
                    .with_offsets(1_000_000 * (i as u64 + 1), 1_000_000_000 * (i as u64 + 1)),
            );
        }
        let mut events = base.tick(now, tick);
        if let Some(o) = overlay.as_mut() {
            events.extend(o.tick(now, tick));
        }
        cluster.step(events);
        window_completed += cluster
            .report_so_far()
            .ticks
            .last()
            .expect("tick")
            .completed;
        if (t + 1) % (5_000 / tick) == 0 {
            series.push((now / 1_000, window_completed as f64 / 5.0));
            window_completed = 0;
        }
    }
    series
}

fn main() {
    println!(
        "Flash-sale timeline: {BASE_RATE:.0} writes/s base + {HOTSPOT_RATE:.0} writes/s \
         hotspot groups at 60s and 150s\n"
    );
    let policies = [
        PolicySpec::Hashing,
        PolicySpec::DoubleHashing { s: 8 },
        PolicySpec::Dynamic,
    ];
    let mut all = Vec::new();
    for p in policies {
        println!("simulating {} ...", p.label());
        all.push((p.label(), run(p)));
    }
    println!("\n time |  completed writes/s (5s windows)");
    for (label, series) in &all {
        println!("\n-- {label} --");
        let max = series.iter().map(|&(_, v)| v).fold(0.0, f64::max);
        for (t, v) in series {
            if t % 10 == 4 {
                println!("  {t:>4}s {v:>9.0}  {}", bar(*v, max, 50));
            }
        }
    }
    println!(
        "\nNote how 'Dynamic secondary hashing' dips when each hotspot group \
         arrives and recovers after the monitor period + commit wait, while \
         'Hashing' never recovers (Fig. 14 of the paper)."
    );
}
