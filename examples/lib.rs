//! Shared helpers for the ESDB-RS examples.

/// Renders a horizontal ASCII bar of width proportional to
/// `value / max * width`.
pub fn bar(value: f64, max: f64, width: usize) -> String {
    if max <= 0.0 {
        return String::new();
    }
    let n = ((value / max) * width as f64).round() as usize;
    "#".repeat(n.min(width))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bar_scales() {
        assert_eq!(bar(5.0, 10.0, 10), "#####");
        assert_eq!(bar(10.0, 10.0, 10), "##########");
        assert_eq!(bar(0.0, 10.0, 10), "");
        assert_eq!(bar(1.0, 0.0, 10), "");
    }
}
