//! Telemetry dump: run a small skewed workload, then print everything
//! the observability layer collected — the Prometheus text exposition,
//! the JSON snapshot, and the slow-query log.
//!
//! ```sh
//! cargo run -p esdb-examples --bin telemetry_dump
//! cargo run -p esdb-examples --bin telemetry_dump -- --json
//! ```

use esdb_common::{RecordId, TenantId};
use esdb_core::{Esdb, EsdbConfig};
use esdb_doc::{CollectionSchema, Document};
use esdb_telemetry::TelemetryConfig;

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    let dir = std::env::temp_dir().join("esdb-telemetry-dump");
    let _ = std::fs::remove_dir_all(&dir);

    // Trace every request and slow-log everything over 1 µs so the dump
    // has material; production defaults sample 1-in-8 and log at 50 ms.
    let mut db = Esdb::open(
        CollectionSchema::transaction_logs(),
        EsdbConfig::new(&dir)
            .shards(4)
            .telemetry_config(TelemetryConfig {
                trace_sample_every: 1,
                slow_query_threshold_us: 1,
                ..TelemetryConfig::default()
            }),
    )
    .expect("open esdb");

    // A hot tenant (10086) and a tail of cold ones — the paper's skew.
    let day = 1_631_750_400_000u64;
    for r in 0..400u64 {
        let tenant = if r % 10 < 8 { 10086 } else { 20_000 + r };
        db.insert(
            Document::builder(TenantId(tenant), RecordId(r), day + r * 1_000)
                .field("status", (r % 2) as i64)
                .field("group", (r % 5) as i64)
                .field("auction_title", format!("auction item {r}"))
                .build(),
        )
        .expect("insert");
    }
    db.refresh();

    for _ in 0..3 {
        db.query(
            "SELECT * FROM transaction_logs WHERE tenant_id = 10086 AND status = 1 \
             ORDER BY created_time DESC LIMIT 20",
        )
        .expect("query");
    }
    // Tenantless fan-out: touches every shard, including near-empty ones.
    db.query("SELECT * FROM transaction_logs WHERE status = 0")
        .expect("query");

    let snapshot = db.telemetry_snapshot();
    if json {
        println!("{}", snapshot.to_json());
        return;
    }

    println!("==== Prometheus exposition ====");
    print!("{}", snapshot.to_prometheus());

    println!(
        "\n==== Slow-query log ({} entries) ====",
        db.slow_queries().len()
    );
    for (i, e) in db.slow_queries().iter().enumerate() {
        println!(
            "[{i}] {:.3} ms  fanout={} tenant={:?} fingerprint={:032x}",
            e.total_ns as f64 / 1e6,
            e.fanout,
            e.tenant,
            e.fingerprint,
        );
        println!("    sql:  {}", e.sql);
        for line in e.plan.lines() {
            println!("    plan: {line}");
        }
        for s in &e.stages {
            println!(
                "    stage {:<12} shard={:<4} {:>10} ns",
                s.stage,
                s.shard.map_or("-".into(), |s| s.to_string()),
                s.dur_ns,
            );
        }
    }
}
