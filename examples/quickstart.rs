//! Quickstart: open an embedded ESDB, write transaction logs, query with
//! SQL.
//!
//! ```sh
//! cargo run -p esdb-examples --bin quickstart
//! ```

use esdb_common::{RecordId, TenantId};
use esdb_core::{Esdb, EsdbConfig};
use esdb_doc::{CollectionSchema, Document, FieldValue};

fn main() {
    let dir = std::env::temp_dir().join("esdb-quickstart");
    let _ = std::fs::remove_dir_all(&dir);

    // The paper's transaction-log schema: structured columns, a full-text
    // auction title, a composite index on (tenant_id, created_time), and
    // frequency-based indexing over the "attributes" column.
    let mut db =
        Esdb::open(CollectionSchema::transaction_logs(), EsdbConfig::new(&dir)).expect("open esdb");

    // A bookstore's day of sales.
    let day = 1_631_750_400_000u64; // 2021-09-16 00:00:00
    let titles = [
        "rust in action hardcover",
        "database internals paperback",
        "the art of computer programming box set",
        "rust atomics and locks",
        "streaming systems",
    ];
    for (i, title) in titles.iter().enumerate() {
        let r = i as u64;
        db.insert(
            Document::builder(TenantId(10086), RecordId(r), day + r * 3_600_000)
                .field("status", (r % 2) as i64)
                .field("group", 666i64)
                .field("amount", FieldValue::Float(59.0 + r as f64 * 10.0))
                .field("province", "zhejiang")
                .field("auction_title", *title)
                .attr("activity", "back-to-school")
                .attr(
                    "binding",
                    if r % 2 == 0 { "hardcover" } else { "paperback" },
                )
                .build(),
        )
        .expect("insert");
    }
    // Another seller, so we can see tenant isolation.
    db.insert(
        Document::builder(TenantId(20000), RecordId(100), day)
            .field("status", 1i64)
            .field("auction_title", "rust keychain")
            .build(),
    )
    .expect("insert");

    // Writes become searchable at refresh (near-real-time search).
    db.refresh();

    // The paper's example query shape (Fig. 6): tenant + time range +
    // extra filters, mixing AND and OR.
    let sql = "SELECT * FROM transaction_logs \
               WHERE tenant_id = 10086 \
               AND created_time >= '2021-09-16 00:00:00' \
               AND created_time <= '2021-09-17 00:00:00' \
               AND status = 1 OR group = 666 \
               ORDER BY created_time ASC LIMIT 100";
    let rows = db.query(sql).expect("query");
    println!("Fig.6-style query returned {} rows:", rows.docs.len());
    for d in &rows.docs {
        println!(
            "  record {:>3}  status={}  title={:?}",
            d.record_id.raw(),
            d.get("status").expect("status"),
            d.get("auction_title").expect("title").to_string()
        );
    }

    // Full-text search over the analyzed title column.
    let rows = db
        .query("SELECT * FROM transaction_logs WHERE tenant_id = 10086 AND MATCH(auction_title, 'rust')")
        .expect("match query");
    println!(
        "\nfull-text 'rust' for tenant 10086: {} rows",
        rows.docs.len()
    );

    // Sub-attribute search (the 1500-sub-attribute "attributes" column).
    let rows = db
        .query("SELECT * FROM transaction_logs WHERE tenant_id = 10086 AND ATTR('binding') = 'hardcover'")
        .expect("attr query");
    println!("hardcover bindings: {} rows", rows.docs.len());

    // Durability: flush segments + roll the translog, then reopen.
    db.flush().expect("flush");
    drop(db);
    let db =
        Esdb::open(CollectionSchema::transaction_logs(), EsdbConfig::new(&dir)).expect("reopen");
    let rows = db
        .query("SELECT * FROM transaction_logs WHERE tenant_id = 10086")
        .expect("query after reopen");
    println!(
        "\nafter reopen: {} rows for tenant 10086 (durable)",
        rows.docs.len()
    );
    println!("stats: {:?}", db.stats());
}
