//! Skewed writes against the embedded engine: watch dynamic secondary
//! hashing split a hot seller across shards while cold sellers stay put.
//!
//! ```sh
//! cargo run -p esdb-examples --release --bin skewed_writes
//! ```

use esdb_common::zipf::ZipfSampler;
use esdb_common::{Clock, RecordId, SharedClock, TenantId};
use esdb_core::{Esdb, EsdbConfig, RoutingMode};
use esdb_doc::{CollectionSchema, Document};
use esdb_examples::bar;
use rand::rngs::StdRng;
use rand::SeedableRng;

const N_TENANTS: usize = 2_000;
const N_WRITES: u64 = 60_000;
const THETA: f64 = 1.0;

fn run(mode: RoutingMode, label: &str) {
    let dir = std::env::temp_dir().join(format!("esdb-skewed-{label}"));
    let _ = std::fs::remove_dir_all(&dir);
    let (clock, driver) = SharedClock::manual(1_000_000);
    let mut db = Esdb::open_with_clock(
        CollectionSchema::transaction_logs(),
        EsdbConfig::new(&dir).shards(16).routing(mode),
        clock.clone(),
    )
    .expect("open");

    let zipf = ZipfSampler::new(N_TENANTS, THETA);
    let mut rng = StdRng::seed_from_u64(11);
    for r in 0..N_WRITES {
        let rank = zipf.sample(&mut rng);
        let t = clock.now();
        db.insert(
            Document::builder(TenantId(rank as u64), RecordId(r), t)
                .field("status", (r % 3) as i64)
                .field("auction_title", "flash sale widget")
                .build(),
        )
        .expect("insert");
        driver.advance(1); // 1 ms per write
    }
    db.refresh();

    let counts = db.shard_doc_counts();
    let max = *counts.iter().max().expect("shards") as f64;
    println!("\n== {label} ==  (rules committed: {})", db.stats().rules);
    for (i, c) in counts.iter().enumerate() {
        println!("  shard {i:>2} {:>7} docs  {}", c, bar(*c as f64, max, 40));
    }
    let hot = db.read_span(TenantId(1));
    println!(
        "  hot tenant span: {} shard(s); stddev of shard sizes: {:.0}",
        hot.len,
        esdb_common::stats::stddev(&counts.iter().map(|&c| c as f64).collect::<Vec<_>>())
    );
    // Read-your-writes sanity: the hot tenant sees every one of its rows.
    let rows = db
        .query("SELECT * FROM transaction_logs WHERE tenant_id = 1")
        .expect("query");
    println!("  hot tenant rows visible: {}", rows.docs.len());
}

fn main() {
    println!("Writing {N_WRITES} Zipf(θ={THETA}) rows from {N_TENANTS} sellers into 16 shards");
    run(RoutingMode::Hashing, "hashing");
    run(RoutingMode::DoubleHashing(8), "double-hashing-s8");
    run(RoutingMode::Dynamic, "dynamic-secondary-hashing");
}
