//! Seller-facing analytics: the ad-hoc multi-column queries, full-text
//! search, sub-attribute filters and aggregations the paper motivates
//! (bookstore sellers searching transactions by title keywords, §1).
//!
//! ```sh
//! cargo run -p esdb-examples --release --bin seller_analytics
//! ```

use esdb_common::TenantId;
use esdb_core::{Esdb, EsdbConfig};
use esdb_doc::CollectionSchema;
use esdb_query::aggregate::{aggregate, AggFunc};
use esdb_query::QueryOptions;
use esdb_workload::{DocGenerator, RateSchedule, TraceGenerator};

fn main() {
    let dir = std::env::temp_dir().join("esdb-seller-analytics");
    let _ = std::fs::remove_dir_all(&dir);
    let mut db =
        Esdb::open(CollectionSchema::transaction_logs(), EsdbConfig::new(&dir)).expect("open");

    // Load a Zipf-skewed day of trade: 40k rows, 500 sellers.
    let mut trace = TraceGenerator::new(500, 1.0, RateSchedule::constant(40_000.0), 7);
    let mut docs = DocGenerator::new(1_500, 20, 7);
    let day0 = 1_631_750_400_000u64;
    for ev in trace.tick(day0, 1_000) {
        let mut e = ev;
        // Spread creation times over 24h for interesting time predicates.
        e.created_at = day0 + (ev.record.raw() * 2_160) % 86_400_000;
        db.insert(docs.materialize(&e)).expect("insert");
    }
    db.refresh();
    println!(
        "loaded {} rows across {} sellers\n",
        db.stats().live_docs,
        500
    );

    let top_seller = trace.tenant_of_rank(1);
    println!("top seller is tenant {}", top_seller.raw());

    // 1. Status breakdown in a time window (composite index + scan list).
    let sql = format!(
        "SELECT * FROM transaction_logs WHERE tenant_id = {} \
         AND created_time BETWEEN '2021-09-16 06:00:00' AND '2021-09-16 18:00:00' \
         AND status = 1",
        top_seller.raw()
    );
    let rows = db.query(&sql).expect("query");
    println!("completed transactions 06:00-18:00: {}", rows.docs.len());

    // 2. Full-text: find orders whose title mentions 'rust book'.
    let sql = format!(
        "SELECT * FROM transaction_logs WHERE tenant_id = {} \
         AND MATCH(auction_title, 'rust book') LIMIT 100",
        top_seller.raw()
    );
    let rows = db.query(&sql).expect("match");
    println!("'rust book' orders: {}", rows.docs.len());

    // 3. Sub-attribute filter: the hottest of the 1500 attributes.
    let sql = format!(
        "SELECT * FROM transaction_logs WHERE tenant_id = {} \
         AND ATTR('attr_0001') = 'v3' LIMIT 100",
        top_seller.raw()
    );
    let rows = db.query(&sql).expect("attr");
    println!("attr_0001=v3 orders: {}", rows.docs.len());

    // 4. Aggregations via the coordinator-side aggregator.
    let sql = format!(
        "SELECT * FROM transaction_logs WHERE tenant_id = {}",
        top_seller.raw()
    );
    let rows = db.query(&sql).expect("all");
    let count = aggregate(&rows.docs, &AggFunc::Count);
    let total = aggregate(&rows.docs, &AggFunc::Sum("amount".into()));
    let avg = aggregate(&rows.docs, &AggFunc::Avg("amount".into()));
    let max = aggregate(&rows.docs, &AggFunc::Max("amount".into()));
    println!("\nGMV report for tenant {}:", top_seller.raw());
    println!("  orders: {count}\n  revenue: {total}\n  avg ticket: {avg}\n  biggest: {max}");

    // 5. Optimizer vs naive plan on the same query (Fig. 17 in miniature).
    let sql = format!(
        "SELECT * FROM transaction_logs WHERE tenant_id = {} \
         AND created_time BETWEEN '2021-09-16 00:00:00' AND '2021-09-16 12:00:00' \
         AND status = 1 AND group = 5 LIMIT 100",
        top_seller.raw()
    );
    let t0 = std::time::Instant::now();
    let opt = db
        .query_opts(
            &sql,
            QueryOptions {
                use_optimizer: true,
                ..QueryOptions::default()
            },
        )
        .expect("opt");
    let t_opt = t0.elapsed();
    let t0 = std::time::Instant::now();
    let naive = db
        .query_opts(
            &sql,
            QueryOptions {
                use_optimizer: false,
                ..QueryOptions::default()
            },
        )
        .expect("naive");
    let t_naive = t0.elapsed();
    println!(
        "\noptimizer: {} rows, {} postings touched, {:?}",
        opt.docs.len(),
        opt.postings_scanned,
        t_opt
    );
    println!(
        "naive:     {} rows, {} postings touched, {:?}",
        naive.docs.len(),
        naive.postings_scanned,
        t_naive
    );
    println!(
        "(at this 40K-row demo scale both plans run in ~0.1ms and wall times \
         are noisy; the postings counts show the work the optimizer avoids — \
         see `figures fig17` for the measured latency comparison at scale)"
    );
    let _ = TenantId(0);
}
