//! Offline shim for the `serde` crate.
//!
//! The build container has no crates.io access, so the workspace patches
//! `serde` with this stub. The workspace derives `Serialize` /
//! `Deserialize` on wire-facing types to document serialization intent,
//! but never invokes an actual serializer (no `serde_json` dependency) —
//! so marker traits with derivable empty impls are sufficient. If a real
//! serializer is ever added, replace this shim with the real crate (the
//! derive attribute surface is identical for plain structs and enums).

/// Marker for types whose serialized form is part of the wire contract.
pub trait Serialize {}

/// Marker for types deserializable from the wire contract.
pub trait Deserialize<'de>: Sized {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
