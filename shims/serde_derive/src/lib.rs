//! Offline shim for `serde_derive`: emits *empty* impls of the marker
//! traits in the sibling `serde` shim. Implemented directly on
//! `proc_macro` (no syn/quote, which are unavailable offline).
//!
//! Supports plain (non-generic) structs and enums, which covers every
//! derive site in the workspace. Deriving on a generic type is a
//! compile error with a clear message rather than silently wrong code.

use proc_macro::TokenStream;
use std::str::FromStr;

/// Extracts the type name following the `struct` / `enum` keyword,
/// confirming the type has no generic parameters.
fn type_name(input: &TokenStream) -> Result<String, String> {
    let mut tokens = input.clone().into_iter();
    // Non-matching tokens (outer attributes, visibility, doc comments)
    // are skipped until the struct/enum keyword appears.
    while let Some(tt) = tokens.next() {
        if let proc_macro::TokenTree::Ident(id) = &tt {
            let kw = id.to_string();
            if kw == "struct" || kw == "enum" {
                let name = match tokens.next() {
                    Some(proc_macro::TokenTree::Ident(name)) => name.to_string(),
                    other => return Err(format!("expected type name, found {other:?}")),
                };
                if let Some(proc_macro::TokenTree::Punct(p)) = tokens.next() {
                    if p.as_char() == '<' {
                        return Err(format!(
                            "the serde shim derive does not support generic type `{name}`"
                        ));
                    }
                }
                return Ok(name);
            }
        }
    }
    Err("no struct or enum found in derive input".into())
}

fn emit(input: TokenStream, make_impl: impl Fn(&str) -> String) -> TokenStream {
    match type_name(&input) {
        Ok(name) => TokenStream::from_str(&make_impl(&name)).unwrap(),
        Err(msg) => TokenStream::from_str(&format!("compile_error!({msg:?});")).unwrap(),
    }
}

/// Derives the `serde::Serialize` marker.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    emit(input, |name| {
        format!("impl ::serde::Serialize for {name} {{}}")
    })
}

/// Derives the `serde::Deserialize` marker.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    emit(input, |name| {
        format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
    })
}
