//! Offline shim for the `parking_lot` crate.
//!
//! The build container used for this repository has no crates.io access, so
//! the workspace patches `parking_lot` with this thin wrapper over
//! `std::sync`. It reproduces the subset of the parking_lot API the
//! workspace uses: non-poisoning `RwLock` / `Mutex` whose `read()` /
//! `write()` / `lock()` return guards directly (no `Result`).
//!
//! Poisoning is deliberately ignored (`unwrap_or_else(PoisonError::into_inner)`)
//! which matches parking_lot's semantics: a panicking critical section does
//! not wedge every later acquisition.

use std::sync::PoisonError;

/// Non-poisoning reader-writer lock (API subset of `parking_lot::RwLock`).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Shared read guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Exclusive write guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire a read guard without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts to acquire a write guard without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Non-poisoning mutex (API subset of `parking_lot::Mutex`).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(1);
        assert_eq!(*l.read(), 1);
        *l.write() += 1;
        assert_eq!(*l.read(), 2);
        assert!(l.try_read().is_some());
    }

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
    }
}
