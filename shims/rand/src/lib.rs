//! Offline shim for the `rand` crate (0.9 API subset).
//!
//! The build container has no crates.io access, so the workspace patches
//! `rand` with this self-contained implementation. It provides:
//!
//! * [`Rng`] with `random::<T>()` and `random_range(..)` (the 0.9 method
//!   names), callable through `R: Rng + ?Sized` bounds,
//! * [`SeedableRng`] with `seed_from_u64` / `from_seed`,
//! * [`rngs::StdRng`], here a xoshiro256** generator seeded via SplitMix64
//!   (high-quality, deterministic, and fast — not the cryptographic ChaCha
//!   of the real crate, which no workspace user needs),
//! * the free function [`random`] drawing from a process-global generator.
//!
//! `random::<f64>()` matches rand's `StandardUniform` semantics: uniform in
//! `[0, 1)` with 53 bits of precision (the Zipf sampler depends on this).

/// Types that can be sampled uniformly over their whole domain (rand's
/// `StandardUniform` distribution).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    #[inline]
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    #[inline]
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` using the top 53 bits.
    #[inline]
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` using the top 24 bits.
    #[inline]
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that [`Rng::random_range`] accepts (rand's `SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            #[inline]
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}
impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            #[inline]
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_u64(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_u64(rng, span + 1) as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    #[inline]
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

/// Uniform draw from `[0, bound)` via Lemire-style rejection (`bound > 0`).
#[inline]
fn uniform_u64<R: Rng + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    // Rejection zone keeps the draw exactly uniform.
    let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

/// The random number generator trait (rand 0.9 method names).
pub trait Rng {
    /// The raw 64-bit output of the generator.
    fn next_u64(&mut self) -> u64;

    /// Draws a value uniformly over `T`'s whole domain (for `f64`/`f32`:
    /// uniform in `[0, 1)`).
    #[inline]
    fn random<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    #[inline]
    fn random_range<T, SR: SampleRange<T>>(&mut self, range: SR) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p`.
    #[inline]
    fn random_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministically seedable generators.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Constructs from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs from a `u64` via SplitMix64 expansion.
    fn seed_from_u64(state: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The standard generator: xoshiro256** (deterministic across
    /// platforms; statistically strong, not cryptographic).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl Rng for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            // All-zero state is a fixed point for xoshiro; nudge it.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }
}

/// Draws one value from a process-global generator (rand's free
/// `random()`), seeded once per process from the system time and address
/// space layout.
pub fn random<T: Standard>() -> T {
    use std::sync::atomic::{AtomicU64, Ordering};
    static STATE: AtomicU64 = AtomicU64::new(0);
    if STATE.load(Ordering::Relaxed) == 0 {
        let t = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x5EED);
        let aslr = &STATE as *const _ as u64;
        let _ = STATE.compare_exchange(
            0,
            t ^ aslr.rotate_left(32) | 1,
            Ordering::Relaxed,
            Ordering::Relaxed,
        );
    }
    // Each call advances the global state by a SplitMix64 step; sampling
    // happens on a local generator seeded from it.
    let seed = STATE.fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::Relaxed);
    let mut rng = rngs::StdRng::seed_from_u64(seed);
    T::sample_standard(&mut rng)
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: u64 = r.random_range(10..20);
            assert!((10..20).contains(&v));
            let w: i64 = r.random_range(-5..=5);
            assert!((-5..=5).contains(&w));
            let x: usize = r.random_range(0..=0);
            assert_eq!(x, 0);
            let f: f64 = r.random();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn unit_f64_covers_range() {
        let mut r = StdRng::seed_from_u64(1);
        let mut lo = false;
        let mut hi = false;
        for _ in 0..10_000 {
            let f: f64 = r.random();
            if f < 0.1 {
                lo = true;
            }
            if f > 0.9 {
                hi = true;
            }
        }
        assert!(lo && hi, "samples should cover [0,1)");
    }

    #[test]
    fn works_through_unsized_bound() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> u64 {
            rng.random_range(0..100)
        }
        let mut r = StdRng::seed_from_u64(3);
        assert!(draw(&mut r) < 100);
    }

    #[test]
    fn global_random_varies() {
        let a: u64 = random();
        let b: u64 = random();
        assert_ne!(a, b);
    }
}
