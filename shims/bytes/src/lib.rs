//! Offline shim for the `bytes` crate.
//!
//! The build container has no crates.io access, so the workspace patches
//! `bytes` with this minimal implementation: [`BytesMut`] is a growable
//! byte buffer, [`Bytes`] is a consuming read cursor, and the [`Buf`] /
//! [`BufMut`] traits expose the little-endian accessors the storage codec
//! uses. Semantics match the real crate for this subset; zero-copy
//! slicing is not reproduced (reads copy, which the codec never relies
//! on).

use std::ops::{Deref, DerefMut};

/// Read-side accessor trait (subset of `bytes::Buf`).
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;
    /// The unconsumed bytes.
    fn chunk(&self) -> &[u8];
    /// Consumes `n` bytes.
    fn advance(&mut self, n: usize);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let v = u32::from_le_bytes(self.chunk()[..4].try_into().unwrap());
        self.advance(4);
        v
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let v = u64::from_le_bytes(self.chunk()[..8].try_into().unwrap());
        self.advance(8);
        v
    }

    /// Reads a little-endian `i64`.
    fn get_i64_le(&mut self) -> i64 {
        let v = i64::from_le_bytes(self.chunk()[..8].try_into().unwrap());
        self.advance(8);
        v
    }

    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }

    /// Copies the next `n` bytes out as an owned [`Bytes`].
    fn copy_to_bytes(&mut self, n: usize) -> Bytes {
        let out = Bytes::copy_from_slice(&self.chunk()[..n]);
        self.advance(n);
        out
    }
}

/// Write-side accessor trait (subset of `bytes::BufMut`).
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `i64`.
    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

/// Growable byte buffer (subset of `bytes::BytesMut`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Empty buffer.
    pub fn new() -> Self {
        BytesMut { data: Vec::new() }
    }

    /// Empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Appends a slice.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    /// Converts into an immutable [`Bytes`] cursor.
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data,
            pos: 0,
        }
    }

    /// The contents as a fresh vector.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.clone()
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Owned read cursor over a byte payload (subset of `bytes::Bytes`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    /// Copies `src` into a fresh cursor positioned at the start.
    pub fn copy_from_slice(src: &[u8]) -> Self {
        Bytes {
            data: src.to_vec(),
            pos: 0,
        }
    }

    /// The unconsumed bytes as a fresh vector.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data[self.pos..].to_vec()
    }

    /// Unconsumed length.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.pos..]
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data, pos: 0 }
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn chunk(&self) -> &[u8] {
        &self.data[self.pos..]
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.remaining(), "advance past end of Bytes");
        self.pos += n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_accessors() {
        let mut w = BytesMut::with_capacity(64);
        w.put_u8(7);
        w.put_u32_le(0xDEAD_BEEF);
        w.put_u64_le(u64::MAX - 5);
        w.put_i64_le(-42);
        w.put_f64_le(1.5);
        w.put_slice(b"abc");
        assert_eq!(w.len(), 1 + 4 + 8 + 8 + 8 + 3);

        let mut r = w.freeze();
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), u64::MAX - 5);
        assert_eq!(r.get_i64_le(), -42);
        assert_eq!(r.get_f64_le(), 1.5);
        assert_eq!(r.copy_to_bytes(3).to_vec(), b"abc");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn trait_form_and_deref() {
        let mut v = BytesMut::new();
        BufMut::put_u64_le(&mut v, 9);
        assert_eq!(&v[..8], 9u64.to_le_bytes());
        let b = Bytes::copy_from_slice(&v);
        assert_eq!(b.len(), 8);
    }
}
