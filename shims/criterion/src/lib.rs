//! Offline shim for the `criterion` crate.
//!
//! The build container has no crates.io access, so the workspace patches
//! `criterion` with this minimal wall-clock harness. It reproduces the
//! API subset the benches use — `benchmark_group`, `bench_function`,
//! `bench_with_input`, `Bencher::iter` / `iter_batched`, `black_box`,
//! `criterion_group!` / `criterion_main!` — and reports median /
//! min / max per-iteration times on stdout. No statistical analysis,
//! plots, or HTML reports; timings are indicative, not criterion-grade.

use std::time::{Duration, Instant};

/// Re-exported iteration timer handed to bench closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_count: usize,
}

/// Batch sizing hint for [`Bencher::iter_batched`] (accepted, unused).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One batch per sample.
    PerIteration,
}

impl Bencher {
    fn new(sample_count: usize) -> Self {
        Bencher {
            samples: Vec::with_capacity(sample_count),
            sample_count,
        }
    }

    /// Times `routine` over the configured number of samples.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        // Warm-up: stabilize caches/allocator before sampling.
        for _ in 0..2 {
            black_box(routine());
        }
        for _ in 0..self.sample_count {
            let t0 = Instant::now();
            black_box(routine());
            self.samples.push(t0.elapsed());
        }
    }

    /// Times `routine` over fresh inputs produced by `setup` (setup time
    /// excluded from the measurement).
    pub fn iter_batched<I, R>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> R,
        _size: BatchSize,
    ) {
        black_box(routine(setup()));
        for _ in 0..self.sample_count {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.samples.push(t0.elapsed());
        }
    }
}

/// Identifier for parameterized benchmarks.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter`, as criterion renders it.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Just a parameter (for single-function groups).
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_count: usize,
    _parent: &'a mut Criterion,
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

fn report(group: &str, name: &str, samples: &mut [Duration]) {
    if samples.is_empty() {
        println!("{group}/{name}: no samples");
        return;
    }
    samples.sort_unstable();
    let median = samples[samples.len() / 2];
    println!(
        "{group}/{name}: median {} (min {}, max {}, n={})",
        fmt_duration(median),
        fmt_duration(samples[0]),
        fmt_duration(samples[samples.len() - 1]),
        samples.len(),
    );
}

impl BenchmarkGroup<'_> {
    /// Overrides how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_count = n.max(1);
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function(&mut self, id: impl IntoLabel, f: impl FnMut(&mut Bencher)) -> &mut Self {
        self.run(id.into_label(), f);
        self
    }

    /// Runs one parameterized benchmark.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        self.run(id.label, |b| f(b, input));
        self
    }

    fn run(&mut self, label: String, mut f: impl FnMut(&mut Bencher)) {
        let mut b = Bencher::new(self.sample_count);
        f(&mut b);
        report(&self.name, &label, &mut b.samples);
    }

    /// Ends the group (report already printed per benchmark).
    pub fn finish(&mut self) {}
}

/// Conversion of the name argument accepted by `bench_function`.
pub trait IntoLabel {
    /// The display label.
    fn into_label(self) -> String;
}

impl IntoLabel for &str {
    fn into_label(self) -> String {
        self.to_string()
    }
}

impl IntoLabel for String {
    fn into_label(self) -> String {
        self
    }
}

impl IntoLabel for BenchmarkId {
    fn into_label(self) -> String {
        self.label
    }
}

/// The top-level harness handle.
#[derive(Default)]
pub struct Criterion {
    sample_count: usize,
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_count = if self.sample_count == 0 {
            20
        } else {
            self.sample_count
        };
        BenchmarkGroup {
            name: name.into(),
            sample_count,
            _parent: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let mut g = self.benchmark_group("bench");
        g.bench_function(name, f);
        self
    }

    /// Overrides the default sample count for subsequent groups.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_count = n.max(1);
        self
    }

    /// Prints the closing summary (no-op in the shim).
    pub fn final_summary(&mut self) {}
}

/// Identity function opaque to the optimizer (stable `std::hint::black_box`).
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(3);
        let mut ran = 0;
        g.bench_function("noop", |b| b.iter(|| ran += 1));
        g.bench_with_input(BenchmarkId::new("param", 4), &4usize, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        g.finish();
        assert!(ran >= 3);
    }

    #[test]
    fn iter_batched_consumes_inputs() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim2");
        g.sample_size(2);
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1, 2, 3], |v| v.len(), BatchSize::SmallInput)
        });
    }
}
