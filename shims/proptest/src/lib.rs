//! Offline shim for the `proptest` crate.
//!
//! The build container has no crates.io access, so the workspace patches
//! `proptest` with this self-contained implementation of the subset the
//! test suite uses:
//!
//! * [`strategy::Strategy`] with `prop_map` / `prop_filter` /
//!   `prop_flat_map` / `prop_recursive` / `boxed`,
//! * strategies for integer ranges, tuples, [`strategy::Just`],
//!   [`arbitrary::any`], regex-subset string literals, and
//!   [`collection::vec`],
//! * the [`proptest!`], [`prop_oneof!`], [`prop_assert!`] and
//!   [`prop_assert_eq!`] macros,
//! * [`test_runner::ProptestConfig`] with `with_cases`.
//!
//! Differences from real proptest: cases are drawn from a generator
//! seeded deterministically from the test name (stable across runs), and
//! failing cases are **not shrunk** — the assert fires with the raw
//! sampled inputs. Regression files (`*.proptest-regressions`) are not
//! replayed.

pub mod test_runner {
    //! Config and the deterministic test RNG.

    /// Per-`proptest!` block configuration (subset: case count only).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases each property runs.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 128 }
        }
    }

    impl ProptestConfig {
        /// Config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// xoshiro256** generator seeded from the test name — every run of a
    /// property executes the same deterministic case sequence.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl TestRng {
        /// Deterministic generator for the named test.
        pub fn for_test(name: &str) -> Self {
            // FNV-1a over the test name gives a stable, well-mixed seed.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            let mut sm = h;
            TestRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }

        /// Next raw 64 bits.
        pub fn next_u64(&mut self) -> u64 {
            let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }

        /// Uniform draw from `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
            loop {
                let v = self.next_u64();
                if v <= zone {
                    return v % bound;
                }
            }
        }

        /// Uniform in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use crate::test_runner::TestRng;
    use std::sync::Arc;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms generated values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Rejects values failing `pred` (resamples; panics after 1000
        /// consecutive rejections, citing `reason`).
        fn prop_filter<F: Fn(&Self::Value) -> bool>(
            self,
            reason: impl Into<String>,
            pred: F,
        ) -> Filter<Self, F>
        where
            Self: Sized,
        {
            Filter {
                inner: self,
                reason: reason.into(),
                pred,
            }
        }

        /// Feeds each generated value into `f` to pick a second strategy,
        /// then samples that.
        fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }

        /// Builds a recursive strategy: `self` is the leaf case and `f`
        /// wraps an inner strategy into one more level, up to `depth`
        /// levels deep. (The size-hint parameters of real proptest are
        /// accepted and ignored.)
        fn prop_recursive<S2, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            f: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            S2: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S2,
        {
            let leaf = self.boxed();
            let mut cur = leaf.clone();
            for _ in 0..depth {
                let deeper = f(cur).boxed();
                // 1/3 leaf, 2/3 recurse: keeps depth distribution spread
                // without blowing up the expected size.
                cur = OneOf::new(vec![(1, leaf.clone()), (2, deeper)]).boxed();
            }
            cur
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Arc::new(self))
        }
    }

    /// A type-erased, cheaply clonable strategy.
    pub struct BoxedStrategy<V>(Arc<dyn Strategy<Value = V>>);

    impl<V> Clone for BoxedStrategy<V> {
        fn clone(&self) -> Self {
            BoxedStrategy(Arc::clone(&self.0))
        }
    }

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn sample(&self, rng: &mut TestRng) -> V {
            self.0.sample(rng)
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn sample(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// See [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        inner: S,
        reason: String,
        pred: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.inner.sample(rng);
                if (self.pred)(&v) {
                    return v;
                }
            }
            panic!(
                "prop_filter rejected 1000 consecutive samples: {}",
                self.reason
            );
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn sample(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.sample(rng)).sample(rng)
        }
    }

    /// Weighted union over boxed strategies (the engine behind
    /// [`crate::prop_oneof!`]).
    pub struct OneOf<V> {
        arms: Vec<(u32, BoxedStrategy<V>)>,
        total: u64,
    }

    impl<V> OneOf<V> {
        /// Builds from `(weight, strategy)` arms; weights must sum > 0.
        pub fn new(arms: Vec<(u32, BoxedStrategy<V>)>) -> Self {
            let total: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
            assert!(total > 0, "prop_oneof! needs at least one positive weight");
            OneOf { arms, total }
        }
    }

    impl<V> Strategy for OneOf<V> {
        type Value = V;
        fn sample(&self, rng: &mut TestRng) -> V {
            let mut pick = rng.below(self.total);
            for (w, s) in &self.arms {
                if pick < *w as u64 {
                    return s.sample(rng);
                }
                pick -= *w as u64;
            }
            unreachable!("weights changed mid-sample")
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "cannot sample empty range");
                    let span = (hi as i128 - lo as i128) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    (lo as i128 + rng.below(span + 1) as i128) as $t
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "cannot sample empty range");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);

    impl<S: Strategy> Strategy for Vec<S> {
        type Value = Vec<S::Value>;
        /// A vector of strategies samples each element in order (real
        /// proptest's "vec of strategies is a strategy of vecs").
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            self.iter().map(|s| s.sample(rng)).collect()
        }
    }

    impl Strategy for &'static str {
        type Value = String;
        /// String literals act as regex-subset generators (see
        /// [`crate::string`]).
        fn sample(&self, rng: &mut TestRng) -> String {
            crate::string::sample_pattern(self, rng)
        }
    }
}

pub mod string {
    //! Regex-subset string generation for `&str` strategies.
    //!
    //! Supported syntax: literal characters, `.` (any printable ASCII),
    //! character classes `[a-z08_]`, escapes, and the quantifiers `{m}`,
    //! `{m,n}`, `?`, `*`, `+` (unbounded forms capped at 8 repeats).

    use crate::test_runner::TestRng;

    enum Atom {
        Lit(char),
        Dot,
        Class(Vec<(char, char)>),
    }

    struct Piece {
        atom: Atom,
        min: u32,
        max: u32,
    }

    fn parse(pattern: &str) -> Vec<Piece> {
        let mut chars = pattern.chars().peekable();
        let mut pieces = Vec::new();
        while let Some(c) = chars.next() {
            let atom = match c {
                '.' => Atom::Dot,
                '\\' => Atom::Lit(chars.next().unwrap_or('\\')),
                '[' => {
                    let mut ranges = Vec::new();
                    while let Some(&cc) = chars.peek() {
                        if cc == ']' {
                            chars.next();
                            break;
                        }
                        let lo = chars.next().unwrap();
                        if chars.peek() == Some(&'-') {
                            chars.next();
                            let hi = chars.next().unwrap_or(lo);
                            ranges.push((lo, hi));
                        } else {
                            ranges.push((lo, lo));
                        }
                    }
                    Atom::Class(ranges)
                }
                other => Atom::Lit(other),
            };
            // Optional quantifier.
            let (min, max) = match chars.peek() {
                Some('{') => {
                    chars.next();
                    let mut spec = String::new();
                    for cc in chars.by_ref() {
                        if cc == '}' {
                            break;
                        }
                        spec.push(cc);
                    }
                    match spec.split_once(',') {
                        Some((m, n)) => {
                            (m.trim().parse().unwrap_or(0), n.trim().parse().unwrap_or(8))
                        }
                        None => {
                            let m = spec.trim().parse().unwrap_or(1);
                            (m, m)
                        }
                    }
                }
                Some('?') => {
                    chars.next();
                    (0, 1)
                }
                Some('*') => {
                    chars.next();
                    (0, 8)
                }
                Some('+') => {
                    chars.next();
                    (1, 8)
                }
                _ => (1, 1),
            };
            pieces.push(Piece { atom, min, max });
        }
        pieces
    }

    /// Draws one string matching `pattern`.
    pub fn sample_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for piece in parse(pattern) {
            let n = piece.min + rng.below((piece.max - piece.min + 1) as u64) as u32;
            for _ in 0..n {
                match &piece.atom {
                    Atom::Lit(c) => out.push(*c),
                    // Printable ASCII keeps generated text filesystem- and
                    // terminal-safe.
                    Atom::Dot => out.push((b' ' + rng.below(95) as u8) as char),
                    Atom::Class(ranges) => {
                        let (lo, hi) = ranges[rng.below(ranges.len() as u64) as usize];
                        let span = (hi as u32).saturating_sub(lo as u32) + 1;
                        out.push(
                            char::from_u32(lo as u32 + rng.below(span as u64) as u32).unwrap_or(lo),
                        );
                    }
                }
            }
        }
        out
    }
}

pub mod arbitrary {
    //! `any::<T>()` — whole-domain strategies with edge-case bias.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    // 1-in-8 bias toward boundary values, like real
                    // proptest's binary search special cases.
                    if rng.below(8) == 0 {
                        const EDGES: [i128; 5] =
                            [0, 1, -1, <$t>::MIN as i128, <$t>::MAX as i128];
                        EDGES[rng.below(5) as usize] as $t
                    } else {
                        rng.next_u64() as $t
                    }
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            match rng.below(8) {
                // Boundary values (NaN included — callers filter).
                0 => [
                    0.0,
                    -0.0,
                    1.0,
                    -1.0,
                    f64::INFINITY,
                    f64::NEG_INFINITY,
                    f64::NAN,
                ][rng.below(7) as usize],
                // Raw bit patterns cover subnormals and extreme exponents.
                1 => f64::from_bits(rng.next_u64()),
                // Moderate magnitudes.
                _ => (rng.unit_f64() - 0.5) * 2e9,
            }
        }
    }

    impl Arbitrary for char {
        fn arbitrary(rng: &mut TestRng) -> Self {
            // Mostly ASCII, occasionally any scalar value.
            if rng.below(4) == 0 {
                char::from_u32(rng.below(0x11_0000) as u32).unwrap_or('\u{FFFD}')
            } else {
                (b' ' + rng.below(95) as u8) as char
            }
        }
    }

    /// Strategy over `T`'s whole domain.
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The `any::<T>()` entry point.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies (`vec`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Element-count specification accepted by [`vec`]: an exact count, a
    /// half-open range, or an inclusive range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Generates `Vec`s whose length falls in `size` and whose elements
    /// come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.min + rng.below((self.size.max - self.size.min + 1) as u64) as usize;
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod sample {
    //! Strategies choosing among concrete values.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Uniformly selects one of the given values.
    pub fn select<T: Clone>(values: Vec<T>) -> Select<T> {
        assert!(
            !values.is_empty(),
            "sample::select needs at least one value"
        );
        Select { values }
    }

    /// See [`select`].
    #[derive(Debug, Clone)]
    pub struct Select<T: Clone> {
        values: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            self.values[rng.below(self.values.len() as u64) as usize].clone()
        }
    }
}

pub mod prelude {
    //! The glob-import surface mirroring `proptest::prelude`.
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Namespace alias matching real proptest's `prelude::prop` module
    /// (enables `prop::sample::select(...)` etc. after a glob import).
    pub mod prop {
        pub use crate::{collection, sample, strategy};
    }
}

/// Weighted (or unweighted) choice between strategies producing the same
/// value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $((($weight) as u32, $crate::strategy::Strategy::boxed($strategy)),)+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strategy)),)+
        ])
    };
}

/// Property assertion (maps to `assert!`; no shrinking in the shim).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Property equality assertion (maps to `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}

/// Property inequality assertion (maps to `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_ne!($left, $right, $($fmt)+) };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` sampled inputs through the body.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($parm:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config = $config;
                let mut __rng = $crate::test_runner::TestRng::for_test(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for __case in 0..__config.cases {
                    let ($($parm,)+) = (
                        $($crate::strategy::Strategy::sample(&($strategy), &mut __rng),)+
                    );
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_tuples() {
        let mut rng = crate::test_runner::TestRng::for_test("ranges");
        let s = (0u8..4, -3i64..4);
        for _ in 0..100 {
            let (a, b) = s.sample(&mut rng);
            assert!(a < 4);
            assert!((-3..4).contains(&b));
        }
    }

    #[test]
    fn oneof_weighted_covers_all_arms() {
        let mut rng = crate::test_runner::TestRng::for_test("oneof");
        let s = prop_oneof![
            2 => Just(1u8),
            1 => Just(2u8),
        ];
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[s.sample(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && !seen[0]);
    }

    #[test]
    fn string_patterns() {
        let mut rng = crate::test_runner::TestRng::for_test("strings");
        for _ in 0..100 {
            let s = "[a-z]{1,8}".sample(&mut rng);
            assert!((1..=8).contains(&s.len()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
            let t = ".{0,32}".sample(&mut rng);
            assert!(t.len() <= 32);
        }
    }

    #[test]
    fn vec_and_flat_map() {
        let mut rng = crate::test_runner::TestRng::for_test("vecs");
        let s = crate::collection::vec(0u32..10, 1..5).prop_flat_map(|v| Just(v.len()));
        for _ in 0..50 {
            let n = s.sample(&mut rng);
            assert!((1..5).contains(&n));
        }
    }

    #[test]
    fn recursive_terminates() {
        #[derive(Debug, Clone)]
        #[allow(dead_code)]
        enum Tree {
            Leaf(u8),
            Node(Vec<Tree>),
        }
        let mut rng = crate::test_runner::TestRng::for_test("recursive");
        let s = (0u8..10)
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 24, 4, |inner| {
                crate::collection::vec(inner, 1..4).prop_map(Tree::Node)
            });
        for _ in 0..100 {
            let _ = s.sample(&mut rng);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_form_works(x in 0u64..100, v in crate::collection::vec(0i64..5, 0..4)) {
            prop_assert!(x < 100);
            prop_assert!(v.len() < 4);
        }
    }

    proptest! {
        #[test]
        fn macro_form_without_config(b in any::<bool>(), f in any::<f64>().prop_filter("no NaN", |x| !x.is_nan())) {
            prop_assert!(!f.is_nan());
            let _ = b;
        }
    }
}
