//! Consensus-in-the-cluster integration: the rule-commit protocol running
//! inside the simulator under healthy and faulty networks.

use esdb_cluster::{ClusterConfig, PolicySpec, SimCluster};
use esdb_common::{NodeId, TenantId};
use esdb_consensus::{FaultPlan, LinkFault};
use esdb_workload::{RateSchedule, TraceGenerator};

fn run_with_plan(plan: FaultPlan, secs: u64) -> (usize, f64) {
    let mut cfg = ClusterConfig::small(PolicySpec::Dynamic);
    cfg.monitor_period_ms = 1_000;
    cfg.consensus_t_ms = 500;
    let tick = cfg.tick_ms;
    let mut cluster = SimCluster::new(cfg);
    cluster.set_fault_plan(plan);
    let mut gen = TraceGenerator::new(1_000, 1.5, RateSchedule::constant(1_500.0), 5);
    for _ in 0..(secs * 1_000 / tick) {
        let now = cluster.now();
        let events = gen.tick(now, tick);
        cluster.step(events);
    }
    let report = cluster.finish();
    (report.rules_committed, report.throughput_tps(secs * 500))
}

#[test]
fn healthy_network_commits_rules_and_balances() {
    let (rules, tput) = run_with_plan(FaultPlan::healthy(20), 40);
    assert!(rules > 0, "no rules committed on a healthy network");
    assert!(tput > 1_200.0, "throughput {tput} too low after balancing");
}

#[test]
fn partitioned_node_blocks_rule_commits_but_not_writes() {
    let mut plan = FaultPlan::healthy(20);
    plan.set(NodeId(2), LinkFault::Partitioned);
    let (rules, tput) = run_with_plan(plan, 40);
    // Every round aborts (a participant never acks), so no rules commit —
    // the system degrades to hashing but keeps serving writes.
    assert_eq!(rules, 0, "rules must not commit under partition");
    assert!(tput > 600.0, "writes must continue during aborted rounds");
}

#[test]
fn slow_link_within_deadline_still_commits() {
    let mut plan = FaultPlan::healthy(20);
    // 2*(20+80) = 200 ms < T/2 = 250 ms: slow but acceptable.
    plan.set(NodeId(1), LinkFault::Delay(80));
    let (rules, _) = run_with_plan(plan, 40);
    assert!(
        rules > 0,
        "slow-but-in-deadline participant must not abort rounds"
    );
}

#[test]
fn recovery_after_partition_heals() {
    // First 20 s partitioned (no rules), then healed: rules commit and
    // the hot tenant spreads.
    let mut cfg = ClusterConfig::small(PolicySpec::Dynamic);
    cfg.monitor_period_ms = 1_000;
    cfg.consensus_t_ms = 500;
    let tick = cfg.tick_ms;
    let mut cluster = SimCluster::new(cfg);
    let mut bad = FaultPlan::healthy(20);
    bad.set(NodeId(0), LinkFault::DropPrepare);
    cluster.set_fault_plan(bad);
    let mut gen = TraceGenerator::new(1_000, 1.5, RateSchedule::constant(1_500.0), 5);
    for _ in 0..200 {
        let now = cluster.now();
        let events = gen.tick(now, tick);
        cluster.step(events);
    }
    assert_eq!(cluster.report_so_far().rules_committed, 0);
    cluster.set_fault_plan(FaultPlan::healthy(20));
    for _ in 0..200 {
        let now = cluster.now();
        let events = gen.tick(now, tick);
        cluster.step(events);
    }
    let hot = gen.tenant_of_rank(1);
    assert!(
        cluster.report_so_far().rules_committed > 0,
        "no rules after heal"
    );
    assert!(
        cluster.read_span(hot).len > 1,
        "hot tenant not split after heal"
    );
    let _ = TenantId(0);
}
