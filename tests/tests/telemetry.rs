//! End-to-end telemetry correctness: lock-free registry totals under
//! contention, histogram merge algebra, trace/slow-log behavior through
//! the full query path, and exposition format gates.

use esdb_common::{RecordId, TenantId};
use esdb_core::{Esdb, EsdbConfig};
use esdb_doc::{CollectionSchema, Document};
use esdb_telemetry::{
    json_histogram_counts, lint_prometheus, prometheus_histogram_counts, Histogram,
    HistogramSnapshot, Labels, MetricsRegistry, TelemetryConfig,
};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

static NEXT_DIR: AtomicU64 = AtomicU64::new(0);

fn tmpdir(tag: &str) -> PathBuf {
    let n = NEXT_DIR.fetch_add(1, Ordering::Relaxed);
    let d = std::env::temp_dir().join(format!("esdb-telem-{tag}-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn doc(tenant: u64, record: u64, at: u64) -> Document {
    Document::builder(TenantId(tenant), RecordId(record), at)
        .field("status", (record % 2) as i64)
        .field("group", (record % 5) as i64)
        .field("auction_title", format!("item number {record}"))
        .build()
}

/// Concurrent counter adds across threads must total exactly the
/// sequential sum — the registry's whole reason to be lock-free is that
/// it never drops or double-counts an update.
#[test]
fn concurrent_counter_totals_match_sequential_sum() {
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 10_000;
    let registry = Arc::new(MetricsRegistry::new());
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let registry = Arc::clone(&registry);
            s.spawn(move || {
                for i in 0..PER_THREAD {
                    // Mix cached-handle and probe paths, plus labeled
                    // series that contend on the same stripes.
                    registry.add("esdb_test_ops_total", Labels::none(), 1);
                    registry.add("esdb_test_ops_total", Labels::shard((t % 4) as u32), 1);
                    registry.observe("esdb_test_latency_ns", Labels::none(), i + 1);
                }
            });
        }
    });
    assert_eq!(
        registry.counter_value("esdb_test_ops_total", Labels::none()),
        THREADS * PER_THREAD
    );
    let per_shard: u64 = (0..4)
        .map(|s| registry.counter_value("esdb_test_ops_total", Labels::shard(s)))
        .sum();
    assert_eq!(per_shard, THREADS * PER_THREAD);
    let h = registry.histogram("esdb_test_latency_ns", Labels::none());
    assert_eq!(h.count(), THREADS * PER_THREAD);
    // Sum is exact: every thread contributed 1 + 2 + … + PER_THREAD.
    let expected_sum = THREADS * (PER_THREAD * (PER_THREAD + 1) / 2);
    assert_eq!(h.snapshot().sum(), expected_sum as u128);
}

/// Concurrent histogram records agree with a sequentially built one
/// bucket for bucket.
#[test]
fn concurrent_histogram_matches_sequential() {
    const THREADS: u64 = 8;
    let concurrent = Arc::new(Histogram::new());
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let h = Arc::clone(&concurrent);
            s.spawn(move || {
                for i in 0..5_000u64 {
                    h.record(i * 37 + t);
                }
            });
        }
    });
    let mut sequential = HistogramSnapshot::default();
    for t in 0..THREADS {
        for i in 0..5_000u64 {
            sequential.record(i * 37 + t);
        }
    }
    let snap = concurrent.snapshot();
    assert_eq!(snap.count(), sequential.count());
    assert_eq!(snap.max(), sequential.max());
    let a: Vec<(u64, u64)> = snap.buckets().collect();
    let b: Vec<(u64, u64)> = sequential.buckets().collect();
    assert_eq!(a, b, "bucket-for-bucket identical");
}

proptest! {
    /// Histogram merge is associative and order-independent: any
    /// grouping and ordering of per-shard snapshots yields the same
    /// merged distribution (counts, sum, max, every quantile).
    #[test]
    fn histogram_merge_is_associative_and_commutative(
        parts in proptest::collection::vec(
            proptest::collection::vec(0u64..1_000_000, 0..40), 2..5),
        perm_seed in 0usize..24,
    ) {
        let snaps: Vec<HistogramSnapshot> = parts.iter().map(|vs| {
            let mut h = HistogramSnapshot::default();
            for &v in vs { h.record(v); }
            h
        }).collect();

        // Left fold: ((a ∪ b) ∪ c) ∪ d …
        let mut left = HistogramSnapshot::default();
        for s in &snaps { left.merge(s); }

        // Right fold: a ∪ (b ∪ (c ∪ d)) …
        let mut right = HistogramSnapshot::default();
        for s in snaps.iter().rev() { right.merge(s); }

        // An arbitrary permutation.
        let mut order: Vec<usize> = (0..snaps.len()).collect();
        let k = perm_seed % order.len();
        order.rotate_left(k);
        if perm_seed % 2 == 1 { order.reverse(); }
        let mut permuted = HistogramSnapshot::default();
        for &i in &order { permuted.merge(&snaps[i]); }

        for other in [&right, &permuted] {
            prop_assert_eq!(left.count(), other.count());
            prop_assert_eq!(left.sum(), other.sum());
            prop_assert_eq!(left.max(), other.max());
            let a: Vec<(u64, u64)> = left.buckets().collect();
            let b: Vec<(u64, u64)> = other.buckets().collect();
            prop_assert_eq!(a, b);
        }
        for q in [0.5, 0.9, 0.99, 0.999] {
            prop_assert_eq!(left.quantile(q), right.quantile(q));
        }
    }
}

/// Telemetry on vs off must be row-identical across writes, refreshes,
/// and repeated queries — observation must not perturb the observed.
#[test]
fn telemetry_on_off_results_identical() {
    let mut on = Esdb::open(
        CollectionSchema::transaction_logs(),
        EsdbConfig::new(tmpdir("on"))
            .shards(4)
            .telemetry_config(TelemetryConfig {
                trace_sample_every: 1,
                slow_query_threshold_us: 0,
                ..TelemetryConfig::default()
            }),
    )
    .unwrap();
    let mut off = Esdb::open(
        CollectionSchema::transaction_logs(),
        EsdbConfig::new(tmpdir("off")).shards(4).telemetry(false),
    )
    .unwrap();
    for r in 0..300u64 {
        let d = doc(r % 7, r, 1_000 + r);
        on.insert(d.clone()).unwrap();
        off.insert(d).unwrap();
    }
    on.refresh();
    off.refresh();
    let sqls = [
        "SELECT * FROM transaction_logs WHERE tenant_id = 3 AND status = 1",
        "SELECT * FROM transaction_logs WHERE status = 0 ORDER BY created_time DESC LIMIT 25",
        "SELECT * FROM transaction_logs WHERE tenant_id = 5 ORDER BY created_time ASC LIMIT 10",
    ];
    for sql in sqls {
        for _ in 0..2 {
            let a = on.query(sql).unwrap();
            let b = off.query(sql).unwrap();
            assert_eq!(a.docs, b.docs, "{sql}");
        }
    }
    assert!(!on.slow_queries().is_empty());
    assert!(off.slow_queries().is_empty());
}

/// Satellite fix: a scatter-gather over k shards reports exactly k
/// execute samples, even for shards that contribute zero rows and for
/// request-cache hits.
#[test]
fn every_shard_reports_execute_sample() {
    let mut db = Esdb::open(
        CollectionSchema::transaction_logs(),
        EsdbConfig::new(tmpdir("empty-shards"))
            .shards(8)
            .telemetry_config(TelemetryConfig {
                trace_sample_every: 1,
                slow_query_threshold_us: 0,
                ..TelemetryConfig::default()
            }),
    )
    .unwrap();
    // One tenant only: most of the 8 shards stay completely empty.
    for r in 0..50u64 {
        db.insert(doc(1, r, 1_000 + r)).unwrap();
    }
    db.refresh();
    // Tenantless fan-out twice: second pass is served from the request
    // cache and must still report all shards.
    for pass in 0..2 {
        db.query("SELECT * FROM transaction_logs WHERE status = 1")
            .unwrap();
        let slow = db.slow_queries();
        let entry = slow.last().expect("slow-logged");
        assert_eq!(entry.fanout, 8);
        let mut shards: Vec<u32> = entry
            .stages
            .iter()
            .filter(|s| s.stage == "execute")
            .filter_map(|s| s.shard)
            .collect();
        shards.sort_unstable();
        assert_eq!(
            shards,
            (0..8).collect::<Vec<u32>>(),
            "pass {pass}: every shard reports execute, empty or cached"
        );
    }
}

/// The live snapshot of a real instance passes the Prometheus lint and
/// histogram counts round-trip identically through both renderings.
#[test]
fn live_snapshot_lints_and_round_trips() {
    let mut db = Esdb::open(
        CollectionSchema::transaction_logs(),
        EsdbConfig::new(tmpdir("lint"))
            .shards(4)
            .telemetry_config(TelemetryConfig {
                trace_sample_every: 1,
                ..TelemetryConfig::default()
            }),
    )
    .unwrap();
    for r in 0..200u64 {
        db.insert(doc(r % 9, r, 1_000 + r)).unwrap();
    }
    db.refresh();
    db.merge();
    db.flush().unwrap();
    for _ in 0..5 {
        db.query("SELECT * FROM transaction_logs WHERE tenant_id = 1")
            .unwrap();
        db.query("SELECT * FROM transaction_logs WHERE status = 0 LIMIT 10")
            .unwrap();
    }
    let snap = db.telemetry_snapshot();
    assert!(!snap.histograms.is_empty());
    let prom = snap.to_prometheus();
    let errors = lint_prometheus(&prom);
    assert!(errors.is_empty(), "lint violations: {errors:?}");
    let prom_counts = prometheus_histogram_counts(&prom);
    let json_counts = json_histogram_counts(&snap.to_json());
    assert!(!prom_counts.is_empty());
    assert_eq!(prom_counts, json_counts, "Prometheus/JSON count round-trip");
    // Storage-layer stage series made it into the shared registry.
    assert!(prom.contains("esdb_storage_stage_ns"));
    assert!(prom.contains("esdb_query_total_ns"));
    assert!(prom.contains("esdb_monitor_writes_total"));
    // Flight-recorder write-path series: group-commit drain latency.
    assert!(prom.contains("esdb_write_drain_ns"));
}

/// Delta snapshots drain monotone counters while levels stay absolute,
/// and a quiet interval reads as all-zero deltas.
#[test]
fn take_stats_intervals_partition_totals() {
    let mut db = Esdb::open(
        CollectionSchema::transaction_logs(),
        EsdbConfig::new(tmpdir("deltas")).shards(4),
    )
    .unwrap();
    let mut writes_seen = 0u64;
    for interval in 0..3u64 {
        for r in 0..20u64 {
            db.insert(doc(1, interval * 100 + r, 1_000 + r)).unwrap();
        }
        db.refresh();
        db.query("SELECT * FROM transaction_logs WHERE tenant_id = 1")
            .unwrap();
        let s = db.take_stats();
        assert_eq!(s.writes, 20, "interval {interval}");
        assert_eq!(s.queries, 1);
        writes_seen += s.writes;
    }
    assert_eq!(writes_seen, db.stats().writes, "deltas partition the total");
    let quiet = db.take_stats();
    assert_eq!(quiet.writes, 0);
    assert_eq!(quiet.queries, 0);
    assert_eq!(quiet.request_cache.hits, 0);
    assert!(quiet.live_docs > 0, "levels remain absolute");
}
