//! Parallel scatter-gather equivalence: for a hot tenant whose data
//! spans many shards, query results (rows, order, and work counters)
//! must be byte-identical at every parallelism degree, including the
//! paper's Fig. 17 query templates; batched writes must land exactly
//! where single writes would.

use esdb_common::{RecordId, TenantId};
use esdb_core::{Esdb, EsdbConfig, RoutingMode, WriteBatcher};
use esdb_doc::{CollectionSchema, Document, WriteOp};
use esdb_integration_tests::test_dir;
use esdb_workload::QueryGenerator;

const HOT: u64 = 10_086;
const T0: u64 = 1_631_750_400_000;

fn doc(tenant: u64, record: u64, at: u64) -> Document {
    Document::builder(TenantId(tenant), RecordId(record), at)
        .field("status", (record % 3) as i64)
        .field("group", (record % 7) as i64)
        .field(
            "province",
            ["zhejiang", "jiangsu", "guangdong", "shanghai"][record as usize % 4],
        )
        .field("buyer_id", (700_000 + record * 13 % 300_000) as i64)
        .field("auction_title", format!("rust book number {record}"))
        .build()
}

/// An instance whose hot tenant deterministically spans all `n_shards`
/// shards, populated with `rows` documents.
fn build(name: &str, n_shards: u32, rows: u64) -> Esdb {
    let mut db = Esdb::open(
        CollectionSchema::transaction_logs(),
        EsdbConfig::new(test_dir(name))
            .shards(n_shards)
            .routing(RoutingMode::DoubleHashing(n_shards))
            .parallelism(1),
    )
    .expect("open");
    for r in 0..rows {
        let tenant = if r % 5 == 4 { 1 + r % 50 } else { HOT };
        db.insert(doc(tenant, r, T0 + r * 1_000)).expect("insert");
    }
    db.refresh();
    db.merge();
    db.refresh();
    db
}

#[test]
fn fig17_templates_identical_across_parallelism_degrees() {
    let mut db = build("par-fig17", 16, 6_000);
    // 20 generated Fig. 17 queries + the base template + a global scan.
    let mut generator = QueryGenerator::new(1_500, 7);
    let mut sqls: Vec<String> = (0..20)
        .map(|_| generator.generate(TenantId(HOT), T0 + 1_000_000, T0 + 5_000_000))
        .collect();
    sqls.push(QueryGenerator::base_template(
        TenantId(HOT),
        T0,
        T0 + 6_000 * 1_000,
    ));
    sqls.push(
        "SELECT * FROM transaction_logs WHERE status = 1 ORDER BY created_time DESC LIMIT 40"
            .into(),
    );

    for sql in &sqls {
        db.set_parallelism(1);
        let sequential = db.query(sql).expect("sequential");
        for degree in [2, 4, 16] {
            db.set_parallelism(degree);
            let parallel = db.query(sql).expect("parallel");
            assert_eq!(
                parallel.docs, sequential.docs,
                "rows diverged at parallelism {degree} for: {sql}"
            );
            assert_eq!(
                parallel.postings_scanned, sequential.postings_scanned,
                "postings_scanned diverged at parallelism {degree} for: {sql}"
            );
            assert_eq!(
                parallel.docs_scanned, sequential.docs_scanned,
                "docs_scanned diverged at parallelism {degree} for: {sql}"
            );
        }
    }
}

#[test]
fn repeated_parallel_runs_are_stable() {
    // Thread scheduling must not leak into results: the same query run
    // many times at high parallelism returns the same rows every time.
    let mut db = build("par-stable", 16, 3_000);
    db.set_parallelism(8);
    let sql = format!(
        "SELECT * FROM transaction_logs WHERE tenant_id = {HOT} \
         ORDER BY created_time DESC LIMIT 200"
    );
    let first = db.query(&sql).expect("query");
    assert_eq!(first.docs.len(), 200);
    for _ in 0..10 {
        let again = db.query(&sql).expect("query");
        assert_eq!(again.docs, first.docs);
    }
}

#[test]
fn batched_mixed_shard_writes_match_singles() {
    // The same ops through write_batch (grouped per shard, applied
    // concurrently) and through write() one at a time must produce
    // identical shard contents and identical query results.
    let ops: Vec<WriteOp> = (0..500u64)
        .map(|r| WriteOp::insert(doc(1 + r % 23, r, T0 + r)))
        .collect();

    let mut batched = Esdb::open(
        CollectionSchema::transaction_logs(),
        EsdbConfig::new(test_dir("par-batch-a")).shards(8),
    )
    .expect("open");
    let mut batcher = WriteBatcher::new();
    for op in &ops {
        batcher.push(op.clone());
    }
    let applied = batched.write_batch(&mut batcher).expect("batch");
    assert_eq!(applied.total, 500);
    let batch_sum: usize = applied.per_shard.iter().map(|(_, n)| n).sum();
    assert_eq!(batch_sum, 500);
    assert!(applied.per_shard.len() > 1, "mixed batch spans shards");

    let mut singles = Esdb::open(
        CollectionSchema::transaction_logs(),
        EsdbConfig::new(test_dir("par-batch-b")).shards(8),
    )
    .expect("open");
    for op in ops {
        singles.write(op).expect("write");
    }

    batched.refresh();
    singles.refresh();
    assert_eq!(batched.shard_doc_counts(), singles.shard_doc_counts());
    // Per-shard counts reported by the batch agree with placement.
    for (shard, n) in &applied.per_shard {
        assert_eq!(batched.shard_doc_counts()[shard.index()], *n);
    }
    let sql = "SELECT * FROM transaction_logs WHERE group = 3 ORDER BY created_time ASC";
    assert_eq!(
        batched.query(sql).expect("q").docs,
        singles.query(sql).expect("q").docs
    );
}

#[test]
fn busy_counters_accumulate_across_span() {
    let mut db = build("par-busy", 8, 2_000);
    db.set_parallelism(4);
    for _ in 0..5 {
        db.query(&format!(
            "SELECT * FROM transaction_logs WHERE tenant_id = {HOT}"
        ))
        .expect("query");
    }
    let stats = db.stats();
    assert_eq!(stats.parallelism, 4);
    assert_eq!(stats.shard_busy_micros.len(), 8);
    let busy_shards = stats.shard_busy_micros.iter().filter(|&&m| m > 0).count();
    assert!(
        busy_shards >= 2,
        "span-wide fan-out should charge busy time to several shards: {:?}",
        stats.shard_busy_micros
    );
    assert!(stats.queries >= 5);
}
