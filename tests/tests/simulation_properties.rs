//! Cross-policy invariants of the cluster simulator — the properties the
//! paper's evaluation relies on, checked mechanically.

use esdb_cluster::{ClusterConfig, PolicySpec, RunReport, SimCluster};
use esdb_workload::{RateSchedule, TraceGenerator};

fn run(policy: PolicySpec, theta: f64, rate: f64, secs: u64, seed: u64) -> RunReport {
    let cfg = ClusterConfig::small(policy);
    let tick = cfg.tick_ms;
    let mut cluster = SimCluster::new(cfg);
    let mut gen = TraceGenerator::new(1_000, theta, RateSchedule::constant(rate), seed);
    for _ in 0..(secs * 1_000 / tick) {
        let now = cluster.now();
        let events = gen.tick(now, tick);
        cluster.step(events);
    }
    cluster.finish()
}

#[test]
fn throughput_ordering_under_skew() {
    // At an over-saturation rate with heavy skew:
    // double >= dynamic > hashing (Fig. 10/11 ordering).
    let hash = run(PolicySpec::Hashing, 1.5, 1_800.0, 50, 1);
    let dynamic = run(PolicySpec::Dynamic, 1.5, 1_800.0, 50, 1);
    let double = run(PolicySpec::DoubleHashing { s: 8 }, 1.5, 1_800.0, 50, 1);
    let w = 25_000;
    assert!(double.throughput_tps(w) >= dynamic.throughput_tps(w) * 0.95);
    assert!(dynamic.throughput_tps(w) > hash.throughput_tps(w) * 1.1);
}

#[test]
fn delay_ordering_under_skew() {
    let hash = run(PolicySpec::Hashing, 1.5, 1_500.0, 50, 2);
    let double = run(PolicySpec::DoubleHashing { s: 8 }, 1.5, 1_500.0, 50, 2);
    assert!(
        hash.avg_delay_ms(25_000) > 3.0 * double.avg_delay_ms(25_000),
        "hashing delay {} should dwarf double hashing {}",
        hash.avg_delay_ms(25_000),
        double.avg_delay_ms(25_000)
    );
}

#[test]
fn no_skew_means_no_policy_difference() {
    // θ=0 (uniform): all three policies are equivalent (Fig. 11 at θ=0).
    let hash = run(PolicySpec::Hashing, 0.0, 1_500.0, 30, 3);
    let double = run(PolicySpec::DoubleHashing { s: 8 }, 0.0, 1_500.0, 30, 3);
    let dynamic = run(PolicySpec::Dynamic, 0.0, 1_500.0, 30, 3);
    let w = 15_000;
    let ts = [
        hash.throughput_tps(w),
        double.throughput_tps(w),
        dynamic.throughput_tps(w),
    ];
    let max = ts.iter().cloned().fold(f64::MIN, f64::max);
    let min = ts.iter().cloned().fold(f64::MAX, f64::min);
    assert!(max / min < 1.05, "uniform workload should equalize: {ts:?}");
    assert_eq!(dynamic.rules_committed, 0, "no hotspots to split at θ=0");
}

#[test]
fn stddev_ordering_matches_fig12() {
    let hash = run(PolicySpec::Hashing, 1.5, 1_500.0, 40, 4);
    let double = run(PolicySpec::DoubleHashing { s: 8 }, 1.5, 1_500.0, 40, 4);
    let dynamic = run(PolicySpec::Dynamic, 1.5, 1_500.0, 40, 4);
    assert!(double.node_throughput_stddev() <= dynamic.node_throughput_stddev() * 1.5);
    assert!(dynamic.node_throughput_stddev() < hash.node_throughput_stddev());
    assert!(dynamic.shard_throughput_stddev() < hash.shard_throughput_stddev());
}

#[test]
fn littles_law_consistency() {
    // In a stable under-capacity run, Little's-law delay ≈ completed-delay
    // (both ≈ one tick); in an overloaded run it must exceed it.
    let stable = run(PolicySpec::DoubleHashing { s: 8 }, 0.5, 1_000.0, 30, 5);
    let d_little = stable.avg_delay_ms(15_000);
    let d_completed = stable.avg_completed_delay_ms(15_000);
    assert!(
        (d_little - d_completed).abs() <= 120.0,
        "stable run: little {d_little} vs completed {d_completed}"
    );
    let overloaded = run(PolicySpec::Hashing, 1.5, 2_500.0, 30, 5);
    assert!(
        overloaded.avg_delay_ms(15_000) > overloaded.avg_completed_delay_ms(15_000),
        "overload must show up in the sojourn estimate"
    );
}

#[test]
fn per_policy_conservation() {
    for policy in [
        PolicySpec::Hashing,
        PolicySpec::DoubleHashing { s: 8 },
        PolicySpec::Dynamic,
    ] {
        let cfg = ClusterConfig::small(policy);
        let tick = cfg.tick_ms;
        let mut cluster = SimCluster::new(cfg);
        let mut gen = TraceGenerator::new(500, 1.0, RateSchedule::constant(900.0), 6);
        let mut generated = 0u64;
        for _ in 0..300 {
            let now = cluster.now();
            let events = gen.tick(now, tick);
            generated += events.len() as u64;
            cluster.step(events);
        }
        cluster.drain(30_000);
        assert_eq!(cluster.backlog(), 0, "{policy:?} backlog not drained");
        let report = cluster.finish();
        let completed: u64 = report.ticks.iter().map(|t| t.completed).sum();
        assert_eq!(completed, generated, "{policy:?} lost writes");
        assert_eq!(report.per_shard_writes.iter().sum::<u64>(), generated);
        assert_eq!(report.per_node_completed.iter().sum::<u64>(), generated);
        assert_eq!(
            report.per_tenant_docs.values().sum::<u64>(),
            generated,
            "{policy:?} tenant accounting broken"
        );
    }
}
