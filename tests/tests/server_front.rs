//! Network front-end integration: wire-protocol round-trips, TCP
//! end-to-end row identity against the embedded API, auth failure
//! paths, per-tenant quota conservation under concurrent clients, and
//! graceful shutdown with zero lost acknowledged writes.

use esdb_common::{RecordId, TenantId};
use esdb_core::{Esdb, EsdbConfig};
use esdb_doc::{CollectionSchema, Document, FieldValue};
use esdb_integration_tests::test_dir;
use esdb_server::{
    start, wire, AdmissionConfig, ClientError, EsdbClient, RateLimit, ServerConfig, TcpTransport,
    TokenTable, Transport, WireOp,
};
use esdb_telemetry::lint_prometheus;
use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};

fn open(tag: &str) -> Esdb {
    Esdb::open(
        CollectionSchema::transaction_logs(),
        EsdbConfig::new(test_dir(&format!("srv-{tag}-{}", rand::random::<u64>()))).shards(4),
    )
    .expect("open")
}

fn serve(db: Esdb, config: ServerConfig) -> (esdb_server::ServerHandle, String) {
    let transport = TcpTransport::bind("127.0.0.1:0").expect("bind");
    let addr = transport.local_addr();
    (start(db, config, Box::new(transport)), addr)
}

fn default_tokens() -> TokenTable {
    TokenTable::new()
        .tenant("tok-1", TenantId(1))
        .tenant("tok-2", TenantId(2))
        .admin("root", TenantId(0))
}

// ---------------------------------------------------------------------
// Wire-protocol round-trip properties
// ---------------------------------------------------------------------

fn arb_value() -> impl Strategy<Value = FieldValue> {
    prop_oneof![
        Just(FieldValue::Null),
        any::<bool>().prop_map(FieldValue::Bool),
        any::<i64>().prop_map(FieldValue::Int),
        // Finite floats only: NaN breaks PartialEq and the engine
        // rejects non-finite values anyway.
        (-1.0e12f64..1.0e12).prop_map(FieldValue::Float),
        any::<u64>().prop_map(FieldValue::Timestamp),
        "[a-zA-Z0-9 \"\\\\\n\t\u{4e00}-\u{4e10}]{0,24}".prop_map(FieldValue::Str),
    ]
}

fn arb_doc() -> impl Strategy<Value = Document> {
    (
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        proptest::collection::vec(("[a-z]{1,8}", arb_value()), 0..6),
        proptest::collection::vec(("[a-z]{1,6}", "[a-z0-9]{0,8}"), 0..3),
    )
        .prop_map(|(t, r, c, fields, attrs)| {
            let mut b = Document::builder(TenantId(t), RecordId(r), c);
            for (name, value) in fields {
                b = b.field(name, value);
            }
            for (k, v) in attrs {
                b = b.attr(k, v);
            }
            b.build()
        })
}

fn arb_wire_op() -> impl Strategy<Value = WireOp> {
    prop_oneof![
        arb_doc().prop_map(WireOp::Insert),
        arb_doc().prop_map(WireOp::Update),
        (any::<u64>(), any::<u64>(), any::<u64>()).prop_map(|(t, r, c)| WireOp::Delete {
            tenant: TenantId(t),
            record: RecordId(r),
            created_at: c,
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Write requests (arbitrary op mixes) survive encode → decode.
    #[test]
    fn write_request_round_trips(ops in proptest::collection::vec(arb_wire_op(), 0..8)) {
        let req = wire::WriteRequest { ops };
        let decoded = wire::decode_write_request(&wire::encode_write_request(&req)).unwrap();
        prop_assert_eq!(decoded, req);
    }

    /// Query results with arbitrary documents survive encode → decode,
    /// including integral floats, u64-range timestamps, and unicode.
    #[test]
    fn rows_round_trip(
        docs in proptest::collection::vec(arb_doc(), 0..6),
        postings in any::<u64>(),
        scanned in any::<u64>(),
    ) {
        let rows = wire::WireRows { docs, postings_scanned: postings, docs_scanned: scanned };
        let decoded = wire::decode_rows(&wire::encode_rows(&rows)).unwrap();
        prop_assert_eq!(decoded, rows);
    }

    /// Aggregate results round-trip, group keys included.
    #[test]
    fn agg_round_trips(
        rows in proptest::collection::vec(
            (
                prop_oneof![Just(None), arb_value().prop_map(Some)],
                proptest::collection::vec(arb_value(), 0..4),
            ),
            0..6,
        ),
        payload_reads in any::<u64>(),
    ) {
        let agg = wire::WireAgg { rows, payload_reads };
        let decoded = wire::decode_agg(&wire::encode_agg(&agg)).unwrap();
        prop_assert_eq!(decoded, agg);
    }

    /// Error responses round-trip with retry hints, and acks with
    /// per-shard splits.
    #[test]
    fn error_and_ack_round_trip(
        code in "[a-z_]{1,16}",
        message in "[ -~]{0,64}",
        retry in prop_oneof![Just(None), any::<u64>().prop_map(Some)],
        applied in any::<u64>(),
        per_shard in proptest::collection::vec((any::<u32>(), any::<u64>()), 0..6),
    ) {
        let e = wire::WireError { code, message, retry_after_ms: retry };
        prop_assert_eq!(wire::decode_error(&wire::encode_error(&e)).unwrap(), e);
        let a = wire::WriteAck { applied, per_shard };
        prop_assert_eq!(wire::decode_write_ack(&wire::encode_write_ack(&a)).unwrap(), a);
    }
}

// ---------------------------------------------------------------------
// TCP end-to-end
// ---------------------------------------------------------------------

fn sample_doc(tenant: u64, rid: u64, status: i64) -> Document {
    Document::builder(TenantId(tenant), RecordId(rid), 1_000 + rid)
        .field("status", status)
        .field("amount", FieldValue::Float(status as f64 + 0.25))
        .field("province", format!("prov-{}", rid % 3))
        .build()
}

/// An authenticated client writes over TCP, refreshes, and reads its
/// rows back byte-identically to the embedded `Esdb::query` on the
/// same engine after shutdown.
#[test]
fn tcp_round_trip_matches_embedded_query() {
    let db = open("e2e");
    let (handle, addr) = serve(
        db,
        ServerConfig {
            tokens: default_tokens(),
            admission: AdmissionConfig::default(),
        },
    );

    let mut client = EsdbClient::connect(&addr, "tok-1").expect("connect");
    let mut admin = EsdbClient::connect(&addr, "root").expect("connect admin");
    for rid in 0..40u64 {
        client
            .insert(sample_doc(1, rid, (rid % 7) as i64))
            .expect("insert over tcp");
    }
    admin.admin_refresh().expect("refresh");

    let sql = "SELECT * FROM transaction_logs WHERE tenant_id = 1 ORDER BY created_time ASC";
    let over_wire = client.query(sql).expect("query over tcp");

    // Point lookups work over the wire too.
    let got = client
        .get(TenantId(1), RecordId(7), 1_007)
        .expect("get over tcp")
        .expect("doc exists");
    assert_eq!(got.record_id, RecordId(7));
    // ...but not for another tenant's rows.
    let denied = client.get(TenantId(2), RecordId(7), 1_007);
    assert!(matches!(
        denied,
        Err(ClientError::Server { status: 403, .. })
    ));

    let (db, report) = handle.shutdown();
    assert_eq!(report.refused, 0);
    let embedded = db.query(sql).expect("embedded query");
    assert_eq!(
        over_wire.docs, embedded.docs,
        "rows over the wire must be identical to the embedded result"
    );
    assert_eq!(over_wire.docs.len(), 40);

    // Aggregates too.
    drop(db);
}

/// Aggregate results over the wire match the embedded aggregate.
#[test]
fn tcp_aggregate_matches_embedded() {
    let mut db = open("agg");
    for rid in 0..30u64 {
        db.insert(sample_doc(1, rid, (rid % 3) as i64))
            .expect("insert");
    }
    db.refresh();
    let sql =
        "SELECT COUNT(*), SUM(amount) FROM transaction_logs WHERE tenant_id = 1 GROUP BY status";
    let embedded = db.aggregate(sql).expect("embedded aggregate");

    let (handle, addr) = serve(
        db,
        ServerConfig {
            tokens: default_tokens(),
            admission: AdmissionConfig::default(),
        },
    );
    let mut client = EsdbClient::connect(&addr, "tok-1").expect("connect");
    let over_wire = client.aggregate(sql).expect("aggregate over tcp");
    assert_eq!(over_wire.to_rows(), embedded.rows);
    handle.shutdown();
}

/// Bad tokens get 401; tenant tokens get 403 on admin routes and on
/// cross-tenant writes; all are visible in `rejected_counts`.
#[test]
fn auth_failures_are_rejected_and_counted() {
    let db = open("auth");
    let (handle, addr) = serve(
        db,
        ServerConfig {
            tokens: default_tokens(),
            admission: AdmissionConfig::default(),
        },
    );

    let mut bad = EsdbClient::connect(&addr, "wrong-token").expect("connect");
    assert!(matches!(
        bad.query("SELECT * FROM transaction_logs WHERE tenant_id = 1"),
        Err(ClientError::Server { status: 401, .. })
    ));

    let mut t1 = EsdbClient::connect(&addr, "tok-1").expect("connect");
    assert!(matches!(
        t1.admin_metrics(),
        Err(ClientError::Server { status: 403, .. })
    ));
    // Cross-tenant write: token for tenant 1 writing tenant 2's doc.
    assert!(matches!(
        t1.insert(sample_doc(2, 1, 0)),
        Err(ClientError::Server { status: 403, .. })
    ));
    // Admin token may write any tenant and read admin routes.
    let mut admin = EsdbClient::connect(&addr, "root").expect("connect");
    admin
        .insert(sample_doc(2, 1, 0))
        .expect("admin cross-tenant write");
    let metrics = admin.admin_metrics().expect("metrics");
    assert!(
        lint_prometheus(&metrics).is_empty(),
        "prometheus lint: {:?}",
        lint_prometheus(&metrics)
    );
    assert!(metrics.contains("esdb_server_requests_total"));
    let rules = admin.admin_rules().expect("rules json");
    assert!(rules.contains("rule_count"));
    let stats = admin.admin_stats().expect("stats json");
    assert!(stats.contains("requests_rejected"));

    let rejected = handle.rejected_counts();
    assert!(
        rejected.auth >= 3,
        "401 + 403s should be counted as auth rejections, got {rejected:?}"
    );
    handle.shutdown();
}

/// Tenant tokens are confined on the SQL read path too: a tenant-1
/// token cannot query or aggregate tenant-2's rows (or run a query
/// with no tenant predicate at all), while an admin token can.
#[test]
fn queries_are_confined_to_the_token_tenant() {
    let mut db = open("confine");
    for rid in 0..8u64 {
        db.insert(sample_doc(1, rid, 0)).expect("insert t1");
        db.insert(sample_doc(2, 100 + rid, 0)).expect("insert t2");
    }
    db.refresh();
    let (handle, addr) = serve(
        db,
        ServerConfig {
            tokens: default_tokens(),
            admission: AdmissionConfig::default(),
        },
    );

    let mut t1 = EsdbClient::connect(&addr, "tok-1").expect("connect");
    // Own tenant: fine.
    let rows = t1
        .query("SELECT * FROM transaction_logs WHERE tenant_id = 1")
        .expect("own-tenant query");
    assert_eq!(rows.docs.len(), 8);
    assert!(rows.docs.iter().all(|d| d.tenant_id == TenantId(1)));

    // Every escape hatch gets 403 before the engine runs anything.
    for sql in [
        // Another tenant's id.
        "SELECT * FROM transaction_logs WHERE tenant_id = 2",
        // No tenant predicate at all.
        "SELECT * FROM transaction_logs",
        "SELECT * FROM transaction_logs WHERE status = 0",
        // OR branch that escapes the tenant predicate.
        "SELECT * FROM transaction_logs WHERE tenant_id = 1 OR status = 0",
        // IN wider than the token's tenant.
        "SELECT * FROM transaction_logs WHERE tenant_id IN (1, 2)",
        // Inequality / range tricks.
        "SELECT * FROM transaction_logs WHERE tenant_id != 2",
        "SELECT * FROM transaction_logs WHERE tenant_id >= 1",
    ] {
        assert!(
            matches!(t1.query(sql), Err(ClientError::Server { status: 403, .. })),
            "{sql} should be rejected for a tenant-1 token"
        );
    }
    assert!(matches!(
        t1.aggregate("SELECT COUNT(*) FROM transaction_logs WHERE tenant_id = 2"),
        Err(ClientError::Server { status: 403, .. })
    ));
    // Confined aggregate still works.
    let agg = t1
        .aggregate("SELECT COUNT(*) FROM transaction_logs WHERE tenant_id = 1")
        .expect("own-tenant aggregate");
    assert_eq!(agg.rows.len(), 1);

    // Admin tokens cross tenants on the read path.
    let mut admin = EsdbClient::connect(&addr, "root").expect("connect admin");
    let all = admin
        .query("SELECT * FROM transaction_logs")
        .expect("admin unconfined query");
    assert_eq!(all.docs.len(), 16);

    let rejected = handle.rejected_counts();
    assert!(
        rejected.auth >= 8,
        "confinement rejections must be counted as auth, got {rejected:?}"
    );
    handle.shutdown();
}

// ---------------------------------------------------------------------
// Admission conservation under concurrency
// ---------------------------------------------------------------------

/// N client threads hammer one tenant through a tight rate limit;
/// every request is accounted exactly once:
/// `issued == admitted + throttled + shed`, and the engine applied
/// exactly the admitted writes.
#[test]
fn concurrent_clients_conserve_admission_counts() {
    let db = open("conserve");
    let (handle, addr) = serve(
        db,
        ServerConfig {
            tokens: default_tokens(),
            admission: AdmissionConfig {
                tenant_rates: vec![(
                    TenantId(1),
                    RateLimit {
                        capacity: 8,
                        per_sec: 200,
                    },
                )],
                shedding: false,
                ..AdmissionConfig::default()
            },
        },
    );

    const THREADS: u64 = 4;
    const PER_THREAD: u64 = 50;
    let acked = AtomicU64::new(0);
    let throttled = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let addr = addr.clone();
            let acked = &acked;
            let throttled = &throttled;
            scope.spawn(move || {
                let mut client = EsdbClient::connect(&addr, "tok-1").expect("connect");
                for i in 0..PER_THREAD {
                    let rid = t * 1_000 + i;
                    match client.insert(sample_doc(1, rid, 0)) {
                        Ok(ack) => {
                            assert_eq!(ack.applied, 1);
                            acked.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e) if e.is_throttle() => {
                            throttled.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e) => panic!("unexpected error: {e}"),
                    }
                }
            });
        }
    });

    let counts = handle.admission().tenant_counts(TenantId(1));
    assert!(counts.conserved(), "conservation violated: {counts:?}");
    assert_eq!(counts.issued, THREADS * PER_THREAD);
    assert_eq!(counts.admitted, acked.load(Ordering::Relaxed));
    assert_eq!(
        counts.throttled() + counts.shed,
        throttled.load(Ordering::Relaxed)
    );
    assert!(
        counts.throttled() > 0,
        "a 200/s limit under 4 unthrottled client threads must throttle"
    );

    let (db, _report) = handle.shutdown();
    // Engine-side conservation: exactly the admitted writes applied.
    assert_eq!(db.stats().writes, counts.admitted);
}

// ---------------------------------------------------------------------
// Graceful shutdown
// ---------------------------------------------------------------------

/// Writers race a graceful shutdown; every write acknowledged before
/// the drain must be present in the returned engine, and refused
/// requests must not be.
#[test]
fn graceful_shutdown_loses_no_acknowledged_write() {
    let db = open("drain");
    let (handle, addr) = serve(
        db,
        ServerConfig {
            tokens: default_tokens(),
            admission: AdmissionConfig::default(),
        },
    );

    const THREADS: u64 = 3;
    let acked = std::sync::Mutex::new(Vec::<u64>::new());
    let stop = AtomicU64::new(0);
    let handle = std::thread::scope(|scope| {
        for t in 0..THREADS {
            let addr = addr.clone();
            let acked = &acked;
            let stop = &stop;
            scope.spawn(move || {
                let mut client = EsdbClient::connect(&addr, "tok-1").expect("connect");
                let mut rid = t * 100_000;
                loop {
                    if stop.load(Ordering::Acquire) != 0 {
                        break;
                    }
                    match client.insert(sample_doc(1, rid, 0)) {
                        Ok(_) => {
                            acked.lock().unwrap().push(rid);
                            rid += 1;
                        }
                        // Draining (503) or torn connection: stop writing.
                        Err(_) => break,
                    }
                }
            });
        }
        // Let the writers make progress, then drain while they're hot.
        std::thread::sleep(std::time::Duration::from_millis(150));
        let (db, report) = handle.shutdown();
        stop.store(1, Ordering::Release);
        (db, report)
    });
    let (mut db, _report) = handle;

    let acked = acked.into_inner().unwrap();
    assert!(
        !acked.is_empty(),
        "writers should have landed some acknowledged writes"
    );
    db.refresh();
    let rows = db
        .query("SELECT * FROM transaction_logs WHERE tenant_id = 1")
        .expect("query");
    let present: std::collections::HashSet<u64> =
        rows.docs.iter().map(|d| d.record_id.raw()).collect();
    for rid in &acked {
        assert!(
            present.contains(rid),
            "acknowledged write {rid} missing after graceful shutdown"
        );
    }
}

/// After drain starts, new data-plane requests are refused with 503
/// and never acknowledged; `DrainReport::refused` counts them.
#[test]
fn requests_after_drain_get_503() {
    let db = open("refuse");
    let (handle, addr) = serve(
        db,
        ServerConfig {
            tokens: default_tokens(),
            admission: AdmissionConfig::default(),
        },
    );
    let mut client = EsdbClient::connect(&addr, "tok-1").expect("connect");
    client.insert(sample_doc(1, 1, 0)).expect("pre-drain write");

    // Drain in the background while the connection stays open.
    let drainer = std::thread::spawn(move || handle.shutdown());
    std::thread::sleep(std::time::Duration::from_millis(60));
    // The open keep-alive connection is torn down or the request is
    // refused — either way the write is not acknowledged.
    match client.insert(sample_doc(1, 2, 0)) {
        Ok(ack) => panic!("write acknowledged during drain: {ack:?}"),
        Err(ClientError::Server { status, .. }) => assert_eq!(status, 503),
        Err(_) => {} // connection closed: also fine, not acknowledged
    }
    let (mut db, _report) = drainer.join().expect("drain thread");
    db.refresh();
    let rows = db
        .query("SELECT * FROM transaction_logs WHERE tenant_id = 1")
        .expect("query");
    let ids: Vec<u64> = rows.docs.iter().map(|d| d.record_id.raw()).collect();
    assert!(
        ids.contains(&1),
        "acknowledged pre-drain write must survive"
    );
    assert!(
        !ids.contains(&2),
        "unacknowledged post-drain write must not be applied"
    );
}

/// A client that sends half a request and then goes quiet cannot hang
/// the drain: the worker abandons the incomplete (never-acknowledged)
/// request after the drain grace period and `shutdown()` returns.
#[test]
fn drain_is_not_hung_by_a_stalled_partial_request() {
    let db = open("stall");
    let (handle, addr) = serve(
        db,
        ServerConfig {
            tokens: default_tokens(),
            admission: AdmissionConfig::default(),
        },
    );

    // Raw socket: begin a request, never finish it.
    use std::io::Write as _;
    let mut stalled = std::net::TcpStream::connect(&addr).expect("connect raw");
    stalled
        .write_all(b"POST /v1/write HTTP/1.1\r\nauthorization: Bearer tok-1\r\ncontent-length: 4096\r\n\r\npartial")
        .expect("send partial request");
    // Give the worker time to buffer the fragment.
    std::thread::sleep(std::time::Duration::from_millis(100));

    let started = std::time::Instant::now();
    let (db, report) = handle.shutdown();
    assert!(
        started.elapsed() < std::time::Duration::from_secs(5),
        "shutdown must not wait on a stalled client (took {:?})",
        started.elapsed()
    );
    // The abandoned request was never acknowledged, so nothing landed.
    assert_eq!(report.drained, 0);
    assert_eq!(db.stats().writes, 0);
    drop(stalled);
}

/// Journal carries the server lifecycle events (throttle + drain).
#[test]
fn journal_records_server_events() {
    let db = open("journal");
    let telemetry = std::sync::Arc::clone(db.telemetry());
    let (handle, addr) = serve(
        db,
        ServerConfig {
            tokens: default_tokens(),
            admission: AdmissionConfig {
                tenant_rates: vec![(
                    TenantId(1),
                    RateLimit {
                        capacity: 1,
                        per_sec: 1,
                    },
                )],
                ..AdmissionConfig::default()
            },
        },
    );
    let mut client = EsdbClient::connect(&addr, "tok-1").expect("connect");
    let _ = client.insert(sample_doc(1, 1, 0));
    // Bucket of 1 at 1/s: the second write must throttle.
    assert!(matches!(
        client.insert(sample_doc(1, 2, 0)),
        Err(ClientError::Server { status: 429, .. })
    ));
    handle.shutdown();

    let names: Vec<&'static str> = telemetry
        .journal()
        .tail(256)
        .iter()
        .map(|e| e.kind.name())
        .collect();
    assert!(names.contains(&"server_throttle"), "events: {names:?}");
    assert!(names.contains(&"server_drain_started"), "events: {names:?}");
    assert!(
        names.contains(&"server_drain_completed"),
        "events: {names:?}"
    );
}
