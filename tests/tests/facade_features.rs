//! Facade-level features: workload batching through `Esdb::write_batch`,
//! SQL result mapping, and plan inspection.

use esdb_common::{RecordId, TenantId};
use esdb_core::{Esdb, EsdbConfig, WriteBatcher};
use esdb_doc::{CollectionSchema, Document, FieldValue, WriteOp};
use esdb_integration_tests::test_dir;
use esdb_query::mapping::{date_format, to_sql_row};
use esdb_query::{optimize, parse_sql, translate};

fn doc(r: u64, status: i64) -> Document {
    Document::builder(TenantId(1), RecordId(r), 1_631_750_400_000 + r)
        .field("status", status)
        .field("auction_title", format!("batched item {r}"))
        .build()
}

#[test]
fn workload_batching_end_to_end() {
    let mut db = Esdb::open(
        CollectionSchema::transaction_logs(),
        EsdbConfig::new(test_dir("facade-batch")).shards(4),
    )
    .expect("open");

    // A flash-sale row hammered with 100 modifications, plus 9 normal rows.
    let mut batcher = WriteBatcher::new();
    batcher.push(WriteOp::insert(doc(0, 0)));
    for i in 1..100i64 {
        batcher.push(WriteOp::update(doc(0, i)));
    }
    for r in 1..10u64 {
        batcher.push(WriteOp::insert(doc(r, 0)));
    }
    assert_eq!(batcher.accepted(), 109);
    let applied = db.write_batch(&mut batcher).expect("batch");
    assert_eq!(
        applied.total, 10,
        "109 client ops collapse to 10 server writes"
    );
    let per_shard_sum: usize = applied.per_shard.iter().map(|(_, n)| n).sum();
    assert_eq!(
        per_shard_sum, applied.total,
        "per-shard counts sum to total"
    );
    db.refresh();

    let rows = db
        .query("SELECT * FROM transaction_logs WHERE tenant_id = 1")
        .expect("query");
    assert_eq!(rows.docs.len(), 10);
    let hot = rows
        .docs
        .iter()
        .find(|d| d.record_id == RecordId(0))
        .expect("hot row present");
    assert_eq!(
        hot.get("status"),
        Some(FieldValue::Int(99)),
        "only the terminal state materialized"
    );
    assert_eq!(db.stats().writes, 10, "server saw only the batched ops");
}

#[test]
fn sql_row_mapping_end_to_end() {
    let mut db = Esdb::open(
        CollectionSchema::transaction_logs(),
        EsdbConfig::new(test_dir("facade-mapping")).shards(2),
    )
    .expect("open");
    db.insert(doc(5, 1)).expect("insert");
    db.refresh();
    let rows = db
        .query("SELECT * FROM transaction_logs WHERE record_id = 5")
        .expect("query");
    let row = to_sql_row(&rows.docs[0], &[]);
    let created = row
        .cells
        .iter()
        .find(|(n, _)| n == "created_time")
        .and_then(|(_, v)| v.clone())
        .expect("created_time rendered");
    assert!(created.starts_with("2021-09-16"), "{created}");
    // DATE_FORMAT agrees with the rendered timestamp's date part.
    assert_eq!(
        date_format(rows.docs[0].created_at, "%Y-%m-%d"),
        &created[..10]
    );
}

#[test]
fn plans_are_inspectable() {
    // EXPLAIN-style: the plan for the paper's Fig. 6 query renders the
    // Fig. 8 operator tree.
    let q = translate(
        parse_sql(
            "SELECT * FROM transaction_logs WHERE tenant_id = 10086 \
             AND created_time >= '2021-09-16 00:00:00' \
             AND created_time <= '2021-09-17 00:00:00' \
             AND status = 1 OR group = 666",
        )
        .expect("parse"),
    );
    let plan = optimize(&q.filter, &CollectionSchema::transaction_logs());
    let rendered = plan.to_string();
    assert!(rendered.contains("Union"), "{rendered}");
    assert!(
        rendered.contains("CompositeScan tenant_id_created_time"),
        "{rendered}"
    );
    assert!(rendered.contains("ScanFilter"), "{rendered}");
    assert!(rendered.contains("IndexSearch"), "{rendered}");
}
