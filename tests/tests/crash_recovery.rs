//! Crash/recovery integration across storage, replication and the facade.

use esdb_common::{RecordId, SharedClock, TenantId};
use esdb_core::{Esdb, EsdbConfig};
use esdb_doc::{CollectionSchema, Document, WriteOp};
use esdb_integration_tests::test_dir;
use esdb_replication::{ReplicatedPair, ReplicationMode};

fn doc(tenant: u64, record: u64, at: u64) -> Document {
    Document::builder(TenantId(tenant), RecordId(record), at)
        .field("status", (record % 2) as i64)
        .field("auction_title", format!("recover me {record}"))
        .build()
}

#[test]
fn mixed_flush_and_wal_recovery() {
    let dir = test_dir("recovery-mixed");
    {
        let mut db = Esdb::open(
            CollectionSchema::transaction_logs(),
            EsdbConfig::new(&dir).shards(4),
        )
        .expect("open");
        // First 300 rows flushed to segment files.
        for r in 0..300 {
            db.insert(doc(r % 10, r, 1_000 + r)).expect("insert");
        }
        db.flush().expect("flush");
        // Next 200 rows only in the translogs, plus some deletes of
        // flushed rows; then "crash" (drop without flushing).
        for r in 300..500 {
            db.insert(doc(r % 10, r, 1_000 + r)).expect("insert");
        }
        for r in 0..20 {
            db.delete(TenantId(r % 10), RecordId(r), 1_000 + r)
                .expect("delete");
        }
    }
    let mut db = Esdb::open(
        CollectionSchema::transaction_logs(),
        EsdbConfig::new(&dir).shards(4),
    )
    .expect("recover");
    db.refresh();
    assert_eq!(db.stats().live_docs, 500 - 20);
    // A specific WAL-only record.
    let rows = db
        .query("SELECT * FROM transaction_logs WHERE record_id = 450")
        .expect("query");
    assert_eq!(rows.docs.len(), 1);
    // A deleted record stays deleted.
    let rows = db
        .query("SELECT * FROM transaction_logs WHERE record_id = 5")
        .expect("query");
    assert!(rows.docs.is_empty());
}

#[test]
fn repeated_crash_cycles_converge() {
    let dir = test_dir("recovery-cycles");
    let mut expected = 0u64;
    for cycle in 0..5u64 {
        let mut db = Esdb::open(
            CollectionSchema::transaction_logs(),
            EsdbConfig::new(&dir).shards(2),
        )
        .expect("open");
        db.refresh();
        assert_eq!(db.stats().live_docs as u64, expected, "cycle {cycle}");
        for r in 0..50 {
            db.insert(doc(1, cycle * 50 + r, 1_000 + cycle * 50 + r))
                .expect("insert");
        }
        expected += 50;
        if cycle % 2 == 0 {
            db.flush().expect("flush");
        }
        // Drop without flush on odd cycles: WAL-only.
    }
    let mut db = Esdb::open(
        CollectionSchema::transaction_logs(),
        EsdbConfig::new(&dir).shards(2),
    )
    .expect("final open");
    db.refresh();
    assert_eq!(db.stats().live_docs as u64, expected);
    let rows = db
        .query("SELECT * FROM transaction_logs WHERE tenant_id = 1")
        .expect("query");
    assert_eq!(rows.docs.len() as u64, expected);
}

#[test]
fn replica_promotion_after_primary_loss() {
    let (clock, _driver) = SharedClock::manual(0);
    let mut pair = ReplicatedPair::open(
        CollectionSchema::transaction_logs(),
        test_dir("recovery-promote"),
        ReplicationMode::Physical {
            pre_replicate_merges: true,
        },
        clock,
    )
    .expect("open pair");
    for r in 0..400u64 {
        pair.write(&WriteOp::insert(doc(3, r, 1_000 + r)))
            .expect("write");
        if r % 100 == 99 {
            pair.refresh().expect("refresh");
        }
    }
    // Writes 400..450 never refreshed: replica has them only via translog.
    for r in 400..450u64 {
        pair.write(&WriteOp::insert(doc(3, r, 1_000 + r)))
            .expect("write");
    }
    // "Primary dies"; promote the replica from its synced translog.
    let promoted = pair
        .promote_replica(test_dir("recovery-promoted"))
        .expect("promote");
    assert_eq!(
        promoted.stats().live_docs,
        450,
        "no acknowledged write lost"
    );
    assert!(promoted.get_record(449).is_some());
}
