//! Model-based testing of the shard storage engine: arbitrary interleaved
//! sequences of inserts/updates/deletes/refreshes/flushes/merges/reopens
//! must agree with a trivial in-memory reference model.

use esdb_common::{RecordId, TenantId};
use esdb_doc::{CollectionSchema, Document, FieldValue, WriteOp};
use esdb_storage::{ShardConfig, ShardEngine};
use proptest::prelude::*;
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum Op {
    Insert { rid: u8, status: i64 },
    Update { rid: u8, status: i64 },
    Delete { rid: u8 },
    Refresh,
    Flush,
    Merge,
    Reopen,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (any::<u8>(), 0i64..100).prop_map(|(rid, status)| Op::Insert { rid, status }),
        3 => (any::<u8>(), 0i64..100).prop_map(|(rid, status)| Op::Update { rid, status }),
        2 => any::<u8>().prop_map(|rid| Op::Delete { rid }),
        2 => Just(Op::Refresh),
        1 => Just(Op::Flush),
        1 => Just(Op::Merge),
        1 => Just(Op::Reopen),
    ]
}

fn doc(rid: u8, status: i64) -> Document {
    Document::builder(TenantId(1), RecordId(rid as u64), 1_000 + rid as u64)
        .field("status", status)
        .build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn engine_agrees_with_reference_model(ops in proptest::collection::vec(arb_op(), 1..60)) {
        let dir = std::env::temp_dir().join(format!(
            "esdb-model-{}-{}",
            std::process::id(),
            rand::random::<u64>()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let schema = CollectionSchema::transaction_logs();
        let mut engine = ShardEngine::open(schema.clone(), ShardConfig::new(&dir)).unwrap();
        // Reference model: record id -> status (upsert semantics).
        let mut model: HashMap<u8, i64> = HashMap::new();

        for op in &ops {
            match *op {
                Op::Insert { rid, status } | Op::Update { rid, status } => {
                    let kind_op = match *op {
                        Op::Insert { .. } => WriteOp::insert(doc(rid, status)),
                        _ => WriteOp::update(doc(rid, status)),
                    };
                    engine.apply(&kind_op).unwrap();
                    model.insert(rid, status);
                }
                Op::Delete { rid } => {
                    engine
                        .apply(&WriteOp::delete(TenantId(1), RecordId(rid as u64), 1_000 + rid as u64))
                        .unwrap();
                    model.remove(&rid);
                }
                Op::Refresh => {
                    engine.refresh();
                }
                Op::Flush => {
                    engine.flush().unwrap();
                }
                Op::Merge => {
                    engine.maybe_merge();
                }
                Op::Reopen => {
                    engine.sync().unwrap();
                    drop(engine);
                    engine = ShardEngine::open(schema.clone(), ShardConfig::new(&dir)).unwrap();
                }
            }

            // Invariant: membership matches the model at every step.
            for (&rid, &status) in &model {
                prop_assert!(
                    engine.contains_record(rid as u64),
                    "record {rid} missing after {op:?}"
                );
                // Searchable copies must carry the latest status.
                if let Some(d) = engine.get_record(rid as u64) {
                    // The searchable copy may lag the buffer, but after a
                    // refresh it must be exact — checked below.
                    let _ = d;
                    let _ = status;
                }
            }
        }

        // Final check: refresh and compare the full state.
        engine.refresh();
        let stats = engine.stats();
        prop_assert_eq!(stats.live_docs, model.len(), "live doc count diverged");
        prop_assert_eq!(stats.buffered_docs, 0);
        for (&rid, &status) in &model {
            let d = engine
                .get_record(rid as u64)
                .unwrap_or_else(|| panic!("record {rid} not searchable at end"));
            prop_assert_eq!(d.get("status"), Some(FieldValue::Int(status)));
        }
        // And nothing extra survived.
        for rid in 0u8..=255 {
            if !model.contains_key(&rid) {
                prop_assert!(!engine.contains_record(rid as u64), "ghost record {rid}");
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
