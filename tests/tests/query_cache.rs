//! Query-cache correctness end-to-end: a cache-enabled instance must be
//! row-identical to a cache-disabled one under arbitrary interleavings of
//! writes, deletes, refreshes, merges, and repeated (hot) queries.
//!
//! The two tiers are exercised exactly where they can go wrong: tier 1
//! across tombstones landing *after* a posting list was cached and across
//! merges that retire segment ids; tier 2 across refreshes/merges that
//! change the searchable state between identical SQL texts.

use esdb_common::{RecordId, TenantId};
use esdb_core::{Esdb, EsdbConfig};
use esdb_doc::{CollectionSchema, Document};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

static NEXT_DIR: AtomicU64 = AtomicU64::new(0);

fn tmpdir(tag: &str) -> PathBuf {
    let n = NEXT_DIR.fetch_add(1, Ordering::Relaxed);
    let d = std::env::temp_dir().join(format!("esdb-qcache-{tag}-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn open(tag: &str, caches: bool) -> Esdb {
    Esdb::open(
        CollectionSchema::transaction_logs(),
        EsdbConfig::new(tmpdir(tag))
            .shards(2)
            .parallelism(1)
            .query_caches(caches),
    )
    .unwrap()
}

fn doc(tenant: u64, record: u64, at: u64) -> Document {
    Document::builder(TenantId(tenant), RecordId(record), at)
        .field("status", (record % 3) as i64)
        .field("group", (record % 5) as i64)
        .field(
            "province",
            if record % 2 == 0 {
                "zhejiang"
            } else {
                "jiangsu"
            },
        )
        .field("auction_title", format!("item number {record}"))
        .build()
}

const SQLS: &[&str] = &[
    "SELECT * FROM transaction_logs WHERE tenant_id = 1 AND status = 1 \
     ORDER BY created_time ASC LIMIT 20",
    "SELECT * FROM transaction_logs WHERE tenant_id = 2 AND group IN (1, 2) \
     ORDER BY created_time DESC LIMIT 10",
    "SELECT * FROM transaction_logs WHERE tenant_id = 3",
    "SELECT * FROM transaction_logs WHERE status = 2",
    "SELECT * FROM transaction_logs WHERE tenant_id = 1 AND created_time >= 10000 \
     AND created_time <= 10500",
];

/// One step of the random interleaving.
#[derive(Debug, Clone)]
enum Op {
    Write { tenant: u64 },
    Delete { pick: usize },
    Refresh,
    Merge,
    Query { sql: usize },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0u64..5).prop_map(|tenant| Op::Write { tenant }),
        2 => any::<usize>().prop_map(|pick| Op::Delete { pick }),
        2 => Just(Op::Refresh),
        1 => Just(Op::Merge),
        4 => (0usize..SQLS.len()).prop_map(|sql| Op::Query { sql }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Cache-on and cache-off instances fed the identical op stream must
    /// return identical rows for every query at every point.
    #[test]
    fn cache_on_off_equivalence(ops in proptest::collection::vec(arb_op(), 1..60)) {
        let mut on = open("on", true);
        let mut off = open("off", false);
        let mut inserted: Vec<(u64, u64, u64)> = Vec::new();
        let mut next_record = 0u64;
        for op in ops {
            match op {
                Op::Write { tenant } => {
                    let record = next_record;
                    next_record += 1;
                    let at = 10_000 + record * 7;
                    on.insert(doc(tenant, record, at)).unwrap();
                    off.insert(doc(tenant, record, at)).unwrap();
                    inserted.push((tenant, record, at));
                }
                Op::Delete { pick } => {
                    if inserted.is_empty() {
                        continue;
                    }
                    let (tenant, record, at) = inserted.swap_remove(pick % inserted.len());
                    on.delete(TenantId(tenant), RecordId(record), at).unwrap();
                    off.delete(TenantId(tenant), RecordId(record), at).unwrap();
                }
                Op::Refresh => {
                    on.refresh();
                    off.refresh();
                }
                Op::Merge => {
                    on.merge();
                    off.merge();
                }
                Op::Query { sql } => {
                    // Run twice so the second execution can hit both tiers.
                    for pass in 0..2 {
                        let a = on.query(SQLS[sql]).unwrap();
                        let b = off.query(SQLS[sql]).unwrap();
                        prop_assert_eq!(
                            &a.docs, &b.docs,
                            "rows diverged (pass {}) on {}", pass, SQLS[sql]
                        );
                    }
                }
            }
        }
        // Final sweep: every probe query agrees on the end state.
        for sql in SQLS {
            let a = on.query(sql).unwrap();
            let b = off.query(sql).unwrap();
            prop_assert_eq!(&a.docs, &b.docs, "final rows diverged on {}", sql);
        }
    }
}

/// Deterministic hot-tenant scenario: cache entries live through
/// tombstones and a merge, and never serve a stale row.
#[test]
fn hot_tenant_cache_survives_tombstones_and_merge() {
    let mut on = open("det-on", true);
    let mut off = open("det-off", false);
    let sql = "SELECT * FROM transaction_logs WHERE tenant_id = 1 AND status = 0 \
               ORDER BY created_time ASC LIMIT 30";
    // Four refresh rounds → enough same-tier segments for the merge
    // policy to fire.
    for round in 0..4u64 {
        for r in round * 40..(round + 1) * 40 {
            let at = 10_000 + r;
            on.insert(doc(1, r, at)).unwrap();
            off.insert(doc(1, r, at)).unwrap();
        }
        on.refresh();
        off.refresh();
        // Query every round so cached entries exist before the next
        // mutation batch.
        assert_eq!(on.query(sql).unwrap().docs, off.query(sql).unwrap().docs);
    }
    // Tombstones land after caching, without a refresh in between.
    for r in [0u64, 3, 6, 9, 12] {
        on.delete(TenantId(1), RecordId(r), 10_000 + r).unwrap();
        off.delete(TenantId(1), RecordId(r), 10_000 + r).unwrap();
    }
    assert_eq!(on.query(sql).unwrap().docs, off.query(sql).unwrap().docs);
    // Merge retires the old segment ids; a stale id must never serve.
    let merged_on = on.merge();
    let merged_off = off.merge();
    assert_eq!(merged_on, merged_off);
    assert!(merged_on >= 1, "scenario must actually exercise a merge");
    assert_eq!(on.query(sql).unwrap().docs, off.query(sql).unwrap().docs);
    // Repeat within one generation: this is the skewed hot path both
    // tiers exist for.
    assert_eq!(on.query(sql).unwrap().docs, off.query(sql).unwrap().docs);
    // The enabled instance really cached: it must report activity.
    let s = on.stats();
    assert!(s.request_cache.hits >= 1, "{:?}", s.request_cache);
    assert!(
        s.filter_cache.hits + s.filter_cache.misses >= 1,
        "{:?}",
        s.filter_cache
    );
    let s_off = off.stats();
    assert_eq!(s_off.filter_cache.entries + s_off.request_cache.entries, 0);
}
