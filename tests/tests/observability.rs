//! Flight-recorder correctness: journal concurrency invariants, causal
//! link integrity, Chrome-trace export well-formedness, tail-based
//! capture through the full query path, and the debug bundle artifact.

use esdb_common::{RecordId, TenantId};
use esdb_core::{Esdb, EsdbConfig, WriteBatcher};
use esdb_doc::{CollectionSchema, Document, WriteOp};
use esdb_telemetry::{
    chrome_trace_json, unresolved_parents, EventKind, Journal, Labels, QueryTrace, TelemetryConfig,
    NO_PARENT,
};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

static NEXT_DIR: AtomicU64 = AtomicU64::new(0);

fn tmpdir(tag: &str) -> PathBuf {
    let n = NEXT_DIR.fetch_add(1, Ordering::Relaxed);
    let d = std::env::temp_dir().join(format!("esdb-obs-{tag}-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn doc(tenant: u64, record: u64, at: u64) -> Document {
    Document::builder(TenantId(tenant), RecordId(record), at)
        .field("status", (record % 2) as i64)
        .field("group", (record % 5) as i64)
        .field("auction_title", format!("item number {record}"))
        .build()
}

// ---------------------------------------------------------------------
// A minimal recursive-descent JSON parser, so export well-formedness is
// checked by an independent reader rather than by string matching.
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn parse(text: &'a str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing bytes at {}", p.pos));
        }
        Ok(v)
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at {}, found {:?}",
                b as char,
                self.pos,
                self.bytes.get(self.pos).map(|&c| c as char)
            ))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.bytes.get(self.pos) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(_) => self.number(),
            None => Err("unexpected end of input".into()),
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("bad literal at {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| format!("bad \\u escape at {}", self.pos))?;
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?} at {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(&b) => {
                    // Multi-byte UTF-8 passes through unvalidated; the
                    // input came from a &str so it is valid already.
                    out.push(b as char);
                    self.pos += 1;
                }
                None => return Err("unterminated string".into()),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => return Err(format!("bad array sep {other:?} at {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                other => return Err(format!("bad object sep {other:?} at {}", self.pos)),
            }
        }
    }
}

// ---------------------------------------------------------------------
// Journal concurrency invariants.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// N threads emitting concurrently: every emission gets a distinct
    /// strictly-positive seq; below capacity nothing is lost; at
    /// capacity retention stays bounded and eviction is acknowledged
    /// through `evicted_max`.
    #[test]
    fn concurrent_emission_keeps_journal_invariants(
        threads in 2usize..6,
        per_thread in 1usize..80,
        capacity in 16usize..256,
    ) {
        let journal = Arc::new(Journal::new(capacity));
        let mut all_seqs: Vec<u64> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let journal = Arc::clone(&journal);
                    s.spawn(move || {
                        let mut seqs = Vec::with_capacity(per_thread);
                        for i in 0..per_thread {
                            let seq = journal.emit(
                                EventKind::CacheSweep {
                                    evicted: t as u64,
                                    entries: i as u64,
                                },
                                Labels::none(),
                                NO_PARENT,
                            );
                            seqs.push(seq);
                        }
                        seqs
                    })
                })
                .collect();
            handles.into_iter().flat_map(|h| h.join().unwrap()).collect()
        });

        let emitted = threads * per_thread;
        // Seqs are distinct, positive, and each thread saw its own
        // strictly increasing subsequence (checked via global dedup:
        // fetch_add can never hand out a duplicate).
        prop_assert!(all_seqs.iter().all(|&s| s > 0));
        all_seqs.sort_unstable();
        let before_dedup = all_seqs.len();
        all_seqs.dedup();
        prop_assert_eq!(all_seqs.len(), before_dedup, "duplicate seq handed out");

        let retained = journal.snapshot();
        // Retention is bounded: at most capacity rounded up to the
        // stripe granularity, no matter how many events were emitted.
        let stripe_cap = capacity.div_ceil(8) * 8;
        prop_assert!(retained.len() <= stripe_cap.min(emitted));
        if emitted <= capacity.div_ceil(8) {
            // Guaranteed-below-capacity regime (even if every event
            // landed on one stripe): nothing may be lost.
            prop_assert_eq!(retained.len(), emitted, "lost events below capacity");
        }
        if emitted > stripe_cap {
            prop_assert!(journal.evicted_max() > 0, "eviction must be acknowledged");
        }
        // Retained events are sorted and unique by seq.
        let seqs: Vec<u64> = retained.iter().map(|e| e.seq).collect();
        prop_assert!(seqs.windows(2).all(|w| w[0] < w[1]));
    }

    /// Concurrently-emitted causal chains never leave a dangling
    /// parent: every retained `parent_seq` either resolves to a
    /// retained event or is explicitly acknowledged as evicted.
    #[test]
    fn causal_links_resolve_or_are_evicted(
        threads in 2usize..5,
        chains in 1usize..40,
        capacity in 8usize..96,
    ) {
        let journal = Arc::new(Journal::new(capacity));
        std::thread::scope(|s| {
            for t in 0..threads {
                let journal = Arc::clone(&journal);
                s.spawn(move || {
                    for c in 0..chains {
                        let root = journal.emit(
                            EventKind::RebalanceEpochClaimed { epoch: (t * chains + c) as u64 },
                            Labels::none(),
                            NO_PARENT,
                        );
                        let mid = journal.emit(
                            EventKind::RuleAppended {
                                tenant: t as u64,
                                old_span: 1,
                                new_span: 4,
                                commit_wait_ns: 0,
                            },
                            Labels::tenant(t as u64),
                            root,
                        );
                        journal.emit(
                            EventKind::RebalanceEpochCompleted {
                                epoch: (t * chains + c) as u64,
                                rules_committed: 1,
                            },
                            Labels::none(),
                            mid,
                        );
                    }
                });
            }
        });
        let events = journal.snapshot();
        let orphans = unresolved_parents(&events, journal.evicted_max());
        prop_assert!(orphans.is_empty(), "dangling parents: {orphans:?}");
    }
}

// ---------------------------------------------------------------------
// Chrome-trace export round-trips through an independent JSON parser.
// ---------------------------------------------------------------------

#[test]
fn chrome_trace_export_is_valid_and_well_nested() {
    let trace = QueryTrace::new();
    {
        let root = trace.span("query", 0);
        let root_id = root.id();
        {
            let plan = trace.span("plan", root_id);
            plan.finish();
        }
        for shard in 0..3u32 {
            let exec = trace.span_for_shard("execute", root_id, Some(shard));
            trace.record("cache_probe", exec.id(), Some(shard), 50);
        }
        root.finish();
    }
    let trace_id = trace.trace_id();
    let json = chrome_trace_json(trace_id, &trace.into_samples());

    let parsed = Parser::parse(&json).expect("chrome trace must be valid JSON");
    let events = parsed
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents array");
    assert!(!events.is_empty());

    // Replay each (pid, tid) lane: B pushes, E pops its matching name —
    // a legal flame graph never crosses pairs within a lane.
    let mut lanes: std::collections::HashMap<(u64, u64), Vec<String>> =
        std::collections::HashMap::new();
    let mut begins = 0usize;
    for ev in events {
        let name = ev
            .get("name")
            .and_then(Json::as_str)
            .expect("name")
            .to_string();
        let ph = ev.get("ph").and_then(Json::as_str).expect("ph");
        let pid = ev.get("pid").and_then(Json::as_num).expect("pid") as u64;
        let tid = ev.get("tid").and_then(Json::as_num).expect("tid") as u64;
        assert_eq!(
            ev.get("args")
                .and_then(|a| a.get("trace_id"))
                .and_then(Json::as_num),
            Some(trace_id as f64),
            "every event carries the trace id"
        );
        let stack = lanes.entry((pid, tid)).or_default();
        match ph {
            "B" => {
                begins += 1;
                stack.push(name);
            }
            "E" => {
                let open = stack.pop().unwrap_or_else(|| {
                    panic!("E event for {name} with empty stack in lane ({pid},{tid})")
                });
                assert_eq!(open, name, "E must close the innermost open B");
            }
            other => panic!("unexpected phase {other:?}"),
        }
    }
    for ((pid, tid), stack) in &lanes {
        assert!(
            stack.is_empty(),
            "lane ({pid},{tid}) left spans open: {stack:?}"
        );
    }
    // Every recorded sample produced exactly one B/E pair.
    assert_eq!(begins * 2, events.len());
}

// ---------------------------------------------------------------------
// Tail-based capture through the full query path.
// ---------------------------------------------------------------------

/// With head sampling effectively off and the slow threshold at zero,
/// every query is slow and none is head-sampled — yet each slow-log
/// entry must still carry a full span tree and a usable trace id.
#[test]
fn unsampled_slow_queries_carry_full_span_trees() {
    let mut db = Esdb::open(
        CollectionSchema::transaction_logs(),
        EsdbConfig::new(tmpdir("tail"))
            .shards(4)
            .parallelism(1)
            .telemetry_config(TelemetryConfig {
                trace_sample_every: 1_000_000,
                slow_query_threshold_us: 0,
                ..TelemetryConfig::default()
            }),
    )
    .unwrap();
    for r in 0..200 {
        db.insert(doc(1 + r % 5, r, 1_000_000 + r * 700)).unwrap();
    }
    db.refresh();
    for _ in 0..4 {
        db.query("SELECT * FROM transaction_logs WHERE tenant_id = 1 AND status = 1 LIMIT 10")
            .unwrap();
    }
    let entries = db.slow_queries();
    assert!(!entries.is_empty(), "threshold 0 must log every query");
    for e in &entries {
        assert_ne!(e.trace_id, 0, "tail capture must assign a trace id");
        assert!(
            !e.stages.is_empty(),
            "slow query logged without stages: {:?}",
            e.sql
        );
        assert!(
            e.stages.iter().any(|s| s.stage == "execute"),
            "span tree must include per-shard execute stages"
        );
    }

    // The pre-flight-recorder configuration keeps the old behavior:
    // unsampled slow queries log with empty stages.
    let mut db_old = Esdb::open(
        CollectionSchema::transaction_logs(),
        EsdbConfig::new(tmpdir("tail-off"))
            .shards(4)
            .parallelism(1)
            .telemetry_config(TelemetryConfig {
                trace_sample_every: 1_000_000,
                slow_query_threshold_us: 0,
                tail_capture: false,
                ..TelemetryConfig::default()
            }),
    )
    .unwrap();
    db_old.insert(doc(1, 1, 1_000_000)).unwrap();
    db_old.refresh();
    db_old
        .query("SELECT * FROM transaction_logs WHERE tenant_id = 1 LIMIT 5")
        .unwrap();
    let old = db_old.slow_queries();
    assert!(!old.is_empty());
    assert!(
        old.iter().all(|e| e.stages.is_empty()),
        "tail_capture off must not buffer spans"
    );
}

/// Slow-write twin: threshold 0 logs every group-commit drain with the
/// shard, op counts, and byte accounting filled in, and the snapshot
/// exposes the log next to the slow queries.
#[test]
fn slow_write_log_records_drains() {
    let mut db = Esdb::open(
        CollectionSchema::transaction_logs(),
        EsdbConfig::new(tmpdir("slow-write"))
            .shards(2)
            .parallelism(1)
            .telemetry_config(TelemetryConfig {
                slow_write_threshold_us: 0,
                ..TelemetryConfig::default()
            }),
    )
    .unwrap();
    let mut batcher = WriteBatcher::new();
    for r in 0..40 {
        batcher.push(WriteOp::insert(doc(1 + r % 3, r, 1_000_000 + r)));
    }
    db.write_batch(&mut batcher).unwrap();
    let writes = db.slow_writes();
    assert!(!writes.is_empty(), "threshold 0 must log every drain");
    let total_ops: u64 = writes.iter().map(|w| w.ops as u64).sum();
    assert_eq!(total_ops, 40, "every written op is attributed to a drain");
    for w in &writes {
        assert!(w.shard < 2);
        assert!(w.group_size >= 1);
        assert!(w.translog_bytes > 0, "drains account translog bytes");
        assert!(w.total_ns > 0);
    }
    let snap = db.telemetry_snapshot();
    assert_eq!(snap.slow_writes.len(), writes.len());
}

// ---------------------------------------------------------------------
// The debug bundle artifact.
// ---------------------------------------------------------------------

#[test]
fn debug_bundle_serializes_state_as_valid_json() {
    let mut db = Esdb::open(
        CollectionSchema::transaction_logs(),
        EsdbConfig::new(tmpdir("bundle")).shards(2).parallelism(1),
    )
    .unwrap();
    for r in 0..120 {
        db.insert(doc(1 + r % 4, r, 1_000_000 + r * 500)).unwrap();
    }
    db.refresh();
    db.query("SELECT * FROM transaction_logs WHERE tenant_id = 1 LIMIT 5")
        .unwrap();
    let bundle = db.debug_bundle();
    let json = bundle.to_json();
    let parsed = Parser::parse(&json).expect("debug bundle must be valid JSON");

    let config = parsed.get("config").expect("config section");
    for key in ["n_shards", "tail_capture", "journal_capacity", "routing"] {
        assert!(config.get(key).is_some(), "config must carry {key}");
    }
    let journal = parsed.get("journal").expect("journal section");
    assert!(journal.get("evicted_max").and_then(Json::as_num).is_some());
    let events = journal
        .get("events")
        .and_then(Json::as_arr)
        .expect("journal events array");
    assert!(
        !events.is_empty(),
        "refresh/write activity must leave journal events"
    );
    for ev in events {
        assert!(ev.get("seq").and_then(Json::as_num).is_some());
        assert!(ev.get("kind").and_then(Json::as_str).is_some());
    }
    assert!(parsed.get("metrics").is_some(), "metrics snapshot present");
    assert!(parsed.get("rules").is_some(), "rule-list state present");
    assert!(parsed.get("slow_queries").is_some());
    assert!(parsed.get("slow_writes").is_some());
}
