//! Property-based equivalence of the block-at-a-time executor against the
//! scalar oracle: random write/delete/refresh schedules produce databases
//! with multiple segments, tombstone-heavy liveness bitmaps, and buffered
//! tails, then mixed filter and aggregate queries must return byte-identical
//! results on both paths — end-to-end through `Esdb` *and* directly against
//! the same pinned per-shard snapshots.

use esdb_common::{RecordId, ShardId, TenantId};
use esdb_core::{Esdb, EsdbConfig};
use esdb_doc::{CollectionSchema, Document, FieldValue};
use esdb_query::{
    execute_blocks_on_snapshot, execute_on_snapshot, parse_sql, translate, QueryOptions,
};
use proptest::prelude::*;
use std::path::PathBuf;

/// One step of a randomized workload schedule.
#[derive(Debug, Clone)]
enum Op {
    /// Insert a new record for `tenant` with the given field mix.
    Write {
        tenant: u64,
        status: i64,
        group: i64,
        amount_q: u32,
        province: &'static str,
        title: &'static str,
    },
    /// Tombstone one previously written record (index modulo the count of
    /// writes so far — dense deletes make tombstone-heavy segments).
    Delete(usize),
    /// Make everything buffered searchable, sealing a segment per shard.
    Refresh,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        6 => (
            0u64..5,
            0i64..3,
            0i64..4,
            0u32..64,
            prop::sample::select(vec!["zhejiang", "jiangsu", "guangdong"]),
            prop::sample::select(vec!["rust book", "java book", "desk lamp"]),
        )
            .prop_map(|(tenant, status, group, amount_q, province, title)| Op::Write {
                tenant,
                status,
                group,
                amount_q,
                province,
                title,
            }),
        3 => (0usize..4096).prop_map(Op::Delete),
        1 => Just(Op::Refresh),
    ]
}

fn tmpdir(tag: u64) -> PathBuf {
    let d = std::env::temp_dir().join(format!("esdb-block-exec-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// Filter-shaped queries: every residual predicate is a flat comparison,
/// so all of these are block-eligible end to end.
const FILTER_SQLS: &[&str] = &[
    "SELECT * FROM transaction_logs WHERE tenant_id = 2 AND status = 1",
    "SELECT * FROM transaction_logs WHERE status = 0 OR group = 3",
    "SELECT * FROM transaction_logs WHERE amount >= 2.0 AND amount <= 10.0",
    "SELECT * FROM transaction_logs WHERE province = 'zhejiang' AND created_time >= 10020",
    "SELECT * FROM transaction_logs WHERE MATCH(auction_title, 'book') \
     ORDER BY created_time DESC LIMIT 10",
    "SELECT * FROM transaction_logs WHERE tenant_id = 4 ORDER BY created_time ASC LIMIT 5",
    "SELECT * FROM transaction_logs WHERE tenant_id = 999 AND status = 2",
];

/// Aggregate-only plans, all pushdown-eligible on the transaction_logs
/// schema (doc-values columns, no Bool).
const AGG_SQLS: &[&str] = &[
    "SELECT COUNT(*) FROM transaction_logs WHERE status = 1",
    "SELECT COUNT(*), SUM(amount), AVG(amount) FROM transaction_logs WHERE tenant_id = 1",
    "SELECT MIN(amount), MAX(created_time) FROM transaction_logs WHERE group = 2",
    "SELECT COUNT(*), SUM(amount) FROM transaction_logs GROUP BY province",
    "SELECT COUNT(*), MIN(created_time) FROM transaction_logs WHERE status = 2 GROUP BY group",
    "SELECT COUNT(*) FROM transaction_logs WHERE tenant_id = 999",
];

fn scalar_opts() -> QueryOptions {
    QueryOptions {
        block_execution: false,
        ..QueryOptions::default()
    }
}

/// Exact equality for everything except floats, which compare within a
/// tiny relative epsilon (per-shard partial sums may re-associate float
/// addition relative to the single-pass oracle).
fn values_close(a: &FieldValue, b: &FieldValue) -> bool {
    match (a, b) {
        (FieldValue::Float(x), FieldValue::Float(y)) => {
            (x - y).abs() <= 1e-9 * x.abs().max(y.abs()).max(1.0)
        }
        _ => a == b,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn block_execution_matches_scalar_oracle_under_random_schedules(
        ops in proptest::collection::vec(arb_op(), 10..100),
        seed in any::<u64>(),
    ) {
        let mut db = Esdb::open(
            CollectionSchema::transaction_logs(),
            EsdbConfig::new(tmpdir(seed)).shards(3).parallelism(1),
        )
        .unwrap();
        let mut written: Vec<(u64, u64, u64)> = Vec::new();
        let mut next_record = 0u64;
        for op in &ops {
            match op {
                Op::Write { tenant, status, group, amount_q, province, title } => {
                    let record = next_record;
                    next_record += 1;
                    let created = 10_000 + record;
                    db.insert(
                        Document::builder(TenantId(*tenant), RecordId(record), created)
                            .field("status", *status)
                            .field("group", *group)
                            .field("amount", FieldValue::Float(*amount_q as f64 * 0.25))
                            .field("province", *province)
                            .field("auction_title", format!("{title} vol {record}"))
                            .build(),
                    )
                    .unwrap();
                    written.push((*tenant, record, created));
                }
                Op::Delete(i) => {
                    if !written.is_empty() {
                        let (tenant, record, created) = written[i % written.len()];
                        db.delete(TenantId(tenant), RecordId(record), created).unwrap();
                    }
                }
                Op::Refresh => db.refresh(),
            }
        }
        db.refresh();

        // End-to-end row identity: the dispatcher's block path against the
        // scalar executor on the same published snapshots.
        for sql in FILTER_SQLS {
            let block = db.query(sql).unwrap();
            let scalar = db.query_opts(sql, scalar_opts()).unwrap();
            prop_assert_eq!(&block.docs, &scalar.docs, "row divergence on {}", sql);
        }

        // Aggregate identity: pushdown partials vs the materialize-then-
        // aggregate oracle, and zero stored-payload reads under pushdown.
        for sql in AGG_SQLS {
            let pushed = db.aggregate(sql).unwrap();
            let oracle = db.aggregate_opts(sql, scalar_opts()).unwrap();
            prop_assert_eq!(
                pushed.rows.len(),
                oracle.rows.len(),
                "group count divergence on {}",
                sql
            );
            for (p, o) in pushed.rows.iter().zip(&oracle.rows) {
                prop_assert_eq!(&p.group, &o.group, "group key divergence on {}", sql);
                prop_assert_eq!(p.values.len(), o.values.len());
                for (pv, ov) in p.values.iter().zip(&o.values) {
                    prop_assert!(
                        values_close(pv, ov),
                        "aggregate divergence on {}: {:?} vs {:?}",
                        sql, pv, ov
                    );
                }
            }
            prop_assert_eq!(pushed.payload_reads, 0, "pushdown read payloads on {}", sql);
        }

        // Same check against explicitly pinned per-shard snapshots: both
        // executors run over the *same* point-in-time view, including its
        // tombstone bitmaps, even while the engine keeps running.
        let schema = CollectionSchema::transaction_logs();
        for sql in FILTER_SQLS {
            let query = translate(parse_sql(sql).unwrap());
            for s in 0..3 {
                let snap = db.pin_snapshot(ShardId(s));
                let scalar = execute_on_snapshot(
                    &query, &schema, snap.as_ref(), QueryOptions::default(),
                );
                let block = execute_blocks_on_snapshot(
                    &query, &schema, snap.as_ref(), QueryOptions::default(),
                );
                prop_assert_eq!(
                    &block.docs, &scalar.docs,
                    "pinned-snapshot divergence on shard {} for {}", s, sql
                );
            }
        }
    }
}
