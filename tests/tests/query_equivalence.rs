//! Property-based query equivalence: for random datasets and random
//! filters, the optimized plan, the naive Lucene plan, and the reference
//! `Expr::matches` semantics must agree — end-to-end through segments.
//!
//! The second property targets the live dynamic-hashing path: a random
//! write/query schedule racing online rule commits and segment-handoff
//! migrations on the real multi-shard engine must stay byte-identical
//! to a single-shard oracle at every query point — before, during, and
//! after the span boundary, including tombstones and aggregates.

use esdb_common::{RecordId, SharedClock, TenantId};
use esdb_core::{Esdb, EsdbConfig};
use esdb_doc::{CollectionSchema, Document, FieldValue};
use esdb_index::{Segment, SegmentBuilder};
use esdb_integration_tests::test_dir;
use esdb_query::ast::{Bound, Expr, Query};
use esdb_query::xdriver::normalize_choose;
use esdb_query::{execute_on_segments, QueryOptions};
use proptest::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};

fn build_segments(docs: &[Document], pieces: usize) -> Vec<Segment> {
    let schema = CollectionSchema::transaction_logs();
    let chunk = docs.len().div_ceil(pieces.max(1)).max(1);
    docs.chunks(chunk)
        .enumerate()
        .map(|(i, ds)| {
            let mut b = SegmentBuilder::without_attr_index(schema.clone());
            for d in ds {
                b.add(d.clone());
            }
            b.refresh(i as u64 + 1)
        })
        .collect()
}

fn arb_doc(id: u64) -> impl Strategy<Value = Document> {
    (
        0u64..6,     // tenant
        0i64..4,     // status
        0i64..5,     // group
        0u64..1_000, // created offset
        prop::sample::select(vec!["zhejiang", "jiangsu", "guangdong"]),
        prop::sample::select(vec!["rust book", "java book", "coffee beans", "desk lamp"]),
    )
        .prop_map(move |(tenant, status, group, t, prov, title)| {
            Document::builder(TenantId(tenant), RecordId(id), 10_000 + t)
                .field("status", status)
                .field("group", group)
                .field("province", prov)
                .field("auction_title", title)
                .build()
        })
}

fn arb_leaf() -> impl Strategy<Value = Expr> {
    prop_oneof![
        (0i64..6).prop_map(|t| Expr::Eq("tenant_id".into(), FieldValue::Int(t))),
        (0i64..4).prop_map(|s| Expr::Eq("status".into(), FieldValue::Int(s))),
        (0i64..5).prop_map(|g| Expr::Eq("group".into(), FieldValue::Int(g))),
        proptest::collection::vec(0i64..5, 1..3).prop_map(|vs| Expr::In(
            "group".into(),
            vs.into_iter().map(FieldValue::Int).collect()
        )),
        (0u64..1_000, 0u64..1_000).prop_map(|(a, b)| {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            Expr::Range(
                "created_time".into(),
                Bound::Included(FieldValue::Timestamp(10_000 + lo)),
                Bound::Included(FieldValue::Timestamp(10_000 + hi)),
            )
        }),
        prop::sample::select(vec!["zhejiang", "jiangsu", "shanghai"])
            .prop_map(|p| Expr::Eq("province".into(), FieldValue::Str(p.into()))),
        prop::sample::select(vec!["rust", "book", "coffee", "lamp"])
            .prop_map(|w| Expr::Match("auction_title".into(), w.into())),
        (0i64..4).prop_map(|s| Expr::Ne("status".into(), FieldValue::Int(s))),
    ]
}

fn arb_filter() -> impl Strategy<Value = Expr> {
    arb_leaf().prop_recursive(3, 16, 3, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 1..4).prop_map(Expr::And),
            proptest::collection::vec(inner, 1..4).prop_map(Expr::Or),
        ]
    })
}

// ---------------------------------------------------------------------------
// Boundary-straddling equivalence on the live engine (ISSUE 10 / Fig. 17).
// ---------------------------------------------------------------------------

/// One step of a random schedule applied in lockstep to the multi-shard
/// engine and the single-shard oracle. Only the engine side ever sees
/// `Rebalance`/`Step` — the oracle has one shard and no rules, so its
/// results are the routing-free ground truth.
#[derive(Debug, Clone)]
enum LiveOp {
    /// Insert a row (85% land on the hot tenant).
    Insert { hot: bool, status: i64, group: i64 },
    /// Tombstone a previously inserted live row.
    Delete { pick: usize },
    /// Ordered SELECT; results must be byte-identical.
    Query { template: usize },
    /// Aggregate (COUNT/SUM/MIN/MAX, with and without GROUP BY).
    Aggregate { template: usize },
    /// Run a balancer period: may commit a grow-rule under commit-wait.
    Rebalance,
    /// Advance the migration one lifecycle phase (handoff/drain/cutover).
    Step,
    /// Move the shared manual clock (lets commit-wait expire mid-run).
    Advance { ms: u64 },
}

fn arb_live_op() -> impl Strategy<Value = LiveOp> {
    prop_oneof![
        6 => (0u8..10, 0i64..4, 0i64..5).prop_map(|(h, status, group)| LiveOp::Insert {
            hot: h < 9,
            status,
            group,
        }),
        2 => (0usize..1_000).prop_map(|pick| LiveOp::Delete { pick }),
        3 => (0usize..3).prop_map(|template| LiveOp::Query { template }),
        2 => (0usize..2).prop_map(|template| LiveOp::Aggregate { template }),
        1 => Just(LiveOp::Rebalance),
        2 => Just(LiveOp::Step),
        1 => (1u64..4).prop_map(|ms| LiveOp::Advance { ms }),
    ]
}

fn live_doc(tenant: u64, record: u64, at: u64, status: i64, group: i64) -> Document {
    Document::builder(TenantId(tenant), RecordId(record), at)
        .field("status", status)
        .field("group", group)
        .field(
            "province",
            if record % 2 == 0 {
                "zhejiang"
            } else {
                "jiangsu"
            },
        )
        .field("auction_title", format!("straddle {record}"))
        .build()
}

const LIVE_QUERIES: [&str; 3] = [
    "SELECT * FROM transaction_logs WHERE tenant_id = 7 ORDER BY created_time ASC",
    "SELECT * FROM transaction_logs WHERE tenant_id = 7 AND status = 1 \
     ORDER BY created_time ASC",
    "SELECT * FROM transaction_logs WHERE group IN (0, 2, 4) ORDER BY created_time DESC",
];

const LIVE_AGGS: [&str; 2] = [
    "SELECT COUNT(*), SUM(status) FROM transaction_logs WHERE tenant_id = 7",
    "SELECT COUNT(*), MIN(created_time), MAX(created_time) FROM transaction_logs \
     WHERE tenant_id = 7 GROUP BY group",
];

/// Distinguishes case directories across proptest iterations.
static LIVE_CASE: AtomicUsize = AtomicUsize::new(0);

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn live_rule_commits_preserve_query_equivalence(
        schedule in proptest::collection::vec(arb_live_op(), 30..90),
    ) {
        let case = LIVE_CASE.fetch_add(1, Ordering::Relaxed);
        let (clock, driver) = SharedClock::manual(1_000_000);
        let schema = CollectionSchema::transaction_logs();
        let mut live = Esdb::open_with_clock(
            schema.clone(),
            EsdbConfig::new(test_dir(&format!("straddle-live-{case}")))
                .shards(8)
                .commit_wait_ms(2),
            clock.clone(),
        )
        .expect("open live");
        let mut oracle = Esdb::open_with_clock(
            schema,
            EsdbConfig::new(test_dir(&format!("straddle-oracle-{case}"))).shards(1),
            clock,
        )
        .expect("open oracle");

        let mut now = 1_000_000u64;
        let mut seq = 0u64;
        let mut alive: Vec<(u64, u64, u64)> = Vec::new();
        let insert = |live: &mut Esdb,
                          oracle: &mut Esdb,
                          now: &mut u64,
                          seq: &mut u64,
                          alive: &mut Vec<(u64, u64, u64)>,
                          hot: bool,
                          status: i64,
                          group: i64| {
            // Advance the clock per insert so created_time is unique
            // (ORDER BY must have no cross-shard tie-break freedom) and
            // writes genuinely straddle any committed rule boundary.
            driver.advance(1);
            *now += 1;
            let tenant = if hot { 7 } else { 100 + *seq % 3 };
            let d = live_doc(tenant, *seq, *now, status, group);
            live.insert(d.clone()).expect("live insert");
            oracle.insert(d).expect("oracle insert");
            alive.push((tenant, *seq, *now));
            *seq += 1;
        };

        // Skew prefix: fuels the workload monitor past its per-period
        // minimum so the schedule's Rebalance ops can commit a rule.
        for r in 0..150u64 {
            insert(
                &mut live,
                &mut oracle,
                &mut now,
                &mut seq,
                &mut alive,
                r % 10 < 9,
                (r % 4) as i64,
                (r % 5) as i64,
            );
        }

        for op in &schedule {
            match *op {
                LiveOp::Insert { hot, status, group } => {
                    insert(
                        &mut live, &mut oracle, &mut now, &mut seq, &mut alive, hot, status,
                        group,
                    );
                }
                LiveOp::Delete { pick } => {
                    if !alive.is_empty() {
                        let (t, r, at) = alive.remove(pick % alive.len());
                        live.delete(TenantId(t), RecordId(r), at).expect("live delete");
                        oracle
                            .delete(TenantId(t), RecordId(r), at)
                            .expect("oracle delete");
                    }
                }
                LiveOp::Query { template } => {
                    live.refresh();
                    oracle.refresh();
                    let sql = LIVE_QUERIES[template % LIVE_QUERIES.len()];
                    let got = live.query(sql).expect("live query").docs;
                    let want = oracle.query(sql).expect("oracle query").docs;
                    prop_assert_eq!(got, want, "query diverged mid-schedule: {}", sql);
                }
                LiveOp::Aggregate { template } => {
                    live.refresh();
                    oracle.refresh();
                    let sql = LIVE_AGGS[template % LIVE_AGGS.len()];
                    let got = live.aggregate(sql).expect("live agg").rows;
                    let want = oracle.aggregate(sql).expect("oracle agg").rows;
                    prop_assert_eq!(got, want, "aggregate diverged mid-schedule: {}", sql);
                }
                LiveOp::Rebalance => {
                    live.rebalance();
                }
                LiveOp::Step => {
                    live.step_migrations();
                }
                LiveOp::Advance { ms } => {
                    driver.advance(ms);
                    now += ms;
                }
            }
        }

        // Force the boundary if the schedule never got there, then let
        // every in-flight migration run to a terminal phase.
        live.rebalance();
        driver.advance(5);
        live.drive_migrations();
        for s in live.migrations_snapshot() {
            prop_assert!(!s.phase.is_active(), "migration left mid-flight: {:?}", s);
        }

        // Post-cutover equivalence: every template, byte-identical.
        live.refresh();
        oracle.refresh();
        for sql in LIVE_QUERIES {
            let got = live.query(sql).expect("live query").docs;
            let want = oracle.query(sql).expect("oracle query").docs;
            prop_assert_eq!(got, want, "query diverged post-cutover: {}", sql);
        }
        for sql in LIVE_AGGS {
            let got = live.aggregate(sql).expect("live agg").rows;
            let want = oracle.aggregate(sql).expect("oracle agg").rows;
            prop_assert_eq!(got, want, "aggregate diverged post-cutover: {}", sql);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn plans_agree_with_reference(
        docs in proptest::collection::vec(any::<u64>(), 1..60).prop_flat_map(|seeds| {
            let strategies: Vec<_> = seeds
                .iter()
                .enumerate()
                .map(|(i, _)| arb_doc(i as u64))
                .collect();
            strategies
        }),
        filter in arb_filter(),
        pieces in 1usize..4,
    ) {
        let filter = normalize_choose(filter);
        let segments = build_segments(&docs, pieces);
        let seg_refs: Vec<&Segment> = segments.iter().collect();
        let schema = CollectionSchema::transaction_logs();
        let query = Query {
            table: "transaction_logs".into(),
            projection: vec![],
            filter: filter.clone(),
            order_by: None,
            limit: None,
            aggregates: vec![],
            group_by: None,
        };
        let mut expected: Vec<u64> = docs
            .iter()
            .filter(|d| filter.matches(d))
            .map(|d| d.record_id.raw())
            .collect();
        expected.sort_unstable();
        for use_optimizer in [true, false] {
            let rows = execute_on_segments(
                &query,
                &schema,
                &seg_refs,
                QueryOptions {
                    use_optimizer,
                    ..QueryOptions::default()
                },
            );
            let mut got: Vec<u64> = rows.docs.iter().map(|d| d.record_id.raw()).collect();
            got.sort_unstable();
            prop_assert_eq!(
                &got, &expected,
                "plan disagreement (optimizer={}) on filter {:?}",
                use_optimizer, filter
            );
        }
    }
}
