//! Property-based query equivalence: for random datasets and random
//! filters, the optimized plan, the naive Lucene plan, and the reference
//! `Expr::matches` semantics must agree — end-to-end through segments.

use esdb_common::{RecordId, TenantId};
use esdb_doc::{CollectionSchema, Document, FieldValue};
use esdb_index::{Segment, SegmentBuilder};
use esdb_query::ast::{Bound, Expr, Query};
use esdb_query::xdriver::normalize_choose;
use esdb_query::{execute_on_segments, QueryOptions};
use proptest::prelude::*;

fn build_segments(docs: &[Document], pieces: usize) -> Vec<Segment> {
    let schema = CollectionSchema::transaction_logs();
    let chunk = docs.len().div_ceil(pieces.max(1)).max(1);
    docs.chunks(chunk)
        .enumerate()
        .map(|(i, ds)| {
            let mut b = SegmentBuilder::without_attr_index(schema.clone());
            for d in ds {
                b.add(d.clone());
            }
            b.refresh(i as u64 + 1)
        })
        .collect()
}

fn arb_doc(id: u64) -> impl Strategy<Value = Document> {
    (
        0u64..6,     // tenant
        0i64..4,     // status
        0i64..5,     // group
        0u64..1_000, // created offset
        prop::sample::select(vec!["zhejiang", "jiangsu", "guangdong"]),
        prop::sample::select(vec!["rust book", "java book", "coffee beans", "desk lamp"]),
    )
        .prop_map(move |(tenant, status, group, t, prov, title)| {
            Document::builder(TenantId(tenant), RecordId(id), 10_000 + t)
                .field("status", status)
                .field("group", group)
                .field("province", prov)
                .field("auction_title", title)
                .build()
        })
}

fn arb_leaf() -> impl Strategy<Value = Expr> {
    prop_oneof![
        (0i64..6).prop_map(|t| Expr::Eq("tenant_id".into(), FieldValue::Int(t))),
        (0i64..4).prop_map(|s| Expr::Eq("status".into(), FieldValue::Int(s))),
        (0i64..5).prop_map(|g| Expr::Eq("group".into(), FieldValue::Int(g))),
        proptest::collection::vec(0i64..5, 1..3).prop_map(|vs| Expr::In(
            "group".into(),
            vs.into_iter().map(FieldValue::Int).collect()
        )),
        (0u64..1_000, 0u64..1_000).prop_map(|(a, b)| {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            Expr::Range(
                "created_time".into(),
                Bound::Included(FieldValue::Timestamp(10_000 + lo)),
                Bound::Included(FieldValue::Timestamp(10_000 + hi)),
            )
        }),
        prop::sample::select(vec!["zhejiang", "jiangsu", "shanghai"])
            .prop_map(|p| Expr::Eq("province".into(), FieldValue::Str(p.into()))),
        prop::sample::select(vec!["rust", "book", "coffee", "lamp"])
            .prop_map(|w| Expr::Match("auction_title".into(), w.into())),
        (0i64..4).prop_map(|s| Expr::Ne("status".into(), FieldValue::Int(s))),
    ]
}

fn arb_filter() -> impl Strategy<Value = Expr> {
    arb_leaf().prop_recursive(3, 16, 3, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 1..4).prop_map(Expr::And),
            proptest::collection::vec(inner, 1..4).prop_map(Expr::Or),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn plans_agree_with_reference(
        docs in proptest::collection::vec(any::<u64>(), 1..60).prop_flat_map(|seeds| {
            let strategies: Vec<_> = seeds
                .iter()
                .enumerate()
                .map(|(i, _)| arb_doc(i as u64))
                .collect();
            strategies
        }),
        filter in arb_filter(),
        pieces in 1usize..4,
    ) {
        let filter = normalize_choose(filter);
        let segments = build_segments(&docs, pieces);
        let seg_refs: Vec<&Segment> = segments.iter().collect();
        let schema = CollectionSchema::transaction_logs();
        let query = Query {
            table: "transaction_logs".into(),
            projection: vec![],
            filter: filter.clone(),
            order_by: None,
            limit: None,
            aggregates: vec![],
            group_by: None,
        };
        let mut expected: Vec<u64> = docs
            .iter()
            .filter(|d| filter.matches(d))
            .map(|d| d.record_id.raw())
            .collect();
        expected.sort_unstable();
        for use_optimizer in [true, false] {
            let rows = execute_on_segments(
                &query,
                &schema,
                &seg_refs,
                QueryOptions {
                    use_optimizer,
                    ..QueryOptions::default()
                },
            );
            let mut got: Vec<u64> = rows.docs.iter().map(|d| d.record_id.raw()).collect();
            got.sort_unstable();
            prop_assert_eq!(
                &got, &expected,
                "plan disagreement (optimizer={}) on filter {:?}",
                use_optimizer, filter
            );
        }
    }
}
