//! Longest-match composite-index selection with several overlapping
//! composite indexes declared (the DBA reality §5.1 alludes to: "DBAs are
//! expected to manually build composite indices among a massive amount of
//! column combinations").

use esdb_common::{RecordId, TenantId};
use esdb_doc::{CollectionSchema, Document, FieldType};
use esdb_index::{Segment, SegmentBuilder};
use esdb_query::plan::Plan;
use esdb_query::{execute_on_segments, optimize, parse_sql, translate, QueryOptions};

/// A schema with three overlapping composites:
/// (tenant, time), (tenant, status), (tenant, status, group).
fn schema() -> CollectionSchema {
    CollectionSchema::builder("transaction_logs")
        .field("status", FieldType::Long, true, true)
        .field("group", FieldType::Long, true, true)
        .field("province", FieldType::Keyword, true, true)
        .composite_index("tenant_time", &["tenant_id", "created_time"])
        .composite_index("tenant_status", &["tenant_id", "status"])
        .composite_index("tenant_status_group", &["tenant_id", "status", "group"])
        .build()
}

fn plan_of(sql: &str) -> Plan {
    let q = translate(parse_sql(sql).expect("parse"));
    optimize(&q.filter, &schema())
}

fn composite_name(p: &Plan) -> Option<String> {
    match p {
        Plan::CompositeScan { index, .. } => Some(index.clone()),
        Plan::ScanFilter { input, .. } => composite_name(input),
        Plan::Intersect(ps) | Plan::Union(ps) => ps.iter().find_map(composite_name),
        _ => None,
    }
}

#[test]
fn longest_match_prefers_deepest_composite() {
    // tenant + status + group equalities: the 3-column composite wins.
    let p =
        plan_of("SELECT * FROM transaction_logs WHERE tenant_id = 1 AND status = 2 AND group = 3");
    assert_eq!(composite_name(&p).as_deref(), Some("tenant_status_group"));
}

#[test]
fn two_column_match_beats_one_plus_range() {
    // tenant eq + status eq (no group): tenant_status covers 2 equalities;
    // tenant_time would only cover 1.
    let p = plan_of("SELECT * FROM transaction_logs WHERE tenant_id = 1 AND status = 2");
    assert_eq!(composite_name(&p).as_deref(), Some("tenant_status"));
}

#[test]
fn range_column_steers_index_choice() {
    // tenant eq + time range: only tenant_time can use the range.
    let p = plan_of(
        "SELECT * FROM transaction_logs WHERE tenant_id = 1 AND created_time BETWEEN 5 AND 9",
    );
    assert_eq!(composite_name(&p).as_deref(), Some("tenant_time"));
    // tenant eq + status eq + time range: (tenant,status) eq-pair outscores
    // (tenant)+range; time becomes a residual/single-index predicate.
    let p = plan_of(
        "SELECT * FROM transaction_logs \
         WHERE tenant_id = 1 AND status = 2 AND created_time BETWEEN 5 AND 9",
    );
    assert_eq!(composite_name(&p).as_deref(), Some("tenant_status"));
}

#[test]
fn multi_composite_execution_is_exact() {
    let schema = schema();
    let mut b = SegmentBuilder::without_attr_index(schema.clone());
    for r in 0..300u64 {
        b.add(
            Document::builder(TenantId(r % 3), RecordId(r), 1_000 + r)
                .field("status", (r % 4) as i64)
                .field("group", (r % 5) as i64)
                .field("province", if r % 2 == 0 { "zhejiang" } else { "jiangsu" })
                .build(),
        );
    }
    let seg: Segment = b.refresh(1);
    for sql in [
        "SELECT * FROM transaction_logs WHERE tenant_id = 1 AND status = 2 AND group = 3",
        "SELECT * FROM transaction_logs WHERE tenant_id = 2 AND status = 1",
        "SELECT * FROM transaction_logs WHERE tenant_id = 0 AND created_time BETWEEN 1050 AND 1200",
        "SELECT * FROM transaction_logs \
         WHERE tenant_id = 1 AND status = 3 AND created_time BETWEEN 1100 AND 1250 AND province = 'zhejiang'",
    ] {
        let q = translate(parse_sql(sql).expect("parse"));
        let expected: usize = seg
            .live_docs()
            .filter(|(_, d)| q.filter.matches(d))
            .count();
        for use_optimizer in [true, false] {
            let rows = execute_on_segments(
                &q,
                &schema,
                &[&seg],
                QueryOptions {
                use_optimizer,
                ..QueryOptions::default()
            },
            );
            assert_eq!(
                rows.docs.len(),
                expected,
                "sql={sql} optimizer={use_optimizer}"
            );
        }
    }
}
