//! Lock-free snapshot reader integration: N reader threads iterate a
//! fixed query corpus while a writer thread interleaves
//! write/refresh/force-merge/tombstone maintenance. Every result a
//! reader observes must be an internally-consistent point-in-time view
//! (no torn reads, no duplicate or impossible record ids), and a pinned
//! snapshot must keep answering identically even after the engine
//! merges away every segment it references.

use esdb_common::{RecordId, ShardId, TenantId};
use esdb_core::{Esdb, EsdbConfig, EsdbReader};
use esdb_doc::{CollectionSchema, Document};
use esdb_integration_tests::test_dir;
use esdb_query::{execute_on_snapshot, parse_sql, translate, QueryOptions};
use proptest::prelude::*;
use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// One tenant, one shard: every reader invariant below is about
/// intra-shard snapshot consistency, so routing noise is kept out.
const TENANT: u64 = 1;

/// All rows in insertion order (created_time is monotone in record id).
const Q_ALL: &str = "SELECT * FROM transaction_logs WHERE tenant_id = 1 ORDER BY created_time ASC";
/// Odd record ids only (status = rid % 2); these are never tombstoned.
const Q_ODD: &str =
    "SELECT * FROM transaction_logs WHERE tenant_id = 1 AND status = 1 ORDER BY created_time ASC";

fn doc(rid: u64) -> Document {
    Document::builder(TenantId(TENANT), RecordId(rid), 1_000 + rid * 10)
        .field("status", (rid % 2) as i64)
        .field("auction_title", format!("snapshot corpus {rid}"))
        .build()
}

fn rids(rows: &esdb_query::QueryRows) -> Vec<u64> {
    rows.docs.iter().map(|d| d.record_id.raw()).collect()
}

/// The per-result consistency oracle. `max_inserted` must be loaded
/// *after* the query ran: any row visible in the snapshot was inserted
/// (and its id published) before the snapshot was.
fn check_view(rids: &[u64], max_inserted: u64, what: &str) {
    let mut seen = HashSet::new();
    for &r in rids {
        assert!(
            seen.insert(r),
            "{what}: duplicate record id {r} in one result"
        );
        assert!(
            max_inserted != u64::MAX && r <= max_inserted,
            "{what}: impossible record id {r} (max inserted {max_inserted})"
        );
    }
    // ORDER BY created_time ASC is record-id order here; a torn view
    // could interleave segments out of order.
    assert!(
        rids.windows(2).all(|w| w[0] < w[1]),
        "{what}: result not in created_time order: {rids:?}"
    );
    // Odd ids are never deleted and are inserted in ascending order, so
    // the odd ids visible in any snapshot form an exact prefix
    // 1, 3, 5, … — a gap means the snapshot tore across a refresh.
    let odds: Vec<u64> = rids.iter().copied().filter(|r| r % 2 == 1).collect();
    for (i, &r) in odds.iter().enumerate() {
        assert_eq!(
            r,
            2 * i as u64 + 1,
            "{what}: odd record ids are not a contiguous prefix: {odds:?}"
        );
    }
}

/// Reader loop: runs the corpus through the lock-free handle, checking
/// every answer, and double-executes one query on a single pinned
/// snapshot to prove the view is frozen.
fn reader_loop(
    reader: &EsdbReader,
    schema: &CollectionSchema,
    max_inserted: &AtomicU64,
    done: &AtomicBool,
) -> u64 {
    let q_all = translate(parse_sql(Q_ALL).expect("parse"));
    let mut iterations = 0u64;
    while iterations == 0 || !done.load(Ordering::Acquire) {
        let all = rids(&reader.query(Q_ALL).expect("corpus query"));
        check_view(&all, max_inserted.load(Ordering::Acquire), "all-rows");

        let odd = rids(&reader.query(Q_ODD).expect("corpus query"));
        check_view(&odd, max_inserted.load(Ordering::Acquire), "status=1");
        assert!(
            odd.iter().all(|r| r % 2 == 1),
            "status=1 returned an even record id: {odd:?}"
        );

        // One pinned view answers identically no matter how many times
        // it is asked — even while the writer merges underneath it.
        let snap = reader.pin_snapshot(ShardId(0));
        let opts = QueryOptions {
            use_optimizer: true,
            ..QueryOptions::default()
        };
        let a = rids(&execute_on_snapshot(&q_all, schema, snap.as_ref(), opts));
        let b = rids(&execute_on_snapshot(&q_all, schema, snap.as_ref(), opts));
        assert_eq!(a, b, "pinned snapshot gave two different answers");
        check_view(&a, max_inserted.load(Ordering::Acquire), "pinned");

        iterations += 1;
    }
    iterations
}

/// Writer schedule steps, proptest-generated.
#[derive(Debug, Clone)]
enum Op {
    /// Insert the next 1..=8 sequential record ids.
    Insert(u8),
    /// Tombstone one not-yet-deleted record with id % 10 == 0.
    Delete(u8),
    /// Make buffered writes searchable (publishes a snapshot).
    Refresh,
    /// Merge every segment into one (publishes a snapshot).
    ForceMerge,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        5 => (0u8..8).prop_map(Op::Insert),
        2 => any::<u8>().prop_map(Op::Delete),
        3 => Just(Op::Refresh),
        1 => Just(Op::ForceMerge),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Three readers race one writer executing a generated maintenance
    /// schedule; every observed result must be a consistent snapshot.
    #[test]
    fn readers_observe_consistent_snapshots_under_maintenance(
        ops in proptest::collection::vec(arb_op(), 24..64),
    ) {
        let schema = CollectionSchema::transaction_logs();
        let mut db = Esdb::open(
            schema.clone(),
            EsdbConfig::new(std::env::temp_dir().join(format!(
                "esdb-snap-prop-{}-{}",
                std::process::id(),
                rand::random::<u64>()
            )))
            .shards(1),
        )
        .expect("open");

        // Readers must never see an id above this; stored *after* the
        // insert is acknowledged, so it is published before any refresh
        // can make the row visible. Starts at MAX-as-"nothing yet".
        let max_inserted = AtomicU64::new(u64::MAX);
        let done = AtomicBool::new(false);
        let reader = db.reader();

        let iterations: Vec<u64> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..3)
                .map(|_| {
                    let r = reader.clone();
                    let (schema, max_inserted, done) = (&schema, &max_inserted, &done);
                    s.spawn(move || reader_loop(&r, schema, max_inserted, done))
                })
                .collect();

            // The writer runs the schedule on the &mut facade while the
            // readers spin: maintenance must never wait on them, and
            // they must never see it half-applied.
            let mut next_rid = 0u64;
            let mut deletable: Vec<u64> = Vec::new();
            for op in &ops {
                match op {
                    Op::Insert(n) => {
                        for _ in 0..=(*n % 8) {
                            db.insert(doc(next_rid)).expect("insert");
                            if next_rid % 10 == 0 {
                                deletable.push(next_rid);
                            }
                            max_inserted.store(next_rid, Ordering::Release);
                            next_rid += 1;
                        }
                    }
                    Op::Delete(k) => {
                        if !deletable.is_empty() {
                            let rid = deletable.swap_remove(*k as usize % deletable.len());
                            db.delete(TenantId(TENANT), RecordId(rid), 1_000 + rid * 10)
                                .expect("delete");
                        }
                    }
                    Op::Refresh => db.refresh(),
                    Op::ForceMerge => {
                        db.force_merge();
                    }
                }
            }
            db.refresh();
            done.store(true, Ordering::Release);
            handles.into_iter().map(|h| h.join().expect("reader")).collect()
        });

        // Writer finished and refreshed; a final read sees everything.
        let all = rids(&db.query(Q_ALL).expect("final query"));
        let odd_total = (0..next_rid_of(&ops)).filter(|r| r % 2 == 1).count();
        prop_assert_eq!(
            all.iter().filter(|r| *r % 2 == 1).count(),
            odd_total,
            "odd rows must all survive the schedule"
        );
        prop_assert!(iterations.iter().all(|&i| i >= 1));
    }
}

/// How many ids the schedule inserts in total (mirrors the writer).
fn next_rid_of(ops: &[Op]) -> u64 {
    ops.iter()
        .map(|op| match op {
            Op::Insert(n) => (*n % 8) as u64 + 1,
            _ => 0,
        })
        .sum()
}

/// A pinned snapshot is a true point-in-time view: after the engine
/// merges away every segment it references and buries the survivors in
/// new writes, the pinned view still answers byte-identically, while a
/// fresh pin sees the merged world.
#[test]
fn pinned_snapshot_answers_identically_after_merge() {
    let schema = CollectionSchema::transaction_logs();
    let mut db = Esdb::open(
        schema.clone(),
        EsdbConfig::new(test_dir("snap-pin-merge")).shards(1),
    )
    .expect("open");

    // Four refreshes -> four sealed segments.
    for batch in 0..4u64 {
        for i in 0..25u64 {
            db.insert(doc(batch * 25 + i)).expect("insert");
        }
        db.refresh();
    }

    let pinned = db.pin_snapshot(ShardId(0));
    assert_eq!(
        pinned.segments().len(),
        4,
        "expected one segment per refresh"
    );
    assert_eq!(pinned.live_docs(), 100);

    let opts = QueryOptions {
        use_optimizer: true,
        ..QueryOptions::default()
    };
    let corpus: Vec<_> = [Q_ALL, Q_ODD]
        .iter()
        .map(|sql| translate(parse_sql(sql).expect("parse")))
        .collect();
    let baseline: Vec<Vec<u64>> = corpus
        .iter()
        .map(|q| rids(&execute_on_snapshot(q, &schema, pinned.as_ref(), opts)))
        .collect();
    assert_eq!(baseline[0].len(), 100);

    // Merge all four segments away, then change the world: new rows,
    // tombstones against rows the pinned view can see, another refresh.
    assert_eq!(db.force_merge(), 1, "four segments must merge into one");
    for i in 100..140u64 {
        db.insert(doc(i)).expect("insert");
    }
    for rid in [0u64, 50, 90] {
        db.delete(TenantId(TENANT), RecordId(rid), 1_000 + rid * 10)
            .expect("delete");
    }
    db.refresh();

    // The pinned view is frozen: same segments, same rows, same order.
    assert_eq!(
        pinned.segments().len(),
        4,
        "pinned segment set must not change"
    );
    assert_eq!(pinned.live_docs(), 100);
    for (q, want) in corpus.iter().zip(&baseline) {
        let got = rids(&execute_on_snapshot(q, &schema, pinned.as_ref(), opts));
        assert_eq!(&got, want, "pinned snapshot drifted after merge");
    }
    assert!(
        pinned.contains_record(50),
        "pinned view keeps pre-merge rows"
    );

    // A fresh pin sees the merged + mutated state.
    let fresh = db.pin_snapshot(ShardId(0));
    assert!(
        fresh.segments().len() < 4,
        "fresh pin must see the merged segment set"
    );
    assert_eq!(fresh.live_docs(), 137);
    assert!(!fresh.contains_record(50), "tombstone visible to fresh pin");
    assert!(
        fresh.search_generation() > pinned.search_generation(),
        "generation must advance with every publish"
    );
    let fresh_all = rids(&execute_on_snapshot(
        &corpus[0],
        &schema,
        fresh.as_ref(),
        opts,
    ));
    assert_eq!(fresh_all.len(), 137);

    // The facade's own query path agrees with the fresh pin.
    assert_eq!(rids(&db.query(Q_ALL).expect("query")), fresh_all);
}
