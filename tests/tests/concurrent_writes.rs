//! Concurrent multi-writer correctness: `EsdbWriter` clones applying a
//! generated op schedule from N threads must leave a row set
//! byte-identical to a sequential oracle applying the same per-thread
//! op order, conserve every op in the write accounting
//! (`writes_total + write_errors_total == ops issued`), and never lose
//! an acknowledged write under injected translog faults.

use esdb_chaos::TornWriteInjector;
use esdb_common::{RecordId, TenantId};
use esdb_core::{Esdb, EsdbConfig, WriteBatcher};
use esdb_doc::{CollectionSchema, Document, FieldValue, WriteOp};
use esdb_integration_tests::test_dir;
use esdb_telemetry::lint_prometheus;
use proptest::prelude::*;
use std::sync::Arc;

const THREADS: usize = 4;
/// Record-id stride per writer thread. Threads own disjoint id ranges,
/// so each record's op sequence lives on one thread and the final row
/// set is independent of cross-thread interleaving.
const STRIDE: u64 = 10_000;

/// Zipf-flavored deterministic tenant for a record: half the records on
/// the hot tenant, a short tail behind it. Concentrating load on one
/// tenant's shard makes same-shard writers actually collide, so the
/// group-commit path (leader drains followers' groups) is exercised,
/// not just the disjoint-shard fast path.
fn tenant_for(rid: u64) -> u64 {
    match rid % 10 {
        0..=4 => 1,
        5..=7 => 2,
        8 => 3,
        _ => 4 + (rid / 10) % 5,
    }
}

fn doc(rid: u64, status: i64) -> Document {
    Document::builder(TenantId(tenant_for(rid)), RecordId(rid), 1_000 + rid)
        .field("status", status)
        .build()
}

#[derive(Debug, Clone)]
enum OpKind {
    Insert(i64),
    Update(i64),
    Delete,
}

fn op_for(rid: u64, kind: &OpKind) -> WriteOp {
    match kind {
        OpKind::Insert(s) => WriteOp::insert(doc(rid, *s)),
        OpKind::Update(s) => WriteOp::update(doc(rid, *s)),
        OpKind::Delete => WriteOp::delete(TenantId(tenant_for(rid)), RecordId(rid), 1_000 + rid),
    }
}

/// One thread's schedule: (record offset within its private range, op).
/// Offsets are drawn from a small range so updates and deletes hit
/// records the same thread actually inserted.
fn arb_schedule() -> impl Strategy<Value = Vec<(u64, OpKind)>> {
    proptest::collection::vec(
        (
            0u64..64,
            prop_oneof![
                5 => (0i64..100).prop_map(OpKind::Insert),
                3 => (0i64..100).prop_map(OpKind::Update),
                2 => Just(OpKind::Delete),
            ],
        ),
        1..120,
    )
}

/// Every visible row as `(tenant, record, status)`, sorted — the
/// byte-comparable image of the searchable state.
fn visible_rows(db: &Esdb) -> Vec<(u64, u64, i64)> {
    let mut rows = Vec::new();
    for t in 1..=8u64 {
        let sql = format!(
            "SELECT * FROM transaction_logs WHERE tenant_id = {t} ORDER BY created_time ASC"
        );
        for d in db.query(&sql).expect("visible-rows query").docs.iter() {
            let status = match d.get("status") {
                Some(FieldValue::Int(s)) => s,
                other => panic!("status field missing or non-int: {other:?}"),
            };
            rows.push((t, d.record_id.raw(), status));
        }
    }
    rows.sort_unstable();
    rows
}

fn open(tag: &str) -> Esdb {
    Esdb::open(
        CollectionSchema::transaction_logs(),
        EsdbConfig::new(test_dir(&format!("conc-{tag}-{}", rand::random::<u64>()))).shards(8),
    )
    .expect("open")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// N writer threads issue generated single-op schedules through
    /// `EsdbWriter` clones; the visible row set must match a sequential
    /// oracle and the atomic accounting must conserve every op.
    #[test]
    fn concurrent_single_op_writers_match_sequential_oracle(
        schedules in proptest::collection::vec(arb_schedule(), THREADS)
    ) {
        let total_ops: usize = schedules.iter().map(Vec::len).sum();
        let mut db = open("single");
        std::thread::scope(|scope| {
            for (t, sched) in schedules.iter().enumerate() {
                let writer = db.writer();
                scope.spawn(move || {
                    for (off, kind) in sched {
                        let rid = t as u64 * STRIDE + off;
                        writer.write(op_for(rid, kind)).expect("fault-free write");
                    }
                });
            }
        });
        // Conservation: no faults, so every issued op must be counted
        // as applied — nothing lost, nothing double-counted.
        let stats = db.stats();
        prop_assert_eq!(stats.write_errors, 0);
        prop_assert_eq!(stats.writes, total_ops as u64);

        let mut oracle = open("single-oracle");
        for (t, sched) in schedules.iter().enumerate() {
            for (off, kind) in sched {
                oracle.write(op_for(t as u64 * STRIDE + off, kind)).expect("oracle write");
            }
        }
        db.refresh();
        oracle.refresh();
        prop_assert_eq!(visible_rows(&db), visible_rows(&oracle));
    }

    /// Same oracle identity through the batch path: each thread flushes
    /// its schedule in `WriteBatcher` chunks, colliding whole groups on
    /// hot shards. Coalescing is deterministic per chunk, so applied-op
    /// counts must also match the sequential oracle exactly.
    #[test]
    fn concurrent_batch_writers_match_sequential_oracle(
        schedules in proptest::collection::vec(arb_schedule(), THREADS)
    ) {
        let mut db = open("batch");
        std::thread::scope(|scope| {
            for (t, sched) in schedules.iter().enumerate() {
                let writer = db.writer();
                scope.spawn(move || {
                    for chunk in sched.chunks(16) {
                        let mut batcher = WriteBatcher::new();
                        for (off, kind) in chunk {
                            batcher.push(op_for(t as u64 * STRIDE + off, kind));
                        }
                        writer.write_batch(&mut batcher).expect("fault-free batch");
                    }
                });
            }
        });
        let mut oracle = open("batch-oracle");
        for (t, sched) in schedules.iter().enumerate() {
            for chunk in sched.chunks(16) {
                let mut batcher = WriteBatcher::new();
                for (off, kind) in chunk {
                    batcher.push(op_for(t as u64 * STRIDE + off, kind));
                }
                oracle.write_batch(&mut batcher).expect("oracle batch");
            }
        }
        prop_assert_eq!(db.stats().write_errors, 0);
        prop_assert_eq!(db.stats().writes, oracle.stats().writes);
        db.refresh();
        oracle.refresh();
        prop_assert_eq!(visible_rows(&db), visible_rows(&oracle));
    }
}

/// Under injected torn appends, an acknowledged write must always be
/// durable-and-visible, a failed write must always be counted, and the
/// accounting must partition the issued ops exactly.
#[test]
fn no_acknowledged_write_lost_under_injected_faults() {
    const PER_THREAD: u64 = 200;
    // Every 7th translog append (db-wide) tears mid-frame.
    let injector = Arc::new(TornWriteInjector::new(0xE5DB7, 7));
    let mut db = Esdb::open(
        CollectionSchema::transaction_logs(),
        EsdbConfig::new(test_dir("conc-faults"))
            .shards(4)
            .write_fault(injector.clone()),
    )
    .expect("open");

    let mut acked: Vec<u64> = Vec::new();
    let mut failed = 0u64;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS as u64)
            .map(|t| {
                let writer = db.writer();
                scope.spawn(move || {
                    let mut acked = Vec::new();
                    let mut failed = 0u64;
                    for off in 0..PER_THREAD {
                        let rid = t * STRIDE + off;
                        match writer.insert(doc(rid, (rid % 5) as i64)) {
                            Ok(_) => acked.push(rid),
                            Err(_) => failed += 1,
                        }
                    }
                    (acked, failed)
                })
            })
            .collect();
        for h in handles {
            let (a, f) = h.join().expect("writer thread");
            acked.extend(a);
            failed += f;
        }
    });

    let issued = THREADS as u64 * PER_THREAD;
    assert_eq!(acked.len() as u64 + failed, issued, "every op resolves");
    assert!(failed > 0, "the injector must actually fire");
    let stats = db.stats();
    assert_eq!(stats.writes, acked.len() as u64, "acked == counted writes");
    assert_eq!(stats.write_errors, failed, "failed == counted errors");
    assert_eq!(stats.writes + stats.write_errors, issued, "conservation");

    db.refresh();
    for &rid in &acked {
        assert!(
            db.get(TenantId(tenant_for(rid)), RecordId(rid), 1_000 + rid)
                .is_some(),
            "acknowledged write of record {rid} was lost"
        );
    }
}

/// Hot-shard collisions must surface through the new group-commit
/// telemetry: every applied op shows up in `esdb_write_group_size`,
/// every submission in `esdb_write_lock_wait_ns`, and the exposition
/// stays Prometheus-lint clean.
#[test]
fn group_commit_telemetry_accounts_every_op_and_lints() {
    const PER_THREAD: u64 = 300;
    let db = Esdb::open(
        CollectionSchema::transaction_logs(),
        EsdbConfig::new(test_dir("conc-telemetry")).shards(4),
    )
    .expect("open");

    // Every thread hammers the same tenant: one hot shard, maximal
    // same-shard collision.
    std::thread::scope(|scope| {
        for t in 0..THREADS as u64 {
            let writer = db.writer();
            scope.spawn(move || {
                for off in 0..PER_THREAD {
                    let rid = t * STRIDE + off;
                    let hot = Document::builder(TenantId(1), RecordId(rid), 1_000 + rid)
                        .field("status", (rid % 3) as i64)
                        .build();
                    writer.insert(hot).expect("hot insert");
                }
            });
        }
    });

    let issued = THREADS as u64 * PER_THREAD;
    let snap = db.telemetry_snapshot();
    let hist = |name: &str| {
        snap.histograms
            .iter()
            .find(|(n, _, _)| n == name)
            .unwrap_or_else(|| panic!("{name} missing from snapshot"))
    };
    let (_, _, group_size) = hist("esdb_write_group_size");
    // Each drain records the ops it applied, so the observation sum
    // re-counts exactly the issued ops.
    assert_eq!(group_size.sum(), issued as u128, "group sizes sum to ops");
    assert!(group_size.count() >= 1 && group_size.count() <= issued);
    // Lock-wait samples only contended submissions, so its count is
    // schedule-dependent (can be zero on a single-core host) — but the
    // series must exist and never exceed one sample per submission.
    let (_, _, lock_wait) = hist("esdb_write_lock_wait_ns");
    assert!(
        lock_wait.count() <= issued,
        "at most one lock-wait sample per submission"
    );
    assert!(
        snap.gauges
            .iter()
            .any(|(n, _, _)| n == "esdb_write_queue_depth"),
        "queue-depth gauge exported"
    );
    let errors = lint_prometheus(&snap.to_prometheus());
    assert!(errors.is_empty(), "lint violations: {errors:?}");
}
