//! Model-based routing checks across the full policy surface: for random
//! rule histories and write streams, dynamic secondary hashing must (a)
//! never route outside the tenant's eventual read span, (b) agree with
//! plain hashing before any rule is effective, and (c) produce spans that
//! only ever grow.

use esdb_common::{RecordId, TenantId};
use esdb_routing::{DynamicRouting, HashRouting, RoutingPolicy};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Before the first rule's effective time, dynamic == hashing.
    #[test]
    fn dynamic_equals_hashing_before_rules(
        n in 1u32..512,
        k1 in 0u64..1_000,
        k2 in 0u64..100_000,
        t_rule in 500u64..1_000,
        s_exp in 1u32..7,
        tc in 0u64..=500,
    ) {
        let dynamic = DynamicRouting::new(n);
        dynamic.rules().write().update(t_rule, 1 << s_exp, TenantId(k1));
        let hash = HashRouting::new(n);
        // tc <= t_rule: the rule must not apply (strict t < tc matching).
        prop_assert_eq!(
            dynamic.route_write(TenantId(k1), RecordId(k2), tc),
            hash.route_write(TenantId(k1), RecordId(k2), tc)
        );
    }

    /// Read spans are monotone in time: a span observed later covers any
    /// span observed earlier (rules only ever grow the footprint).
    #[test]
    fn spans_grow_monotonically(
        n in 2u32..256,
        k1 in 0u64..50,
        updates in proptest::collection::vec((0u64..1_000, 1u32..6), 1..10),
        t1 in 0u64..1_200,
        dt in 0u64..400,
    ) {
        let dynamic = DynamicRouting::new(n);
        {
            let rules = dynamic.rules();
            let mut g = rules.write();
            for (t, se) in updates {
                g.update(t, 1 << se, TenantId(k1));
            }
        }
        let early = dynamic.read_span(TenantId(k1), t1);
        let late = dynamic.read_span(TenantId(k1), t1 + dt);
        prop_assert!(late.covers(&early), "span shrank: {early:?} -> {late:?}");
    }

    /// Writes at any time are covered by the read span at that same time
    /// (not only later) — a coordinator can serve a read immediately after
    /// acknowledging the write.
    #[test]
    fn immediate_read_covers_write(
        n in 1u32..256,
        k1 in 0u64..50,
        k2 in 0u64..100_000,
        updates in proptest::collection::vec((0u64..1_000, 1u32..6), 0..10),
        tc in 0u64..1_200,
    ) {
        let dynamic = DynamicRouting::new(n);
        {
            let rules = dynamic.rules();
            let mut g = rules.write();
            for (t, se) in updates {
                g.update(t, 1 << se, TenantId(k1));
            }
        }
        let shard = dynamic.route_write(TenantId(k1), RecordId(k2), tc);
        let span = dynamic.read_span(TenantId(k1), tc);
        prop_assert!(span.contains(shard));
    }

    /// Within a span, double-hashing placement is deterministic: the same
    /// record routes to the same shard forever (no flapping between
    /// retries).
    #[test]
    fn routing_is_deterministic(
        n in 1u32..512,
        k1 in 0u64..1_000,
        k2 in 0u64..100_000,
        tc in 0u64..1_000,
    ) {
        let dynamic = DynamicRouting::new(n);
        dynamic.rules().write().update(10, 8, TenantId(k1));
        let a = dynamic.route_write(TenantId(k1), RecordId(k2), tc);
        let b = dynamic.route_write(TenantId(k1), RecordId(k2), tc);
        prop_assert_eq!(a, b);
    }
}

#[test]
fn rule_serialization_roundtrip() {
    // Rules cross the consensus wire; their serde form must be stable.
    use esdb_routing::SecondaryHashingRule;
    let rule = SecondaryHashingRule {
        effective_time: 123_456,
        offset: 16,
        tenants: vec![TenantId(1), TenantId(99)],
    };
    let json = serde_json_like(&rule);
    assert!(json.contains("123456"));
    assert!(json.contains("16"));
}

/// Minimal serde smoke (we avoid pulling serde_json; Debug formatting of
/// the Serialize-derived struct is enough to pin field presence).
fn serde_json_like(rule: &esdb_routing::SecondaryHashingRule) -> String {
    format!("{rule:?}")
}
