//! End-to-end integration: the embedded ESDB under a skewed multi-tenant
//! workload, exercising routing, balancing, rule commits, SQL, and
//! read-your-writes across rule changes.

use esdb_common::zipf::ZipfSampler;
use esdb_common::{Clock, RecordId, SharedClock, TenantId};
use esdb_core::{Esdb, EsdbConfig, RoutingMode};
use esdb_doc::{CollectionSchema, Document};
use esdb_integration_tests::test_dir;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn doc(tenant: u64, record: u64, at: u64) -> Document {
    Document::builder(TenantId(tenant), RecordId(record), at)
        .field("status", (record % 3) as i64)
        .field("group", (record % 7) as i64)
        .field(
            "auction_title",
            format!("item {} of tenant {}", record, tenant),
        )
        .attr("activity", if record % 2 == 0 { "1111" } else { "618" })
        .build()
}

#[test]
fn skewed_workload_full_pipeline() {
    let (clock, driver) = SharedClock::manual(1_000_000);
    let mut db = Esdb::open_with_clock(
        CollectionSchema::transaction_logs(),
        EsdbConfig::new(test_dir("e2e-skewed")).shards(16),
        clock.clone(),
    )
    .expect("open");

    // 20K writes from 500 tenants, Zipf(1.2): heavy skew.
    let zipf = ZipfSampler::new(500, 1.2);
    let mut rng = StdRng::seed_from_u64(99);
    let mut per_tenant: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
    for r in 0..20_000u64 {
        let tenant = zipf.sample(&mut rng) as u64;
        *per_tenant.entry(tenant).or_insert(0) += 1;
        db.insert(doc(tenant, r, clock.now())).expect("insert");
        driver.advance(1);
    }
    db.refresh();

    // The balancer must have split the top tenant.
    assert!(db.rule_count() > 0, "no rules committed under heavy skew");
    assert!(db.read_span(TenantId(1)).len > 1, "rank-1 tenant not split");

    // Every tenant's data is fully visible (read-your-writes across all
    // the rule changes that happened mid-stream).
    for (&tenant, &count) in per_tenant.iter().take(50) {
        let rows = db
            .query(&format!(
                "SELECT * FROM transaction_logs WHERE tenant_id = {tenant}"
            ))
            .expect("query");
        assert_eq!(
            rows.docs.len() as u64,
            count,
            "tenant {tenant} lost rows after balancing"
        );
    }

    // Aggregate conservation.
    assert_eq!(db.stats().live_docs as u64, 20_000);
}

#[test]
fn updates_and_deletes_survive_rebalancing() {
    let (clock, driver) = SharedClock::manual(5_000_000);
    let mut db = Esdb::open_with_clock(
        CollectionSchema::transaction_logs(),
        EsdbConfig::new(test_dir("e2e-upd")).shards(8),
        clock.clone(),
    )
    .expect("open");

    // Hot tenant 7 gets split mid-run; record 0..100 created pre-split.
    let mut created: Vec<u64> = Vec::new();
    for r in 0..100u64 {
        created.push(clock.now());
        db.insert(doc(7, r, clock.now())).expect("insert");
        driver.advance(1);
    }
    for r in 100..6_000u64 {
        db.insert(doc(7, r, clock.now())).expect("insert");
        driver.advance(1);
    }
    db.rebalance();
    driver.advance(100);
    assert!(db.read_span(TenantId(7)).len > 1);

    // Update half of the pre-split records, delete the other half.
    for r in 0..50u64 {
        db.update(
            Document::builder(TenantId(7), RecordId(r), created[r as usize])
                .field("status", 99i64)
                .build(),
        )
        .expect("update");
    }
    for r in 50..100u64 {
        db.delete(TenantId(7), RecordId(r), created[r as usize])
            .expect("delete");
    }
    db.refresh();

    let updated = db
        .query("SELECT * FROM transaction_logs WHERE tenant_id = 7 AND status = 99")
        .expect("query");
    assert_eq!(
        updated.docs.len(),
        50,
        "updates must hit the original shards"
    );
    for r in 50..100u64 {
        let rows = db
            .query(&format!(
                "SELECT * FROM transaction_logs WHERE tenant_id = 7 AND record_id = {r}"
            ))
            .expect("query");
        assert!(rows.docs.is_empty(), "record {r} should be deleted");
    }
    assert_eq!(db.stats().live_docs as u64, 6_000 - 50);
}

#[test]
fn all_routing_modes_agree_on_query_results() {
    let mut results = Vec::new();
    for (i, mode) in [
        RoutingMode::Hashing,
        RoutingMode::DoubleHashing(4),
        RoutingMode::Dynamic,
    ]
    .into_iter()
    .enumerate()
    {
        let mut db = Esdb::open(
            CollectionSchema::transaction_logs(),
            EsdbConfig::new(test_dir(&format!("e2e-mode-{i}")))
                .shards(8)
                .routing(mode),
        )
        .expect("open");
        for r in 0..500u64 {
            db.insert(doc(r % 20, r, 1_000 + r)).expect("insert");
        }
        db.refresh();
        let rows = db
            .query(
                "SELECT * FROM transaction_logs WHERE tenant_id = 3 AND status = 0 \
                 ORDER BY created_time ASC",
            )
            .expect("query");
        let ids: Vec<u64> = rows.docs.iter().map(|d| d.record_id.raw()).collect();
        results.push(ids);
    }
    assert_eq!(results[0], results[1], "hashing vs double hashing");
    assert_eq!(results[0], results[2], "hashing vs dynamic");
    assert!(!results[0].is_empty());
}

#[test]
fn full_text_and_attributes_end_to_end() {
    let mut db = Esdb::open(
        CollectionSchema::transaction_logs(),
        EsdbConfig::new(test_dir("e2e-fts")).shards(4),
    )
    .expect("open");
    for r in 0..200u64 {
        db.insert(doc(1, r, 1_000 + r)).expect("insert");
    }
    db.refresh();
    let rows = db
        .query("SELECT * FROM transaction_logs WHERE MATCH(auction_title, 'item tenant')")
        .expect("match");
    assert_eq!(rows.docs.len(), 200);
    let rows = db
        .query("SELECT * FROM transaction_logs WHERE ATTR('activity') = '1111'")
        .expect("attr");
    assert_eq!(rows.docs.len(), 100);
    let rows = db
        .query(
            "SELECT * FROM transaction_logs WHERE ATTR('activity') = '618' AND status = 1 LIMIT 10",
        )
        .expect("attr+filter");
    assert!(rows.docs.len() <= 10);
    assert!(rows.docs.iter().all(|d| d.attr("activity") == Some("618")));
}
