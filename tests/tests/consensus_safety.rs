//! Safety properties of the rule-commit protocol under arbitrary fault
//! sequences: *agreement* (participants that applied rules applied the
//! same prefix-closed set, identical content) and *monotonicity*
//! (effective times strictly increase in every local list).

use esdb_common::{NodeId, SharedClock, TenantId};
use esdb_consensus::{ConsensusConfig, FaultPlan, LinkFault, Master, Participant, RuleBody};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum RoundFault {
    Healthy,
    Delay { node: u8, ms: u64 },
    DropPrepare { node: u8 },
    DropCommit { node: u8 },
    Partition { node: u8 },
}

fn arb_fault() -> impl Strategy<Value = RoundFault> {
    prop_oneof![
        3 => Just(RoundFault::Healthy),
        1 => (0u8..5, 0u64..1_500).prop_map(|(node, ms)| RoundFault::Delay { node, ms }),
        1 => (0u8..5).prop_map(|node| RoundFault::DropPrepare { node }),
        1 => (0u8..5).prop_map(|node| RoundFault::DropCommit { node }),
        1 => (0u8..5).prop_map(|node| RoundFault::Partition { node }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn agreement_and_monotonicity_under_faults(
        rounds in proptest::collection::vec((arb_fault(), 1u64..64, 0u64..10), 1..20),
    ) {
        let (clock, driver) = SharedClock::manual(0);
        let master = Master::new(clock, ConsensusConfig { interval_t_ms: 2_000 });
        let mut participants: Vec<Participant> =
            (0..5).map(|i| Participant::new(NodeId(i))).collect();
        let mut committed_history: Vec<(u64, u32, u64)> = Vec::new(); // (t, s, tenant)

        for (fault, offset, tenant) in rounds {
            let mut plan = FaultPlan::healthy(10);
            match fault {
                RoundFault::Healthy => {}
                RoundFault::Delay { node, ms } => {
                    plan.set(NodeId(node as u32), LinkFault::Delay(ms));
                }
                RoundFault::DropPrepare { node } => {
                    plan.set(NodeId(node as u32), LinkFault::DropPrepare);
                }
                RoundFault::DropCommit { node } => {
                    plan.set(NodeId(node as u32), LinkFault::DropCommit);
                }
                RoundFault::Partition { node } => {
                    plan.set(NodeId(node as u32), LinkFault::Partitioned);
                }
            }
            let body = RuleBody::single(TenantId(tenant), (offset as u32).next_power_of_two());
            let outcome = master.run_round(&body, &mut participants, &plan);
            if let esdb_consensus::RoundOutcome::Committed { rule, missed, .. } = &outcome {
                committed_history.push((
                    rule.effective_time,
                    rule.offset,
                    rule.tenants[0].raw(),
                ));
                // A missed participant is allowed to lag; re-deliver (the
                // operator recovery path) so the next rounds can proceed.
                for p in participants.iter_mut() {
                    if missed.contains(&p.id) {
                        p.on_commit(rule);
                    }
                }
            }
            driver.advance(100);
        }

        // Monotone effective times in the committed history.
        for w in committed_history.windows(2) {
            prop_assert!(w[0].0 < w[1].0, "effective times must advance: {committed_history:?}");
        }

        // Agreement: every participant holds exactly the committed history.
        for p in &participants {
            let rules = p.rules();
            let local = rules.read();
            let got: Vec<(u64, u32, u64)> = local
                .rules()
                .iter()
                .map(|r| (r.effective_time, r.offset, r.tenants[0].raw()))
                .collect();
            prop_assert_eq!(
                &got, &committed_history,
                "{:?} diverged from the committed history", p.id
            );
            // No participant may be left blocked after decided rounds.
            prop_assert!(!p.is_blocking(), "{:?} still blocking", p.id);
        }
    }
}
