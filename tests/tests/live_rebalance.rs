//! Live dynamic secondary hashing: the full migration lifecycle on the
//! real multi-shard engine. A committed grow-rule triggers segment
//! handoff (physical snapshot shipping), a bounded translog-tail drain,
//! and a barriered cutover that physically collapses the hot tenant's
//! rows onto the widened span — while writes and readers keep flowing.
//!
//! Chaos coverage per ISSUE 10: a node crash during segment handoff
//! (process death without flush, and a deterministic crash window that
//! fails a burst of appends mid-cutover) must abort or complete the
//! migration without losing acknowledged writes or duplicating rows.

use esdb_chaos::CrashWindowInjector;
use esdb_common::{RecordId, ShardId, SharedClock, TenantId};
use esdb_core::{Esdb, EsdbConfig, MigrationPhase};
use esdb_doc::{CollectionSchema, Document};
use esdb_integration_tests::test_dir;
use esdb_routing::place;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

const HOT: u64 = 777;
const SHARDS: u32 = 16;

fn doc(tenant: u64, record: u64, at: u64) -> Document {
    Document::builder(TenantId(tenant), RecordId(record), at)
        .field("status", (record % 2) as i64)
        .field("group", (record % 5) as i64)
        .field("auction_title", format!("live rebalance {record}"))
        .build()
}

/// Writes a skewed corpus (9 of 10 writes on the hot tenant) with
/// distinct creation times, so ORDER BY comparisons have no ties.
fn load_skewed(db: &mut Esdb, rows: u64) -> u64 {
    let mut hot = 0;
    for r in 0..rows {
        let tenant = if r % 10 < 9 {
            hot += 1;
            HOT
        } else {
            1_000 + r
        };
        db.insert(doc(tenant, r, 900_000 + r)).expect("insert");
    }
    hot
}

/// Every shard holding a live copy of `record`, by direct snapshot
/// inspection — the physical-placement oracle.
fn holders(db: &Esdb, record: u64) -> Vec<u32> {
    (0..SHARDS)
        .filter(|s| db.pin_snapshot(ShardId(*s)).get_record(record).is_some())
        .collect()
}

/// Asserts the old span fully collapsed: every hot-tenant row lives at
/// exactly its new-span placement, nowhere else.
fn assert_collapsed(db: &Esdb, rows: u64, offset: u32) {
    for r in 0..rows {
        if r % 10 >= 9 {
            continue;
        }
        let dest = place(TenantId(HOT), RecordId(r), offset, SHARDS).0;
        assert_eq!(holders(db, r), vec![dest], "record {r} not collapsed");
    }
}

#[test]
fn migration_lifecycle_end_to_end_with_racing_readers() {
    let (clock, driver) = SharedClock::manual(1_000_000);
    let mut db = Esdb::open_with_clock(
        CollectionSchema::transaction_logs(),
        EsdbConfig::new(test_dir("live-rebalance-e2e"))
            .shards(SHARDS)
            .commit_wait_ms(5),
        clock,
    )
    .expect("open");
    let hot_rows = load_skewed(&mut db, 3_000);
    db.refresh();
    let sql = "SELECT * FROM transaction_logs WHERE tenant_id = 777 ORDER BY created_time ASC";
    let oracle = db.query(sql).expect("oracle").docs;
    assert_eq!(oracle.len() as u64, hot_rows);

    // Readers hammer the tenant throughout commit, handoff and cutover:
    // any fan-out that straddles the rule boundary or the cutover
    // barrier must still see exactly the full row set.
    let stop = Arc::new(AtomicBool::new(false));
    let readers: Vec<_> = (0..3)
        .map(|_| {
            let reader = db.reader();
            let stop = Arc::clone(&stop);
            let oracle_len = oracle.len();
            std::thread::spawn(move || {
                let mut observed = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let rows = reader.query(sql).expect("racing query").docs;
                    assert_eq!(rows.len(), oracle_len, "reader saw partial row set");
                    observed += 1;
                }
                observed
            })
        })
        .collect();

    // Commit the rule under commit-wait: the activation timestamp is 5ms
    // in the future, so the migration holds in commit-wait until the
    // live clock passes it.
    assert!(db.rebalance() > 0, "skew must commit a grow-rule");
    let rule = db.rules_snapshot().last().cloned().expect("rule");
    assert!(rule.offset > 1, "span must grow");
    assert_eq!(rule.effective_time, 1_000_000 + 5, "commit-wait applied");
    db.step_migrations();
    let status = db.migrations_snapshot().pop().unwrap();
    assert_eq!(
        status.phase,
        MigrationPhase::CommitWait,
        "nothing moves before the activation timestamp"
    );
    // Clock passes the rule: handoff ships segments, drain, cutover.
    driver.advance(10);
    assert_eq!(db.drive_migrations(), 1, "migration must complete");
    let status = db.migrations_snapshot().pop().unwrap();
    assert_eq!(status.phase, MigrationPhase::Done);
    assert_eq!((status.old_span, status.new_span), (1, rule.offset));
    assert!(status.segments_shipped > 0, "handoff shipped real segments");
    assert!(status.rows_moved > 0, "rows physically moved");

    stop.store(true, Ordering::Relaxed);
    for r in readers {
        assert!(r.join().unwrap() > 0, "readers must have run");
    }

    // Row identity across the cutover, physical collapse, point reads.
    let after = db.query(sql).expect("after").docs;
    assert_eq!(oracle, after, "cutover changed query results");
    assert_collapsed(&db, 3_000, rule.offset);
    assert!(db.get(TenantId(HOT), RecordId(0), 900_000).is_some());

    // Journal causal chain: detection → rule → started → shipped →
    // drained → cutover → completed, each parent-linked to the last.
    let events = db.telemetry().journal().tail(usize::MAX);
    let find = |name: &str| {
        events
            .iter()
            .find(|e| e.kind.name() == name)
            .unwrap_or_else(|| panic!("missing journal event {name}"))
    };
    let chain = [
        "hot_tenant_detected",
        "rule_appended",
        "migration_started",
        "migration_segments_shipped",
        "migration_tail_drained",
        "migration_cutover",
        "migration_completed",
    ];
    for pair in chain.windows(2) {
        assert_eq!(
            find(pair[1]).parent_seq,
            find(pair[0]).seq,
            "{} must parent-link to {}",
            pair[1],
            pair[0]
        );
    }

    // Metrics: migration series present and lint-clean.
    let snap = db.telemetry_snapshot();
    let counter = |name: &str| {
        snap.counters
            .iter()
            .find(|(n, _, _)| n == name)
            .map(|(_, _, v)| *v)
            .unwrap_or(0)
    };
    assert_eq!(counter("esdb_migration_completed_total"), 1);
    assert!(counter("esdb_migration_rows_moved_total") > 0);
    assert!(counter("esdb_migration_segments_moved_total") > 0);
    assert!(counter("esdb_migration_bytes_shipped_total") > 0);
    let errors = esdb_telemetry::lint_prometheus(&snap.to_prometheus());
    assert!(errors.is_empty(), "prometheus lint: {errors:?}");
    // Admin surface parity: the bundle carries the migration state.
    let bundle = db.debug_bundle().to_json();
    assert!(bundle.contains("\"phase\": \"done\""), "bundle: {bundle}");
}

#[test]
fn crash_during_handoff_recovers_every_acked_write_exactly_once() {
    let dir = test_dir("live-rebalance-crash-handoff");
    {
        let mut db = Esdb::open(
            CollectionSchema::transaction_logs(),
            EsdbConfig::new(&dir).shards(SHARDS),
        )
        .expect("open");
        load_skewed(&mut db, 2_500);
        // Rule commits and the handoff ships; the migration is left
        // mid-flight (Draining) when the process dies without flushing.
        db.rebalance();
        let status = db.migrations_snapshot().pop().unwrap();
        assert!(
            status.phase == MigrationPhase::Draining || status.phase == MigrationPhase::CommitWait,
            "migration mid-flight at crash: {status:?}"
        );
    }
    // Recovery: translog replay restores every acknowledged write; the
    // durable rule list restores routing. The half-done handoff is
    // memory-only, so nothing of it survives to duplicate rows.
    let mut db = Esdb::open(
        CollectionSchema::transaction_logs(),
        EsdbConfig::new(&dir).shards(SHARDS),
    )
    .expect("recover");
    db.refresh();
    let rows = db
        .query("SELECT * FROM transaction_logs WHERE tenant_id = 777 ORDER BY created_time ASC")
        .expect("query")
        .docs;
    assert_eq!(rows.len(), 2_250, "acked writes conserved across crash");
    // Row identity + exactly-once: each record held by exactly one shard.
    for (i, d) in rows.iter().enumerate() {
        assert_eq!(
            d.record_id.raw() % 10 < 9,
            true,
            "foreign row leaked: {d:?}"
        );
        assert_eq!(d.created_at, 900_000 + d.record_id.raw());
        let h = holders(&db, d.record_id.raw());
        assert_eq!(h.len(), 1, "row {i} duplicated across shards: {h:?}");
    }
    // The committed rule still routes reads over the widened span.
    assert!(db.read_span(TenantId(HOT)).len > 1);
}

#[test]
fn crash_window_mid_cutover_completes_without_loss_or_duplication() {
    // Deterministic node-death burst: every insert is one translog
    // append, so after 2 500 loads the next appends are the cutover's
    // own tombstone/tail writes — the window lands squarely inside the
    // segment-handoff cutover and fails it mid-flight.
    let injector = Arc::new(CrashWindowInjector::new(2_505, 25));
    let mut db = Esdb::open(
        CollectionSchema::transaction_logs(),
        EsdbConfig::new(test_dir("live-rebalance-crash-window"))
            .shards(SHARDS)
            .write_fault(injector.clone()),
    )
    .expect("open");
    load_skewed(&mut db, 2_500);
    db.refresh();
    let sql = "SELECT * FROM transaction_logs WHERE tenant_id = 777 ORDER BY created_time ASC";
    let oracle = db.query(sql).expect("oracle").docs;
    db.rebalance();
    let rule = db.rules_snapshot().last().cloned().expect("rule");
    // Drive with retries: the first cutover attempt dies inside the
    // crash window (durable intent already logged), recovery reruns the
    // idempotent completion until the window has passed. Each failed
    // retry consumes one torn append, so the bound comfortably covers
    // the 25-append window.
    let mut done = false;
    for _ in 0..100 {
        if db.drive_migrations() > 0 {
            done = true;
            break;
        }
        let status = db.migrations_snapshot().pop().unwrap();
        if !status.phase.is_active() {
            break;
        }
    }
    let status = db.migrations_snapshot().pop().unwrap();
    match status.phase {
        MigrationPhase::Done => {
            assert!(done);
            assert!(injector.window_elapsed(), "window consumed by the cutover");
            assert_collapsed(&db, 2_500, rule.offset);
        }
        MigrationPhase::Aborted => {
            // Legal outcome: the migration gave up cleanly before its
            // durable commit point; rows stay at their old placement.
        }
        other => panic!("migration stuck in {other:?}"),
    }
    // Either way: zero lost acked writes, zero duplicates, row identity.
    db.refresh();
    let after = db.query(sql).expect("after").docs;
    assert_eq!(oracle, after, "acked rows conserved through the crash");
    for d in &after {
        let h = holders(&db, d.record_id.raw());
        assert_eq!(h.len(), 1, "record {} duplicated: {h:?}", d.record_id.raw());
    }
}

#[test]
fn admin_migrations_endpoint_exposes_live_state() {
    use esdb_server::{
        start, AdmissionConfig, EsdbClient, ServerConfig, TcpTransport, TokenTable, Transport,
    };
    let mut db = Esdb::open(
        CollectionSchema::transaction_logs(),
        EsdbConfig::new(test_dir("live-rebalance-admin")).shards(SHARDS),
    )
    .expect("open");
    load_skewed(&mut db, 2_500);
    db.rebalance();
    db.drive_migrations();
    let transport = TcpTransport::bind("127.0.0.1:0").expect("bind");
    let addr = transport.local_addr();
    let handle = start(
        db,
        ServerConfig {
            tokens: TokenTable::new().admin("root", TenantId(0)),
            admission: AdmissionConfig::default(),
        },
        Box::new(transport),
    );
    let mut admin = EsdbClient::connect(&addr, "root").expect("connect");
    let body = admin.admin_migrations().expect("admin/migrations");
    assert!(body.contains("\"active\": 0"), "terminal state: {body}");
    assert!(body.contains("\"phase\": \"done\""), "body: {body}");
    assert!(body.contains("\"tenant\": 777"), "body: {body}");
    handle.shutdown();
}
