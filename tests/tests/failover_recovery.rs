//! Failover integration across chaos, storage, and replication: a
//! promoted replica must be indistinguishable from the primary it
//! replaces, and injected storage faults must never corrupt recovery.

use esdb_chaos::TornWriteInjector;
use esdb_common::{RecordId, SharedClock, TenantId};
use esdb_core::{Esdb, EsdbConfig};
use esdb_doc::{CollectionSchema, Document, WriteOp};
use esdb_index::Segment;
use esdb_integration_tests::test_dir;
use esdb_query::{execute_on_segments, parse_sql, translate, QueryOptions};
use esdb_replication::{ReplicatedPair, ReplicationMode};
use esdb_storage::{ShardConfig, ShardEngine};
use std::sync::Arc;

fn doc(tenant: u64, record: u64) -> Document {
    Document::builder(TenantId(tenant), RecordId(record), 1_000 + record * 10)
        .field("status", (record % 3) as i64)
        .field("auction_title", format!("failover corpus {record}"))
        .build()
}

/// The query corpus: per-tenant scans, filtered/sorted/limited templates,
/// and point lookups of tombstoned records.
fn corpus(tenants: u64, deleted: &[u64]) -> Vec<String> {
    let mut qs = Vec::new();
    for t in 1..=tenants {
        qs.push(format!(
            "SELECT * FROM transaction_logs WHERE tenant_id = {t} \
             ORDER BY created_time DESC"
        ));
        qs.push(format!(
            "SELECT * FROM transaction_logs WHERE tenant_id = {t} \
             AND status = 1 ORDER BY created_time ASC LIMIT 25"
        ));
        qs.push(format!(
            "SELECT * FROM transaction_logs WHERE tenant_id = {t} \
             AND created_time BETWEEN 1500 AND 3500 ORDER BY created_time DESC LIMIT 40"
        ));
    }
    for &r in deleted {
        qs.push(format!(
            "SELECT * FROM transaction_logs WHERE record_id = {r}"
        ));
    }
    qs
}

/// Row-for-row answers (record-id sequences, order preserved) for every
/// corpus query against one engine's searchable state.
fn answers(engine: &ShardEngine, corpus: &[String]) -> Vec<Vec<u64>> {
    let segs: Vec<&Segment> = engine.segments().iter().map(|s| s.as_ref()).collect();
    corpus
        .iter()
        .map(|sql| {
            let q = translate(parse_sql(sql).expect("parse corpus query"));
            let rows = execute_on_segments(
                &q,
                engine.schema(),
                &segs,
                QueryOptions {
                    use_optimizer: true,
                    ..QueryOptions::default()
                },
            );
            rows.docs.iter().map(|d| d.record_id.raw()).collect()
        })
        .collect()
}

#[test]
fn promoted_replica_answers_query_corpus_identically() {
    let (clock, _driver) = SharedClock::manual(0);
    let mut pair = ReplicatedPair::open(
        CollectionSchema::transaction_logs(),
        test_dir("failover-corpus"),
        ReplicationMode::Physical {
            pre_replicate_merges: true,
        },
        clock,
    )
    .expect("open pair");

    let tenants = 4u64;
    // Segment-resident phase: 300 inserts across 4 tenants, refreshed
    // every 100 so the primary holds multiple segments.
    for r in 0..300u64 {
        pair.write(&WriteOp::insert(doc(1 + r % tenants, r)))
            .expect("write");
        if r % 100 == 99 {
            pair.refresh().expect("refresh");
        }
    }
    // Tombstones against already-refreshed rows (segment deletes) …
    let mut deleted: Vec<u64> = (0..30u64).map(|k| k * 7).collect();
    for &r in &deleted {
        pair.write(&WriteOp::delete(TenantId(1 + r % tenants), RecordId(r), 0))
            .expect("delete");
    }
    // … then a translog-only tail the replica saw only via real-time
    // sync: fresh inserts plus deletes of both old and tail rows.
    for r in 300..360u64 {
        pair.write(&WriteOp::insert(doc(1 + r % tenants, r)))
            .expect("write");
    }
    for r in [301u64, 333, 215] {
        pair.write(&WriteOp::delete(TenantId(1 + r % tenants), RecordId(r), 0))
            .expect("delete");
        deleted.push(r);
    }

    // "Primary dies." Promote the replica from its synced translog; then
    // make the pre-crash primary's full state searchable as the oracle.
    let promoted = pair
        .promote_replica(test_dir("failover-corpus-promoted"))
        .expect("promote");
    pair.primary_mut().refresh();

    assert_eq!(
        promoted.stats().live_docs,
        pair.primary().stats().live_docs,
        "promotion must not lose or resurrect rows"
    );

    let qs = corpus(tenants, &deleted);
    let expected = answers(pair.primary(), &qs);
    let got = answers(&promoted, &qs);
    for (i, (e, g)) in expected.iter().zip(&got).enumerate() {
        assert_eq!(e, g, "row mismatch on corpus query {i}: {}", qs[i]);
    }
    // Tombstoned docs stay gone on both sides (the record-id lookups are
    // the corpus tail, one per deleted record).
    for (i, _) in deleted.iter().enumerate() {
        let idx = expected.len() - deleted.len() + i;
        assert!(
            expected[idx].is_empty() && got[idx].is_empty(),
            "tombstoned record resurfaced in corpus query {idx}"
        );
    }
}

#[test]
fn torn_write_injection_fails_op_and_recovery_keeps_prefix() {
    let dir = test_dir("failover-torn");
    // Tear the 40th append: the 39 before it are acknowledged, the torn
    // one errors out and is never acknowledged.
    let injector = Arc::new(TornWriteInjector::new(0xC4A05, 40));
    {
        let mut engine = ShardEngine::open(
            CollectionSchema::transaction_logs(),
            ShardConfig::new(&dir).with_write_fault(injector.clone()),
        )
        .expect("open");
        let mut acked = 0u64;
        let mut torn = 0u64;
        for r in 0..40u64 {
            match engine.apply(&WriteOp::insert(doc(1, r))) {
                Ok(()) => acked += 1,
                Err(_) => torn += 1,
            }
        }
        assert_eq!((acked, torn), (39, 1), "exactly the 40th append tears");
        assert_eq!(injector.appends_seen(), 40);
        // Crash without flush: recovery must see exactly the acknowledged
        // prefix.
    }
    let mut engine =
        ShardEngine::open(CollectionSchema::transaction_logs(), ShardConfig::new(&dir))
            .expect("recover");
    engine.refresh();
    assert_eq!(engine.stats().live_docs, 39);
    assert!(engine.get_record(38).is_some());
    assert!(
        engine.get_record(39).is_none(),
        "the torn, unacknowledged write must not reappear"
    );
}

#[test]
fn injected_write_faults_surface_in_stats_and_telemetry() {
    // Every 10th translog append (db-wide) tears; the facade must count
    // each failure — never swallow it — and still serve the acknowledged
    // writes.
    let injector = Arc::new(TornWriteInjector::new(0xE5DB, 10));
    let mut db = Esdb::open(
        CollectionSchema::transaction_logs(),
        EsdbConfig::new(test_dir("failover-db-faults"))
            .shards(4)
            .write_fault(injector.clone()),
    )
    .expect("open");

    let (mut acked, mut failed) = (0u64, 0u64);
    for r in 0..30u64 {
        match db.write(WriteOp::insert(doc(1 + r % 3, r))) {
            Ok(_) => acked += 1,
            Err(_) => failed += 1,
        }
    }
    assert_eq!((acked, failed), (27, 3), "every 10th append tears");
    assert_eq!(injector.appends_seen(), 30);

    let stats = db.stats();
    assert_eq!(stats.write_errors, 3, "stats must count every failed write");
    assert_eq!(stats.writes, 27, "only acknowledged writes counted");

    let snapshot = db.telemetry_snapshot();
    let errors_total: u64 = snapshot
        .counters
        .iter()
        .filter(|(name, _, _)| name == "esdb_write_errors_total")
        .map(|(_, _, v)| *v)
        .sum();
    assert_eq!(errors_total, 3, "esdb_write_errors_total must match");

    // Interval deltas reset: a clean interval reports zero new errors.
    db.take_stats();
    assert_eq!(db.take_stats().write_errors, 0);

    db.refresh();
    let q = "SELECT * FROM transaction_logs WHERE tenant_id = 1 ORDER BY created_time ASC";
    let rows = db.query(q).expect("query");
    assert!(
        !rows.docs.is_empty(),
        "acknowledged writes stay searchable after injected faults"
    );
}
