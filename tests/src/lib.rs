//! Support helpers for ESDB-RS cross-crate integration tests.

use std::path::PathBuf;

/// A unique temp dir per (test name, process), pre-cleaned.
pub fn test_dir(name: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("esdb-it-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}
